#!/usr/bin/env python
"""Fixed-seed chaos soak (``make chaos``).

Drives the acceptance scenario from ``tests/integration/test_chaos.py``
at a fixed seed and churn level, twice, and verifies the headline
guarantees of the fault-injection subsystem:

1. every page load started during the churn window completes,
2. the attic returns to full shard redundancy, and
3. the two runs export byte-identical fault-event logs.

Exits non-zero (with a diagnosis) if any guarantee is violated.

With ``--seeds 101,102,...`` (or ranges: ``101-116``) the soak instead
fans the same scenario across every seed through the study runner
(``repro.experiments``) — one process per core unless ``--workers``
caps it — and checks the guarantees per seed from the merged study
summary. The single-seed default path is unchanged.

``--controller`` attaches the autonomous control plane
(``repro.control``) to every run, adds its guarantees to the verdict —
executed remediation actions and no fired alert left without a
decision — and on the single-seed path checks the decision log is
byte-identical across the two runs. Works on both paths, so the same
soak can be run hands-off and self-healing for an A/B comparison.

``--strategy naive|sharded|replicate-hot`` runs the soak with
collaborative caching enabled (placement strategy + content
directory), on either path — churn then exercises shard re-homing.
"""

import argparse
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from tests.integration.test_chaos import (  # noqa: E402
    CHURN_FRACTION,
    NUM_LOADS,
    run_chaos,
)


def soak(seed: int, fraction: float, controller: bool = False,
         strategy: str = None) -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        logs, control_logs = [], []
        for run in ("a", "b"):
            path = pathlib.Path(tmp) / f"faults-{run}.jsonl"
            world, plan, results, errors = run_chaos(
                seed, path, fraction, controller=controller,
                strategy=strategy)
            logs.append(path.read_bytes())
            if controller:
                ctl_path = pathlib.Path(tmp) / f"control-{run}.jsonl"
                world.controller.export_jsonl(str(ctl_path))
                control_logs.append(ctl_path.read_bytes())
        crashes = world.injector.metrics.counters["node_crashes"].value
        failovers = (
            world.loader.metrics.counters["peer_failovers"].value
            + world.loader.metrics.counters["origin_fallbacks"].value)

        line = (f"seed={seed} fraction={fraction}: "
                f"{crashes} crashes, {len(plan)} planned faults, "
                f"{len(results)}/{NUM_LOADS} loads ok, "
                f"{len(errors)} load errors, {failovers} failovers")
        if controller:
            ctl = world.controller
            line += (f", {len(ctl.decisions('executed'))} remediations, "
                     f"{len(ctl.convergences())} alerts converged")
        print(line)

        if errors:
            failures.append(f"{len(errors)} page loads failed")
        if len(results) != NUM_LOADS:
            failures.append(
                f"only {len(results)}/{NUM_LOADS} page loads completed")
        if not world.attic_fully_redundant():
            failures.append("attic did not return to full redundancy")
        if world.owner.metrics.counters["auto_repair_gave_up"].value:
            failures.append("attic auto-repair gave up")
        if logs[0] != logs[1]:
            failures.append("same-seed fault logs differ (determinism bug)")
        if fraction > 0 and not logs[0]:
            failures.append("fault log empty despite non-zero churn")
        if controller:
            if control_logs[0] != control_logs[1]:
                failures.append("same-seed decision logs differ "
                                "(control determinism bug)")
            if not ctl.metrics.counters["actions_executed"].value:
                failures.append("controller never executed an action")
            alerts = [e for e in world.slo_monitor.events
                      if e["state"] == "firing"]
            for alert in alerts:
                if not any(d["trigger"] == f"alert:{alert['slo']}"
                           and d["t"] == alert["t"]
                           for d in ctl.decisions()):
                    failures.append(f"alert {alert['slo']}@{alert['t']:.2f} "
                                    f"left unhandled")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def soak_seeds(seeds, fraction: float, workers: int, out: str,
               controller: bool = False, strategy: str = None) -> int:
    """Multi-seed soak through the parallel study runner."""
    from repro.experiments import StudySpec, build_summary, run_study, \
        write_summary

    params = {"fraction": fraction}
    if controller:
        params["controller"] = True
    if strategy:
        params["strategy"] = strategy
    spec = StudySpec.build(
        "chaos", seeds=seeds, params=params,
        workers=workers, name="chaos-soak")

    def _drive(study_dir: pathlib.Path) -> int:
        result = run_study(spec, study_dir)
        summary = build_summary(study_dir)
        write_summary(study_dir, summary)
        failures = list(result.failed)
        for cell in summary["cells"]:
            facts = cell["result"]
            label = f"seed {cell['seed']}"
            if cell["status"] != "ok":
                continue  # already counted in result.failed
            line = (f"  {label}: {facts.get('loads_ok', '?')} loads ok, "
                    f"{facts.get('load_errors', '?')} errors, "
                    f"{facts.get('planned_faults', '?')} planned faults, "
                    f"attic redundant: {facts.get('attic_redundant')}")
            if controller:
                line += (f", {facts.get('control_actions', '?')} "
                         f"remediations, "
                         f"{facts.get('alerts_converged', '?')} converged")
            print(line)
            if facts.get("load_errors"):
                failures.append(f"{label}: page loads failed")
            if not facts.get("attic_redundant", False):
                failures.append(f"{label}: attic not fully redundant")
            if controller and not facts.get("control_actions"):
                failures.append(f"{label}: controller never acted")
        for row in summary["slo"]["pass_rates"]:
            print(f"  SLO {row['slo']}: {row['met']}/{row['runs']} met, "
                  f"mean error {row['mean_error_rate']:.2%}")
        serial = result.cell_wall_total()
        if result.executed and result.wall_s > 0:
            print(f"  {len(result.executed)} runs on {result.workers} "
                  f"worker(s): wall {result.wall_s:.2f}s vs cell total "
                  f"{serial:.2f}s ({serial / result.wall_s:.2f}x)")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    if out:
        return _drive(pathlib.Path(out))
    with tempfile.TemporaryDirectory() as tmp:
        return _drive(pathlib.Path(tmp) / "chaos-soak")


def parse_seed_list(text: str):
    seeds = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part.lstrip("-"):
            lo, _, hi = part.partition("-")
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--seeds", default=None,
                        help="comma list / inclusive ranges; runs the "
                             "multi-seed study path (e.g. 101-108)")
    parser.add_argument("--fraction", type=float, default=CHURN_FRACTION)
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size for --seeds; 0 = one per CPU")
    parser.add_argument("--out", default="",
                        help="study directory for --seeds (default: a "
                             "temporary directory)")
    parser.add_argument("--controller", action="store_true",
                        help="attach the autonomous control plane and "
                             "check its guarantees too")
    parser.add_argument("--strategy", default=None,
                        choices=("naive", "sharded", "replicate-hot"),
                        help="run the soak with a collaborative-caching "
                             "strategy (default: the classic per-peer "
                             "NoCDN world)")
    args = parser.parse_args()
    if args.seeds:
        status = soak_seeds(parse_seed_list(args.seeds), args.fraction,
                            args.workers, args.out, args.controller,
                            args.strategy)
        if status == 0:
            print("multi-seed chaos soak passed")
        return status
    status = soak(args.seed, args.fraction, args.controller, args.strategy)
    if status == 0:
        print("chaos soak passed")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
