#!/usr/bin/env python
"""Fixed-seed chaos soak (``make chaos``).

Drives the acceptance scenario from ``tests/integration/test_chaos.py``
at a fixed seed and churn level, twice, and verifies the headline
guarantees of the fault-injection subsystem:

1. every page load started during the churn window completes,
2. the attic returns to full shard redundancy, and
3. the two runs export byte-identical fault-event logs.

Exits non-zero (with a diagnosis) if any guarantee is violated.
"""

import argparse
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from tests.integration.test_chaos import (  # noqa: E402
    CHURN_FRACTION,
    NUM_LOADS,
    run_chaos,
)


def soak(seed: int, fraction: float) -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        logs = []
        for run in ("a", "b"):
            path = pathlib.Path(tmp) / f"faults-{run}.jsonl"
            world, plan, results, errors = run_chaos(seed, path, fraction)
            logs.append(path.read_bytes())
        crashes = world.injector.metrics.counters["node_crashes"].value
        failovers = (
            world.loader.metrics.counters["peer_failovers"].value
            + world.loader.metrics.counters["origin_fallbacks"].value)

        print(f"seed={seed} fraction={fraction}: "
              f"{crashes} crashes, {len(plan)} planned faults, "
              f"{len(results)}/{NUM_LOADS} loads ok, "
              f"{len(errors)} load errors, {failovers} failovers")

        if errors:
            failures.append(f"{len(errors)} page loads failed")
        if len(results) != NUM_LOADS:
            failures.append(
                f"only {len(results)}/{NUM_LOADS} page loads completed")
        if not world.attic_fully_redundant():
            failures.append("attic did not return to full redundancy")
        if world.owner.metrics.counters["auto_repair_gave_up"].value:
            failures.append("attic auto-repair gave up")
        if logs[0] != logs[1]:
            failures.append("same-seed fault logs differ (determinism bug)")
        if fraction > 0 and not logs[0]:
            failures.append("fault log empty despite non-zero churn")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--fraction", type=float, default=CHURN_FRACTION)
    args = parser.parse_args()
    status = soak(args.seed, args.fraction)
    if status == 0:
        print("chaos soak passed")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
