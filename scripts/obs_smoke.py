#!/usr/bin/env python3
"""Telemetry smoke stage for scripts/check.sh (``make check``).

1. Runs a small seeded end-to-end scenario (attic PUT + WAN GET) with
   the TSDB scraper attached, twice, and asserts the exports are
   byte-identical — the determinism contract of the telemetry layer.
2. Asserts the scrape actually produced counter *and* gauge series
   with multiple points (an empty TSDB would also be byte-identical).
3. Times a dense event spin on a simulator that never had the profiler
   against one where profiling was enabled and then disabled, and
   fails if the disabled path costs more than 5% — enabling the
   profiler must be free once it is off again, and the engine's
   per-step profiler check must stay in the noise.
4. Runs a 10k-home fleet (analytic background aggregation, scraped
   TSDB) twice from the same seed and asserts the exports are
   byte-identical — the determinism contract at fleet scale, covering
   the cached scrape path and the gamma-draw aggregation.

Exit code 0 on success; raises on any violation.
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attic.service import DataAtticService  # noqa: E402
from repro.hpop.core import Household, Hpop, User  # noqa: E402
from repro.http.client import HttpClient  # noqa: E402
from repro.http.messages import HttpRequest  # noqa: E402
from repro.net.topology import build_city  # noqa: E402
from repro.obs.timeseries import TimeSeriesDB  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.util.units import kib  # noqa: E402

DISABLED_OVERHEAD_BUDGET = 1.05
SPIN_EVENTS = 20_000


def run_scraped_sim(path: str) -> TimeSeriesDB:
    """The quickstart flow (PUT from home, GET from the WAN), scraped."""
    sim = Simulator(seed=7)
    city = build_city(sim, homes_per_neighborhood=4,
                      server_sites={"coffee-shop": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smoke", users=[
        User(name="ann", password="pw", devices=[home.devices[0]])])
    hpop = Hpop(home.hpop_host, city.network, household)
    hpop.install(DataAtticService())
    hpop.start()

    inside = HttpClient(home.devices[0], city.network)
    tsdb = TimeSeriesDB(sim, interval=0.01)
    tsdb.add_registry(city.network.metrics, source="net")
    tsdb.add_registry(inside.metrics, source="client")
    tsdb.start()

    from repro.webdav.server import basic_auth
    headers = basic_auth("ann", "pw")
    statuses = []

    inside.request(hpop.host,
                   HttpRequest("PUT", "/attic/ann/notes.txt",
                               headers=headers, body="smoke",
                               body_size=kib(64)),
                   lambda resp, stats: statuses.append(resp.status),
                   port=443)
    sim.run()

    laptop = city.server_sites["coffee-shop"].servers[0]
    outside = HttpClient(laptop, city.network)
    outside.request(hpop.host,
                    HttpRequest("GET", "/attic/ann/notes.txt",
                                headers=headers),
                    lambda resp, stats: statuses.append(resp.status),
                    port=443)
    sim.run()

    assert statuses == [201, 200], f"smoke sim failed: {statuses}"
    tsdb.export_jsonl(path)
    return tsdb


def check_determinism() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "a.jsonl")
        b = os.path.join(tmp, "b.jsonl")
        tsdb = run_scraped_sim(a)
        run_scraped_sim(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            blob_a, blob_b = fa.read(), fb.read()
    assert blob_a, "empty TSDB export"
    assert blob_a == blob_b, "same-seed TSDB exports are not byte-identical"
    kinds = {s.kind for s in tsdb.series.values()}
    assert kinds == {"counter", "gauge"}, f"missing series kinds: {kinds}"
    multi = [s for s in tsdb.series.values() if len(s.points) > 3]
    assert multi, "no series collected more than 3 points"
    print(f"  determinism OK ({len(blob_a)} bytes, {len(tsdb.series)} "
          f"series, {tsdb.scrapes} scrapes, byte-identical)")


def spin(sim: Simulator, events: int) -> float:
    """Wall time to fire ``events`` small self-rescheduling callbacks."""
    fired = {"n": 0}

    def tick() -> None:
        fired["n"] += 1
        sum(range(50))  # a smidgen of real work per event
        if fired["n"] < events:
            sim.schedule(0.001, tick, label="spin.tick")

    sim.schedule(0.001, tick, label="spin.tick")
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert fired["n"] == events
    return elapsed


def check_disabled_overhead() -> None:
    base = float("inf")
    disabled = float("inf")
    for _ in range(5):
        never = Simulator(seed=1)
        base = min(base, spin(never, SPIN_EVENTS))

        toggled = Simulator(seed=1)
        toggled.enable_profiling()
        toggled.disable_profiling()
        disabled = min(disabled, spin(toggled, SPIN_EVENTS))

    ratio = disabled / base if base > 0 else 1.0
    print(f"  disabled-profiler overhead OK (never-enabled "
          f"{base * 1e3:.1f} ms, enabled-then-disabled "
          f"{disabled * 1e3:.1f} ms, ratio {ratio:.3f})")
    assert ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"disabled profiler costs {ratio:.3f}x, "
        f"budget {DISABLED_OVERHEAD_BUDGET}x")


FLEET_HOMES = 10_000
FLEET_SIM_SECONDS = 60.0


def run_fleet_sim(path: str) -> "TimeSeriesDB":
    from repro.workloads.fleet import FleetSpec, build_fleet
    sim = Simulator(seed=11)
    fleet = build_fleet(sim, FleetSpec(num_homes=FLEET_HOMES, focus_homes=2))
    tsdb = TimeSeriesDB(sim, interval=1.0)
    tsdb.add_registry(fleet.registry, source="fleet")
    tsdb.add_callback(
        "uplink0.up_bytes",
        lambda: fleet.aggregates[0].uplink.forward.stats.bytes_carried,
        kind="counter")
    fleet.start()
    tsdb.start()
    sim.run_until(FLEET_SIM_SECONDS)
    tsdb.export_jsonl(path)
    return tsdb


def check_fleet_determinism() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "fleet-a.jsonl")
        b = os.path.join(tmp, "fleet-b.jsonl")
        tsdb = run_fleet_sim(a)
        run_fleet_sim(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            blob_a, blob_b = fa.read(), fb.read()
    assert blob_a, "empty fleet TSDB export"
    assert blob_a == blob_b, (
        f"same-seed {FLEET_HOMES}-home fleet exports are not byte-identical")
    up = tsdb.latest("uplink0.up_bytes")
    assert up and up > 0, "fleet background carried no upstream bytes"
    print(f"  fleet determinism OK ({FLEET_HOMES} homes, {len(blob_a)} "
          f"bytes, {tsdb.scrapes} scrapes, byte-identical)")


def check_enabled_profile() -> None:
    """Sanity (no budget): an enabled profiler sees every event."""
    sim = Simulator(seed=2)
    profiler = sim.enable_profiling()
    spin(sim, 2_000)
    assert profiler.events == 2_000
    assert profiler.stats["spin.tick"].count == 2_000
    assert profiler.wall_seconds > 0
    assert profiler.collapsed_stacks()
    print(f"  profiler attribution OK ({profiler.events} events, "
          f"{profiler.events_per_second:,.0f} events/s, "
          f"wall/sim ratio {profiler.wall_sim_ratio:.4f})")


def main() -> int:
    print("obs smoke: TSDB same-seed determinism")
    check_determinism()
    print("obs smoke: disabled-profiler overhead")
    check_disabled_overhead()
    print("obs smoke: enabled-profiler attribution")
    check_enabled_profile()
    print(f"obs smoke: {FLEET_HOMES}-home fleet same-seed determinism")
    check_fleet_determinism()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
