#!/usr/bin/env python3
"""Telemetry smoke stage for scripts/check.sh (``make check``).

1. Runs a small seeded end-to-end scenario (attic PUT + WAN GET) with
   the TSDB scraper attached, twice, and asserts the exports are
   byte-identical — the determinism contract of the telemetry layer.
2. Asserts the scrape actually produced counter *and* gauge series
   with multiple points (an empty TSDB would also be byte-identical).
3. Times a dense event spin on a simulator that never had the profiler
   against one where profiling was enabled and then disabled, and
   fails if the disabled path costs more than 5% — enabling the
   profiler must be free once it is off again, and the engine's
   per-step profiler check must stay in the noise.
4. Runs a 10k-home fleet (analytic background aggregation, scraped
   TSDB) twice from the same seed and asserts the exports are
   byte-identical — the determinism contract at fleet scale, covering
   the cached scrape path and the gamma-draw aggregation.
5. Runs a 100k-home fleet under the *governed* observability stack —
   per-home registries folded into cohort rollups, lite tracing with
   tail sampling, TSDB + SLO monitor — twice from one seed, and
   asserts: byte-identical trace/TSDB/SLO exports, a per-scrape row
   count orders of magnitude below the naive per-home-series count
   (the cardinality governor's O(focus + cohorts + k) contract), and
   that every error trace and every ``fault.*`` span survived the 2%
   tail sampler.

Exit code 0 on success; raises on any violation.
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attic.service import DataAtticService  # noqa: E402
from repro.hpop.core import Household, Hpop, User  # noqa: E402
from repro.http.client import HttpClient  # noqa: E402
from repro.http.messages import HttpRequest  # noqa: E402
from repro.net.topology import build_city  # noqa: E402
from repro.obs.timeseries import TimeSeriesDB  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.util.units import kib  # noqa: E402

DISABLED_OVERHEAD_BUDGET = 1.05
SPIN_EVENTS = 20_000


def run_scraped_sim(path: str) -> TimeSeriesDB:
    """The quickstart flow (PUT from home, GET from the WAN), scraped."""
    sim = Simulator(seed=7)
    city = build_city(sim, homes_per_neighborhood=4,
                      server_sites={"coffee-shop": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smoke", users=[
        User(name="ann", password="pw", devices=[home.devices[0]])])
    hpop = Hpop(home.hpop_host, city.network, household)
    hpop.install(DataAtticService())
    hpop.start()

    inside = HttpClient(home.devices[0], city.network)
    tsdb = TimeSeriesDB(sim, interval=0.01)
    tsdb.add_registry(city.network.metrics, source="net")
    tsdb.add_registry(inside.metrics, source="client")
    tsdb.start()

    from repro.webdav.server import basic_auth
    headers = basic_auth("ann", "pw")
    statuses = []

    inside.request(hpop.host,
                   HttpRequest("PUT", "/attic/ann/notes.txt",
                               headers=headers, body="smoke",
                               body_size=kib(64)),
                   lambda resp, stats: statuses.append(resp.status),
                   port=443)
    sim.run()

    laptop = city.server_sites["coffee-shop"].servers[0]
    outside = HttpClient(laptop, city.network)
    outside.request(hpop.host,
                    HttpRequest("GET", "/attic/ann/notes.txt",
                                headers=headers),
                    lambda resp, stats: statuses.append(resp.status),
                    port=443)
    sim.run()

    assert statuses == [201, 200], f"smoke sim failed: {statuses}"
    tsdb.export_jsonl(path)
    return tsdb


def check_determinism() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "a.jsonl")
        b = os.path.join(tmp, "b.jsonl")
        tsdb = run_scraped_sim(a)
        run_scraped_sim(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            blob_a, blob_b = fa.read(), fb.read()
    assert blob_a, "empty TSDB export"
    assert blob_a == blob_b, "same-seed TSDB exports are not byte-identical"
    kinds = {s.kind for s in tsdb.series.values()}
    assert kinds == {"counter", "gauge"}, f"missing series kinds: {kinds}"
    multi = [s for s in tsdb.series.values() if len(s.points) > 3]
    assert multi, "no series collected more than 3 points"
    print(f"  determinism OK ({len(blob_a)} bytes, {len(tsdb.series)} "
          f"series, {tsdb.scrapes} scrapes, byte-identical)")


def spin(sim: Simulator, events: int) -> float:
    """Wall time to fire ``events`` small self-rescheduling callbacks."""
    fired = {"n": 0}

    def tick() -> None:
        fired["n"] += 1
        sum(range(50))  # a smidgen of real work per event
        if fired["n"] < events:
            sim.schedule(0.001, tick, label="spin.tick")

    sim.schedule(0.001, tick, label="spin.tick")
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert fired["n"] == events
    return elapsed


def check_disabled_overhead() -> None:
    base = float("inf")
    disabled = float("inf")
    for _ in range(5):
        never = Simulator(seed=1)
        base = min(base, spin(never, SPIN_EVENTS))

        toggled = Simulator(seed=1)
        toggled.enable_profiling()
        toggled.disable_profiling()
        disabled = min(disabled, spin(toggled, SPIN_EVENTS))

    ratio = disabled / base if base > 0 else 1.0
    print(f"  disabled-profiler overhead OK (never-enabled "
          f"{base * 1e3:.1f} ms, enabled-then-disabled "
          f"{disabled * 1e3:.1f} ms, ratio {ratio:.3f})")
    assert ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"disabled profiler costs {ratio:.3f}x, "
        f"budget {DISABLED_OVERHEAD_BUDGET}x")


FLEET_HOMES = 10_000
FLEET_SIM_SECONDS = 60.0


def run_fleet_sim(path: str) -> "TimeSeriesDB":
    from repro.workloads.fleet import FleetSpec, build_fleet
    sim = Simulator(seed=11)
    fleet = build_fleet(sim, FleetSpec(num_homes=FLEET_HOMES, focus_homes=2))
    tsdb = TimeSeriesDB(sim, interval=1.0)
    tsdb.add_registry(fleet.registry, source="fleet")
    tsdb.add_callback(
        "uplink0.up_bytes",
        lambda: fleet.aggregates[0].uplink.forward.stats.bytes_carried,
        kind="counter")
    fleet.start()
    tsdb.start()
    sim.run_until(FLEET_SIM_SECONDS)
    tsdb.export_jsonl(path)
    return tsdb


def check_fleet_determinism() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "fleet-a.jsonl")
        b = os.path.join(tmp, "fleet-b.jsonl")
        tsdb = run_fleet_sim(a)
        run_fleet_sim(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            blob_a, blob_b = fa.read(), fb.read()
    assert blob_a, "empty fleet TSDB export"
    assert blob_a == blob_b, (
        f"same-seed {FLEET_HOMES}-home fleet exports are not byte-identical")
    up = tsdb.latest("uplink0.up_bytes")
    assert up and up > 0, "fleet background carried no upstream bytes"
    print(f"  fleet determinism OK ({FLEET_HOMES} homes, {len(blob_a)} "
          f"bytes, {tsdb.scrapes} scrapes, byte-identical)")


GOVERNED_HOMES = 100_000
GOVERNED_SIM_SECONDS = 20.0


def run_governed_fleet(prefix: str) -> dict:
    """100k homes, full governed observability stack, one seeded run."""
    from repro.faults import FaultInjector, FaultPlan, LinkFlap
    from repro.workloads.fleet import (FleetSpec, FocusRequestLoad,
                                       build_fleet)

    sim = Simulator(seed=23)
    fleet = build_fleet(sim, FleetSpec(
        num_homes=GOVERNED_HOMES, focus_homes=4, tick=0.5,
        per_home_metrics=True, home_metrics_churn=8, rollup_k=4,
        rollup_every=2))
    # The flap must outlast the request timeout: a downed link stalls
    # in-flight transfers, and a stall shorter than the timeout just
    # resumes on restore instead of erroring.
    load = FocusRequestLoad(fleet, requests=150, spacing=0.08, timeout=1.5,
                            slow_every=25, slow_delay=1.0, peer_every=10)
    injector = FaultInjector(sim, fleet.city.network)
    injector.apply(FaultPlan([LinkFlap("hpop-n0h1", at=4.0, duration=6.0)]))

    tracer = sim.enable_tracing(capacity=262_144, trace_events=False,
                                profile_events=False)
    sampler = tracer.enable_tail_sampling(rate=0.02, slow_threshold=0.8,
                                          grace=30.0)
    tsdb = TimeSeriesDB(sim, interval=2.0)
    tsdb.add_registry(fleet.registry, source="fleet")
    tsdb.add_registry(load.metrics, source="focusload")
    fleet.attach_rollups(tsdb)
    tsdb.start()

    fleet.start()
    load.start()
    sim.run_until(GOVERNED_SIM_SECONDS)
    fleet.stop()

    tracer.export_jsonl(prefix + "-trace.jsonl")  # flushes the sampler
    tsdb.export_jsonl(prefix + "-tsdb.jsonl")

    kept = sampler.kept_spans()
    error_traces = {
        span.trace_id for span in kept
        if getattr(span, "attrs", None)
        and any(span.attrs.get(k) for k in ("error", "timeout", "failed"))}
    return {
        "errors": len(load.errors),
        "ok": len(load.results),
        "error_traces_kept": len(error_traces),
        "fault_spans_kept": sum(
            1 for span in kept
            if getattr(span, "name", "").startswith("fault.")),
        "traces_seen": sampler.traces_seen,
        "traces_kept": sampler.traces_kept,
        "scrape_rows": tsdb.last_scrape_rows,
        "series": len(tsdb.series),
    }


def check_governed_fleet() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        facts = run_governed_fleet(os.path.join(tmp, "a"))
        run_governed_fleet(os.path.join(tmp, "b"))
        blobs = {}
        for kind in ("trace", "tsdb"):
            pair = []
            for run in ("a", "b"):
                with open(os.path.join(tmp, f"{run}-{kind}.jsonl"),
                          "rb") as fh:
                    pair.append(fh.read())
            assert pair[0], f"empty governed {kind} export"
            assert pair[0] == pair[1], (
                f"same-seed governed {kind} exports are not byte-identical")
            blobs[kind] = pair[0]

    assert facts["ok"] > 0, "governed fleet request load never completed"
    assert facts["errors"] > 0, (
        "the link flap produced no request errors — retention unexercised")
    assert facts["error_traces_kept"] >= facts["errors"], (
        f"sampler dropped error traces: kept {facts['error_traces_kept']} "
        f"of {facts['errors']}")
    assert facts["fault_spans_kept"] > 0, "fault.* spans were sampled away"
    assert 0 < facts["traces_kept"] < facts["traces_seen"], (
        f"sampling did not thin the trace stream: {facts}")
    # The cardinality governor's whole point: per-scrape row count is
    # O(focus + cohorts * metrics + k), orders below one series per
    # home metric.
    naive_rows = GOVERNED_HOMES * 4
    assert 0 < facts["scrape_rows"] * 50 < naive_rows, (
        f"{facts['scrape_rows']} rows/scrape is not governed "
        f"(naive would be ~{naive_rows})")
    print(f"  governed fleet OK ({GOVERNED_HOMES} homes, "
          f"{facts['traces_kept']}/{facts['traces_seen']} traces kept, "
          f"{facts['errors']} errors all retained, "
          f"{facts['scrape_rows']} rows/scrape vs ~{naive_rows} naive, "
          f"byte-identical)")


def check_enabled_profile() -> None:
    """Sanity (no budget): an enabled profiler sees every event."""
    sim = Simulator(seed=2)
    profiler = sim.enable_profiling()
    spin(sim, 2_000)
    assert profiler.events == 2_000
    assert profiler.stats["spin.tick"].count == 2_000
    assert profiler.wall_seconds > 0
    assert profiler.collapsed_stacks()
    print(f"  profiler attribution OK ({profiler.events} events, "
          f"{profiler.events_per_second:,.0f} events/s, "
          f"wall/sim ratio {profiler.wall_sim_ratio:.4f})")


def main() -> int:
    print("obs smoke: TSDB same-seed determinism")
    check_determinism()
    print("obs smoke: disabled-profiler overhead")
    check_disabled_overhead()
    print("obs smoke: enabled-profiler attribution")
    check_enabled_profile()
    print(f"obs smoke: {FLEET_HOMES}-home fleet same-seed determinism")
    check_fleet_determinism()
    print(f"obs smoke: {GOVERNED_HOMES}-home governed observability")
    check_governed_fleet()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
