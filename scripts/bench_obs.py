#!/usr/bin/env python3
"""Observability overhead benchmark -> BENCH_obs.json (``make bench-obs``).

Answers the governing question of the fleet observability stack: what
does *full* observability — lite tracing with tail-based sampling,
per-home metric registries folded into cohort rollups, a TSDB scraping
on a cadence, exemplar capture, and a burn-rate SLO monitor — cost on
top of the bare engine at fleet scale, and is every error and fault
trace still retained at a 2% hash-sampling rate?

Each fleet size runs the *same* seeded scenario twice per rep — once
bare (fleet + per-home instrumentation + request load + fault plan,
no collectors) and once with the full observability stack — and the
reported ``overhead_ratio`` is the min-of-reps wall-clock ratio. The
per-home metric *updates* happen in both runs: instrumentation is an
application cost; what this bench prices is collection.

Methodology (wall-clock benches on shared machines are noisy):

- bare/obs runs interleave within each rep, so slow machine phases hit
  both sides, and the reported numbers are min-of-N — the closest
  observable to the true floor;
- the garbage collector is frozen (``gc.disable``) across the timed
  window so a collection landing in one side's window cannot skew the
  ratio;
- CPU time (``time.process_time``) is recorded alongside wall time as
  a scheduler-noise-immune cross-check (``cpu_ratio``).

The obs runs double as the determinism gate: every obs rep exports its
TSDB, sampled trace, and SLO logs, and their digests must agree
byte-for-byte across reps (same seed -> same bytes).
"""

import gc
import hashlib
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.faults import FaultInjector, FaultPlan, LinkFlap  # noqa: E402
from repro.obs.sampling import ExemplarStore  # noqa: E402
from repro.obs.slo import BurnRule, RatioSli, SloMonitor, SloSpec  # noqa: E402
from repro.obs.timeseries import TimeSeriesDB  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.workloads.fleet import (  # noqa: E402
    FleetSpec,
    FocusRequestLoad,
    build_fleet,
)

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

# The collection stack's cost is near-constant in fleet size (the
# sampler sees the focus-load traces, the TSDB appends O(focus +
# cohorts + k) rows per scrape), while bare-engine work scales with
# homes — so the <=10% overhead budget is a fleet-scale claim, gated
# at the paper's flagship 100k-home scale.
FLEETS = (100_000,)
REPS = int(os.environ.get("REPRO_BENCH_OBS_REPS", "5"))
SIM_SECONDS = 40.0
OVERHEAD_BUDGET = 1.10

# One scenario, both modes: 4 focus homes driving 400 requests (every
# 25th stalled slow at the origin, every 10th aimed at a focus HPoP),
# and a 10 s access-link flap that times out the requests aimed at the
# flapped HPoP — so the trace stream contains normal, slow, *and* error
# traces for the sampler to decide on.
SPEC_KW = dict(
    focus_homes=4,
    tick=0.2,
    per_home_metrics=True,
    home_metrics_hot=2,
    home_metrics_churn=32,
    home_metrics_rotate=200,
    rollup_k=4,
    rollup_every=8,
)
LOAD_KW = dict(
    requests=400,
    spacing=0.08,
    timeout=4.0,
    slow_every=25,
    slow_delay=2.0,
    peer_every=10,
)
FLAP_LINK = "hpop-n0h1"
FLAP_AT = 10.0
FLAP_DURATION = 10.0

SAMPLING_RATE = 0.02
SLOW_THRESHOLD = 1.5
TSDB_INTERVAL = 5.0

ERROR_ATTRS = ("error", "timeout", "failed")


def _build(num_homes: int):
    """One seeded scenario instance: fleet, request load, fault plan."""
    sim = Simulator(seed=42)
    fleet = build_fleet(sim, FleetSpec(num_homes=num_homes, **SPEC_KW))
    load = FocusRequestLoad(fleet, **LOAD_KW)
    injector = FaultInjector(sim, fleet.city.network)
    injector.apply(FaultPlan([
        LinkFlap(FLAP_LINK, at=sim.now + FLAP_AT, duration=FLAP_DURATION),
    ]))
    return sim, fleet, load, injector


def _attach_obs(sim, fleet, load):
    """The full collection stack under test."""
    tracer = sim.enable_tracing(capacity=262_144, trace_events=False,
                                profile_events=False)
    sampler = tracer.enable_tail_sampling(
        rate=SAMPLING_RATE, slow_threshold=SLOW_THRESHOLD, grace=60.0)
    exemplars = ExemplarStore(sim, window=60.0)
    exemplars.sampler = sampler
    load.exemplars = exemplars
    tsdb = TimeSeriesDB(sim, interval=TSDB_INTERVAL)
    tsdb.add_registry(fleet.registry, source="fleet")
    tsdb.add_registry(load.metrics, source="focusload")
    fleet.attach_rollups(tsdb)
    monitor = SloMonitor(sim, tsdb, [SloSpec(
        name="focusload-availability",
        service="focusload",
        objective=0.99,
        sli=RatioSli(
            total=("focusload/focusload.requests_ok",
                   "focusload/focusload.requests_failed"),
            bad=("focusload/focusload.requests_failed",)),
        rules=(BurnRule("fast", long_window=10.0, short_window=5.0,
                        threshold=1.0),),
        exemplar_metric="focusload.request_seconds",
    )], interval=TSDB_INTERVAL, exemplars=exemplars)
    tsdb.start()
    monitor.start()
    return sampler, tsdb, monitor


def _digest(paths) -> str:
    sha = hashlib.sha256()
    for path in paths:
        with open(path, "rb") as fh:
            sha.update(fh.read())
    return sha.hexdigest()


def _timed_run(sim, fleet) -> tuple:
    """(wall_s, cpu_s) for SIM_SECONDS of simulation, gc frozen."""
    fleet.start()
    gc.collect()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        sim.run_until(sim.now + SIM_SECONDS)
        return (time.perf_counter() - wall0, time.process_time() - cpu0)
    finally:
        gc.enable()


def run_bare(num_homes: int) -> tuple:
    sim, fleet, load, _injector = _build(num_homes)
    load.start()
    timing = _timed_run(sim, fleet)
    fleet.stop()
    return timing


def run_obs(num_homes: int) -> dict:
    sim, fleet, load, injector = _build(num_homes)
    sampler, tsdb, monitor = _attach_obs(sim, fleet, load)
    load.start()
    wall, cpu = _timed_run(sim, fleet)
    fleet.stop()
    monitor.finish()

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace_sampled.jsonl")
        tsdb_path = os.path.join(tmp, "tsdb.jsonl")
        slo_path = os.path.join(tmp, "slo.jsonl")
        sim.tracer.export_jsonl(trace_path)       # flushes the sampler
        tsdb.export_jsonl(tsdb_path)
        monitor.export_jsonl(slo_path)
        digest = _digest((trace_path, tsdb_path, slo_path))

    kept = sampler.kept_spans()
    error_traces = set()
    fault_spans = 0
    for span in kept:
        name = getattr(span, "name", "")
        if name.startswith("fault."):
            fault_spans += 1
        attrs = getattr(span, "attrs", None)
        if attrs and any(attrs.get(key) for key in ERROR_ATTRS):
            error_traces.add(span.trace_id)
    stats = sampler.stats_record()
    alerts = [e for e in monitor.events if e.get("state") == "firing"]
    return {
        "wall": wall,
        "cpu": cpu,
        "digest": digest,
        "requests_ok": len(load.results),
        "request_errors": len(load.errors),
        "traces_seen": stats["traces_seen"],
        "traces_kept": stats["traces_kept"],
        "kept_by_reason": stats["kept_by_reason"],
        "spans_kept": stats["spans_kept"],
        "error_traces_kept": len(error_traces),
        "errors_all_kept": 0 < len(load.errors) <= len(error_traces),
        "fault_spans_kept": fault_spans,
        "scrape_rows_last": tsdb.last_scrape_rows,
        "tsdb_series": len(tsdb.series),
        "alerts_fired": len(alerts),
        "alerts_linked": sum(1 for a in alerts if a.get("exemplar_trace")),
    }


def bench_fleet(num_homes: int, reps: int = REPS) -> dict:
    bare_walls, bare_cpus, obs_walls, obs_cpus = [], [], [], []
    obs_facts = None
    digests = set()
    for rep in range(reps):
        wall, cpu = run_bare(num_homes)
        bare_walls.append(wall)
        bare_cpus.append(cpu)
        facts = run_obs(num_homes)
        obs_walls.append(facts.pop("wall"))
        obs_cpus.append(facts.pop("cpu"))
        digests.add(facts.pop("digest"))
        obs_facts = facts
        print(f"  rep {rep + 1}/{reps}: bare {bare_walls[-1] * 1e3:.0f} ms, "
              f"obs {obs_walls[-1] * 1e3:.0f} ms", flush=True)

    bare_wall, obs_wall = min(bare_walls), min(obs_walls)
    bare_cpu, obs_cpu = min(bare_cpus), min(obs_cpus)
    overhead = obs_wall / bare_wall
    result = {
        "homes": num_homes,
        "sim_seconds": SIM_SECONDS,
        "reps": reps,
        "bare_wall_s": round(bare_wall, 6),
        "obs_wall_s": round(obs_wall, 6),
        "bare_cpu_s": round(bare_cpu, 6),
        "obs_cpu_s": round(obs_cpu, 6),
        "overhead_ratio": round(overhead, 4),
        "cpu_ratio": round(obs_cpu / bare_cpu, 4),
        "budget": OVERHEAD_BUDGET,
        "within_budget": overhead <= OVERHEAD_BUDGET,
        "deterministic": len(digests) == 1,
    }
    result.update(obs_facts)
    return result


def experiment() -> dict:
    doc = {
        "bench": "obs_overhead",
        "config": {
            "spec": SPEC_KW,
            "load": LOAD_KW,
            "flap": {"link": FLAP_LINK, "at": FLAP_AT,
                     "duration": FLAP_DURATION},
            "sampling_rate": SAMPLING_RATE,
            "slow_threshold": SLOW_THRESHOLD,
            "tsdb_interval": TSDB_INTERVAL,
        },
        "fleets": {},
    }
    for num_homes in FLEETS:
        print(f"fleet {num_homes} homes ...", flush=True)
        cell = bench_fleet(num_homes)
        doc["fleets"][str(num_homes)] = cell
        print(f"  overhead {cell['overhead_ratio']:.3f}x wall "
              f"({cell['cpu_ratio']:.3f}x cpu), "
              f"{cell['traces_kept']}/{cell['traces_seen']} traces kept, "
              f"{cell['scrape_rows_last']} rows/scrape", flush=True)
    with open(OUT_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(OUT_PATH)}")
    return doc


def main() -> int:
    doc = experiment()
    bad = [size for size, cell in doc["fleets"].items()
           if not (cell["within_budget"] and cell["deterministic"]
                   and cell["errors_all_kept"] and cell["fault_spans_kept"])]
    if bad:
        print(f"FAIL: budget/determinism/retention gate: {bad}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
