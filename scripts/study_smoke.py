#!/usr/bin/env python3
"""Study-runner smoke stage for scripts/check.sh (``make check``).

Gates the determinism and resume contracts of ``repro.experiments``:

1. **Worker-count byte identity.** A 2-seed chaos mini-study run on a
   2-worker pool and again on 1 worker must produce byte-identical
   merged ``summary.json`` files — worker count and scheduling order
   may never leak into the cross-run statistics.
2. **Resume after a kill.** Deleting one cell's artifacts and journal
   line (what a SIGKILL mid-cell leaves behind) and re-running must
   execute *only* the missing cell, and the rebuilt summary must be
   byte-identical to the uninterrupted one.
3. **Summary content sanity.** The merged summary actually carries
   cross-run statistics: per-seed verdict rows for every cell and at
   least one aligned series with a CI band (an empty summary would
   also be byte-identical).

Wall-clock speedup is intentionally *not* gated here (CI hosts may be
single-core); ``scripts/study_run.py`` prints the observed speedup on
real hardware.

Exit code 0 on success; raises on any violation.
"""

import json
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.experiments import (  # noqa: E402
    StudySpec,
    build_summary,
    run_study,
    summary_bytes,
    write_summary,
)

SEEDS = (101, 202)
# Keep smoke cells lean: the per-run trace/profile artifacts are
# exercised by `make dashboard`; here only the merged statistics and
# the journal mechanics are under test.
PARAMS = {"trace": False, "profile": False}


def spec_for(workers: int) -> StudySpec:
    return StudySpec.build("chaos", seeds=SEEDS, params=PARAMS,
                           workers=workers, name="study-smoke")


def quiet(*_args) -> None:
    pass


def check_worker_count_identity(tmp: pathlib.Path) -> bytes:
    pooled_dir, serial_dir = tmp / "w2", tmp / "w1"
    pooled = run_study(spec_for(2), pooled_dir, progress=quiet)
    assert pooled.ok, f"pooled study failed cells: {pooled.failed}"
    assert pooled.workers == 2, f"expected 2 workers, ran {pooled.workers}"
    serial = run_study(spec_for(1), serial_dir, progress=quiet)
    assert serial.ok, f"serial study failed cells: {serial.failed}"
    blob_pooled = summary_bytes(build_summary(pooled_dir))
    blob_serial = summary_bytes(build_summary(serial_dir))
    assert blob_pooled == blob_serial, (
        "merged summary differs between 2-worker and 1-worker runs")
    write_summary(pooled_dir)
    print(f"  worker-count identity OK ({len(SEEDS)} seeds, "
          f"{len(blob_pooled)} summary bytes, 2-worker == 1-worker)")
    return blob_pooled


def check_resume_after_kill(tmp: pathlib.Path, reference: bytes) -> None:
    study_dir = tmp / "w2"           # reuse the completed pooled study
    victim = spec_for(2).cells()[0].cell_id
    survivor = spec_for(2).cells()[1].cell_id

    # Simulate a kill mid-cell: the victim's artifacts and journal
    # line vanish; everything else stays.
    victim_dir = study_dir / "cells" / victim
    for path in sorted(victim_dir.iterdir()):
        path.unlink()
    victim_dir.rmdir()
    journal = study_dir / "journal.jsonl"
    kept = [line for line in journal.read_text().splitlines()
            if json.loads(line)["cell"] != victim]
    journal.write_text("".join(line + "\n" for line in kept))

    resumed = run_study(spec_for(2), study_dir, progress=quiet)
    assert resumed.ok, f"resumed study failed cells: {resumed.failed}"
    assert resumed.executed == [victim], (
        f"resume re-ran {resumed.executed}, expected only [{victim}]")
    assert survivor in resumed.skipped, (
        f"resume did not skip completed cell {survivor}")
    blob = summary_bytes(build_summary(study_dir))
    assert blob == reference, (
        "summary after resume differs from the uninterrupted run")
    print(f"  resume-after-kill OK (re-ran only {victim}, "
          f"summary byte-identical)")


def check_summary_content(tmp: pathlib.Path) -> None:
    summary = build_summary(tmp / "w2")
    matrix = summary["slo"]["matrix"]
    assert len(matrix) == len(SEEDS), (
        f"verdict matrix covers {len(matrix)} cells, want {len(SEEDS)}")
    assert all(row for row in matrix.values()), "empty verdict row"
    assert summary["slo"]["pass_rates"], "no cross-run pass-rate rows"
    series = summary["series"]
    assert series, "no aligned series in the summary"
    banded = next(iter(sorted(series)))
    band = series[banded]
    assert len(band["runs"]) == len(SEEDS), (
        f"band for {banded} merged {band['runs']}, want all seeds")
    assert len(band["mean"]) == len(band["grid"]) == len(band["ci_lo"]), (
        "band arrays misaligned")
    assert any(lo != hi for lo, hi in zip(band["ci_lo"], band["ci_hi"])) \
        or len(SEEDS) < 2 or all(
            v == band["mean"][0] for v in band["mean"]), (
        f"degenerate CI band for {banded}")
    assert summary["faults"], "no per-cell fault counts"
    print(f"  summary content OK ({len(matrix)}-cell verdict matrix, "
          f"{len(series)} banded series, "
          f"{len(summary['slo']['pass_rates'])} pass-rate rows)")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_str:
        tmp = pathlib.Path(tmp_str)
        print("study smoke: worker-count byte identity")
        reference = check_worker_count_identity(tmp)
        print("study smoke: resume after kill")
        check_resume_after_kill(tmp, reference)
        print("study smoke: merged summary content")
        check_summary_content(tmp)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
