#!/usr/bin/env python3
"""Zipf x fleet-size NoCDN offload benchmark (``make bench-nocdn``).

Sweeps collaborative-caching strategies over page popularity skew
(Zipf alpha 0.6 / 0.9 / 1.2) and fleet size (100 / 1k / 10k homes),
against the traditional-CDN edge baseline, and writes
``BENCH_nocdn.json`` at the repo root for the ``make bench-check``
regression gate.

Each cell replays the same seeded workload through
``run_nocdn_fleet_cell`` and records origin offload (fraction of
delivered bytes the origin did *not* have to send), byte hit ratio,
and aggregation-uplink traffic. The bench itself asserts the tentpole
claim: at 1k+ homes, sharded and replicate-hot placement strictly beat
the naive per-peer cache on origin offload at every skew. A
determinism probe runs the cheapest cell twice and requires identical
facts and byte-identical tsdb exports.
"""

import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.experiments.scenarios import run_nocdn_fleet_cell  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_nocdn.json"

SEED = 7
ZIPFS = (0.6, 0.9, 1.2)
FLEETS = (100, 1_000, 10_000)
STRATEGIES = ("naive", "sharded", "replicate-hot", "cdn")
LOADS = {100: 120, 1_000: 240, 10_000: 360}
COLLABORATIVE = ("sharded", "replicate-hot")


def cell_key(zipf: float, fleet: int, strategy: str) -> str:
    # No dots: the regress gate addresses metrics by dotted path.
    alpha = f"{zipf:g}".replace(".", "p")
    return f"z{alpha}_f{fleet}_{strategy}"


def run_cell(zipf: float, fleet: int, strategy: str,
             out_dir: pathlib.Path) -> dict:
    out_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    facts = run_nocdn_fleet_cell(
        SEED, {"fleet": fleet, "zipf": zipf, "strategy": strategy,
               "loads": LOADS[fleet]}, out_dir)
    facts["wall_seconds"] = round(time.perf_counter() - t0, 3)
    return facts


def determinism_probe(work_dir: pathlib.Path) -> dict:
    """The cheapest cell, twice: facts and tsdb bytes must match."""
    runs = []
    for tag in ("a", "b"):
        out = work_dir / f"determinism-{tag}"
        facts = run_cell(0.9, 100, "sharded", out)
        facts.pop("wall_seconds")
        runs.append((facts, (out / "tsdb.jsonl").read_bytes()))
    (facts_a, tsdb_a), (facts_b, tsdb_b) = runs
    assert facts_a == facts_b, (
        f"same-seed facts diverged:\n{facts_a}\n{facts_b}")
    assert tsdb_a == tsdb_b, "same-seed tsdb export diverged"
    return {"cell": cell_key(0.9, 100, "sharded"),
            "facts_identical": True, "tsdb_identical": True}


def experiment() -> dict:
    work_dir = pathlib.Path(tempfile.mkdtemp(prefix="bench_nocdn_"))
    cells = {}
    try:
        for fleet in FLEETS:
            for zipf in ZIPFS:
                for strategy in STRATEGIES:
                    key = cell_key(zipf, fleet, strategy)
                    facts = run_cell(zipf, fleet, strategy, work_dir / key)
                    cells[key] = facts
                    print(f"{key:>26s}: offload {facts['origin_offload']:.4f}"
                          f"  hit {facts['byte_hit_ratio']:.4f}"
                          f"  loads {facts['loads_ok']}"
                          f"  ({facts['wall_seconds']:.1f}s)")
        determinism = determinism_probe(work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    # The tentpole claim: collaborative placement strictly beats the
    # naive per-peer cache at 1k+ homes, at every skew.
    violations = []
    for fleet in FLEETS:
        if fleet < 1_000:
            continue
        for zipf in ZIPFS:
            naive = cells[cell_key(zipf, fleet, "naive")]["origin_offload"]
            for strategy in COLLABORATIVE:
                got = cells[cell_key(zipf, fleet, strategy)]["origin_offload"]
                if not got > naive:
                    violations.append(
                        f"{cell_key(zipf, fleet, strategy)}: offload {got} "
                        f"not > naive {naive}")
    doc = {
        "bench": "nocdn_fleet",
        "seed": SEED,
        "zipfs": list(ZIPFS),
        "fleets": list(FLEETS),
        "strategies": list(STRATEGIES),
        "cells": cells,
        "determinism": determinism,
        "offload_gate": not violations,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(OUT_PATH)}")
    assert not violations, "offload gate failed:\n" + "\n".join(violations)
    return doc


def main() -> int:
    experiment()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
