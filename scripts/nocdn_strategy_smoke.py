#!/usr/bin/env python
"""Collaborative-caching smoke (part of ``make check``).

Runs a mini NoCDN fleet (100 homes, seeded Zipf workload) once per
placement strategy — twice each — and verifies the headline
guarantees of the collaborative-caching subsystem without the cost of
the full ``make bench-nocdn`` sweep:

1. every scheduled page load completes, with zero load errors,
2. same-seed runs are deterministic: identical facts and
   byte-identical ``tsdb.jsonl`` exports,
3. collaborative placement pays for itself: sharded and replicate-hot
   both achieve strictly higher origin offload than the naive
   per-peer cache.
"""

import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.experiments.scenarios import run_nocdn_fleet_cell  # noqa: E402

SEED = 7
PARAMS = {"fleet": 100, "zipf": 0.9, "loads": 80}
STRATEGIES = ("naive", "sharded", "replicate-hot")


def main() -> int:
    failures = []
    offload = {}
    with tempfile.TemporaryDirectory() as tmp:
        for strategy in STRATEGIES:
            runs = []
            for tag in ("a", "b"):
                out = pathlib.Path(tmp) / f"{strategy}-{tag}"
                out.mkdir(parents=True)
                facts = run_nocdn_fleet_cell(
                    SEED, dict(PARAMS, strategy=strategy), out)
                runs.append((facts, (out / "tsdb.jsonl").read_bytes()))
            facts, tsdb = runs[0]
            print(f"{strategy:>14s}: {facts['loads_ok']} loads ok, "
                  f"{facts['load_errors']} errors, "
                  f"offload {facts['origin_offload']:.4f}, "
                  f"hit {facts['byte_hit_ratio']:.4f}")
            if facts["load_errors"] or facts["loads_ok"] != PARAMS["loads"]:
                failures.append(f"{strategy}: loads incomplete "
                                f"({facts['loads_ok']} ok, "
                                f"{facts['load_errors']} errors)")
            if facts != runs[1][0]:
                failures.append(f"{strategy}: same-seed facts differ "
                                f"(determinism bug)")
            if tsdb != runs[1][1]:
                failures.append(f"{strategy}: same-seed tsdb exports differ "
                                f"(determinism bug)")
            offload[strategy] = facts["origin_offload"]

    for strategy in ("sharded", "replicate-hot"):
        if not offload[strategy] > offload["naive"]:
            failures.append(
                f"{strategy} offload {offload[strategy]} not strictly "
                f"above naive {offload['naive']}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("nocdn strategy smoke passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
