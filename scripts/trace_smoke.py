#!/usr/bin/env python3
"""Trace smoke stage for scripts/check.sh.

1. Runs a small end-to-end HPoP simulation (attic PUT + WAN GET) with
   tracing enabled, exports the trace, runs the trace_report renderer
   on it, and asserts it parses with >= 1 span and all three report
   sections present.
2. Runs the same traced sim twice from the same seed and asserts the
   default (sim-time-only) JSONL exports are byte-identical.
3. Times the erasure codec's encode path under the null tracer vs. an
   enabled tracer and fails on > 5% overhead — the "tracing off must be
   free, tracing on must be cheap outside the event loop" budget. The
   codec never touches the tracer, so this pins the *ambient* cost of
   the instrumentation hooks.

Exit code 0 on success; raises on any violation.
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.attic.service import DataAtticService  # noqa: E402
from repro.hpop.core import Household, Hpop, User  # noqa: E402
from repro.http.client import HttpClient  # noqa: E402
from repro.http.messages import HttpRequest  # noqa: E402
from repro.net.topology import build_city  # noqa: E402
from repro.obs.report import load_trace, render_report  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.util.erasure import ReedSolomonCodec  # noqa: E402
from repro.util.units import kib  # noqa: E402

OVERHEAD_BUDGET = 1.05


def run_traced_sim(path: str, include_profile: bool) -> None:
    """The quickstart flow (PUT from home, GET from the WAN), traced."""
    sim = Simulator(seed=7)
    tracer = sim.enable_tracing()
    city = build_city(sim, homes_per_neighborhood=4,
                      server_sites={"coffee-shop": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smoke", users=[
        User(name="ann", password="pw", devices=[home.devices[0]])])
    hpop = Hpop(home.hpop_host, city.network, household)
    hpop.install(DataAtticService())
    hpop.start()

    from repro.webdav.server import basic_auth
    headers = basic_auth("ann", "pw")
    statuses = []

    inside = HttpClient(home.devices[0], city.network)
    inside.request(hpop.host,
                   HttpRequest("PUT", "/attic/ann/notes.txt",
                               headers=headers, body="smoke",
                               body_size=kib(64)),
                   lambda resp, stats: statuses.append(resp.status),
                   port=443)
    sim.run()

    laptop = city.server_sites["coffee-shop"].servers[0]
    outside = HttpClient(laptop, city.network)
    outside.request(hpop.host,
                    HttpRequest("GET", "/attic/ann/notes.txt",
                                headers=headers),
                    lambda resp, stats: statuses.append(resp.status),
                    port=443)
    sim.run()

    assert statuses == [201, 200], f"smoke sim failed: {statuses}"
    tracer.export_jsonl(path, include_profile=include_profile)


def check_report() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        run_traced_sim(path, include_profile=True)
        trace = load_trace(path)
        spans = trace.spans()
        assert len(spans) >= 1, "traced sim produced no spans"
        report = render_report(trace)
        for section in ("== span latency (simulated time) ==",
                        "== critical path of slowest span",
                        "== hotspots by event label =="):
            assert section in report, f"report is missing {section!r}"
        assert "http.request" in report, "no http.request spans in report"
    print(f"  report OK ({len(spans)} spans, "
          f"{len(trace.events())} event marks)")


def check_determinism() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        a = os.path.join(tmp, "a.jsonl")
        b = os.path.join(tmp, "b.jsonl")
        run_traced_sim(a, include_profile=False)
        run_traced_sim(b, include_profile=False)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            blob_a, blob_b = fa.read(), fb.read()
        assert blob_a, "empty trace export"
        assert blob_a == blob_b, "same-seed traces are not byte-identical"
    print(f"  determinism OK ({len(blob_a)} bytes, byte-identical)")


def bench_encode(sim: Simulator, codec: ReedSolomonCodec,
                 payload: bytes, repeats: int) -> float:
    """Best-of-N wall time of the encode loop under sim's current tracer."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        codec.encode(payload)
        best = min(best, time.perf_counter() - t0)
    return best


def check_overhead() -> None:
    payload = bytes(range(256)) * 512  # 128 KiB
    codec = ReedSolomonCodec(4, 2)
    codec.encode(payload)  # warm any caches

    sim = Simulator(seed=0)
    base = bench_encode(sim, codec, payload, repeats=5)
    sim.enable_tracing()
    traced = bench_encode(sim, codec, payload, repeats=5)

    ratio = traced / base if base > 0 else 1.0
    print(f"  overhead OK (null {base * 1e3:.2f} ms, "
          f"traced {traced * 1e3:.2f} ms, ratio {ratio:.3f})")
    assert ratio <= OVERHEAD_BUDGET, (
        f"tracer overhead {ratio:.3f}x exceeds {OVERHEAD_BUDGET}x budget")


def main() -> int:
    print("trace smoke: end-to-end report")
    check_report()
    print("trace smoke: same-seed determinism")
    check_determinism()
    print("trace smoke: tracer overhead on the erasure bench")
    check_overhead()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
