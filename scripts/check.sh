#!/usr/bin/env bash
# Tier-1 verification + codec-regression gate + trace smoke.
#
# Runs the repo's tier-1 test command, then re-runs the exhaustive
# erasure MDS tests explicitly so a regression in the codec (the one
# spot the seed shipped broken) fails fast and loudly, then the
# observability smoke stage: a traced end-to-end sim must produce a
# parseable report with >= 1 span, same-seed traces must be
# byte-identical, and tracer overhead on the erasure encode path must
# stay within 5% of the no-op tracer.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full suite =="
if python -c "import pytest_cov" >/dev/null 2>&1; then
    # Coverage gate only where the plugin exists; the container image
    # does not ship pytest-cov and we cannot install it there.
    python -m pytest -x -q --cov=repro --cov-report=term-missing:skip-covered
else
    python -m pytest -x -q
fi

echo
echo "== erasure codec gate: exhaustive any-k-of-n =="
python -m pytest -x -q \
    tests/util/test_erasure.py::TestMdsConstruction \
    tests/util/test_erasure.py::test_any_k_of_n_recovers

echo
echo "== trace smoke: traced sim + report + determinism + overhead =="
python scripts/trace_smoke.py

echo
echo "== obs smoke: TSDB determinism + profiler overhead =="
python scripts/obs_smoke.py

echo
echo "== chaos soak: fixed-seed churn + degradation guarantees =="
python scripts/chaos_soak.py

echo
echo "== control smoke: decision-log determinism + acted-on alerts =="
python scripts/control_smoke.py

echo
echo "== nocdn strategy smoke: determinism + collaborative offload win =="
python scripts/nocdn_strategy_smoke.py

echo
echo "== study smoke: worker-count byte identity + resume =="
python scripts/study_smoke.py

echo
echo "all checks passed"
