#!/usr/bin/env bash
# Tier-1 verification + codec-regression gate.
#
# Runs the repo's tier-1 test command, then re-runs the exhaustive
# erasure MDS tests explicitly so a regression in the codec (the one
# spot the seed shipped broken) fails fast and loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full suite =="
python -m pytest -x -q

echo
echo "== erasure codec gate: exhaustive any-k-of-n =="
python -m pytest -x -q \
    tests/util/test_erasure.py::TestMdsConstruction \
    tests/util/test_erasure.py::test_any_k_of_n_recovers

echo
echo "all checks passed"
