#!/usr/bin/env python3
"""Fleet-scale engine benchmark (``make bench-scale``).

Measures what the engine rewrite bought at 100k-home fleet sizes and
writes ``BENCH_scale.json`` at the repo root for the ``make
bench-check`` regression gate:

1. **Engine throughput** — events/s on a shallow heap and against a
   10k-event backlog (the fleet-scale regime where tuple-heap
   comparisons dominate).
2. **Fleet scenarios** — 1k/10k/100k-home fleets driven by analytic
   background aggregation: wall-clock per simulated second, event
   counts, resident memory.
3. **Naive comparison** — the same 10k-home fleet with one periodic
   event per idle home (how background load was simulated before
   aggregation). The recorded speedup is the scenario-level win and is
   gated at >= 5x.
"""

import gc
import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.engine import Simulator  # noqa: E402
from repro.workloads.fleet import (  # noqa: E402
    FleetSpec,
    PerHomeBackground,
    build_fleet,
)

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_scale.json")

SCALES = (1_000, 10_000, 100_000)
SCALE_SIM_SECONDS = {1_000: 600.0, 10_000: 600.0, 100_000: 300.0}
NAIVE_HOMES = 10_000
NAIVE_SIM_SECONDS = 30.0
SPIN_EVENTS = 200_000
DEEP_HEAP_DEPTH = 10_000
MIN_SPEEDUP = 5.0


def current_rss_mb() -> float:
    """Resident set right now (VmRSS), in MiB."""
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return float(line.split()[1]) / 1024.0
    return 0.0


def peak_rss_mb() -> float:
    """Process high-water RSS (ru_maxrss), in MiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_engine_events_per_s(depth: int, events: int = SPIN_EVENTS) -> float:
    """Self-rescheduling spin throughput with ``depth`` backlog events."""
    sim = Simulator(seed=1)
    for i in range(depth):
        sim.schedule(1e9 + i, lambda: None, weak=True)
    remaining = {"n": events}

    def tick() -> None:
        remaining["n"] -= 1
        if remaining["n"] > 0:
            sim.schedule(0.001, tick, label="spin")

    sim.schedule(0.001, tick, label="spin")
    t0 = time.perf_counter()
    sim.run()
    return events / (time.perf_counter() - t0)


def run_fleet_scenario(num_homes: int, sim_seconds: float) -> dict:
    """Aggregated fleet run: wall/sim ratio, events, memory."""
    gc.collect()
    sim = Simulator(seed=42)
    fleet = build_fleet(sim, FleetSpec(num_homes=num_homes, focus_homes=5))
    fleet.start()
    t0 = time.perf_counter()
    sim.run_until(sim_seconds)
    wall = time.perf_counter() - t0
    bytes_up = sum(a.uplink.forward.stats.bytes_carried
                   for a in fleet.aggregates)
    result = {
        "homes": num_homes,
        "sim_seconds": sim_seconds,
        "wall_seconds": round(wall, 6),
        "wall_per_sim_second": round(wall / sim_seconds, 9),
        "events": sim.events_fired,
        "bg_bytes_up": round(bytes_up, 3),
        "rss_mb": round(current_rss_mb(), 1),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    fleet.stop()
    return result


def run_naive_scenario(num_homes: int, sim_seconds: float) -> dict:
    """Per-home background events — the pre-aggregation regime."""
    gc.collect()
    sim = Simulator(seed=42)
    fleet = build_fleet(sim, FleetSpec(num_homes=num_homes, focus_homes=5))
    # Replace the analytic aggregates with one periodic source per home.
    naive = [PerHomeBackground(sim, agg.uplink, agg.num_homes,
                               FleetSpec().profile, tick=agg.tick,
                               stream=f"naive.bg{i}")
             for i, agg in enumerate(fleet.aggregates)]
    for source in naive:
        source.start()
    t0 = time.perf_counter()
    sim.run_until(sim_seconds)
    wall = time.perf_counter() - t0
    for source in naive:
        source.stop()
    return {
        "homes": num_homes,
        "sim_seconds": sim_seconds,
        "wall_seconds": round(wall, 6),
        "wall_per_sim_second": round(wall / sim_seconds, 9),
        "events": sim.events_fired,
    }


def experiment() -> dict:
    print(f"engine: spin x{SPIN_EVENTS} shallow / depth {DEEP_HEAP_DEPTH}")
    shallow = bench_engine_events_per_s(depth=0)
    deep = bench_engine_events_per_s(depth=DEEP_HEAP_DEPTH)
    print(f"  shallow {shallow:,.0f} ev/s, deep {deep:,.0f} ev/s")

    scales = {}
    for homes in SCALES:
        sim_seconds = SCALE_SIM_SECONDS[homes]
        result = run_fleet_scenario(homes, sim_seconds)
        scales[str(homes)] = result
        print(f"fleet {homes:>6} homes: {result['wall_seconds']:.3f}s wall "
              f"for {sim_seconds:g} sim-s "
              f"({result['wall_per_sim_second'] * 1e3:.3f} ms/sim-s), "
              f"{result['events']} events, rss {result['rss_mb']:.0f} MB")

    naive = run_naive_scenario(NAIVE_HOMES, NAIVE_SIM_SECONDS)
    aggregated = run_fleet_scenario(NAIVE_HOMES, NAIVE_SIM_SECONDS)
    speedup = (naive["wall_per_sim_second"]
               / max(aggregated["wall_per_sim_second"], 1e-12))
    print(f"naive {NAIVE_HOMES} homes: "
          f"{naive['wall_per_sim_second'] * 1e3:.3f} ms/sim-s "
          f"({naive['events']} events) vs aggregated "
          f"{aggregated['wall_per_sim_second'] * 1e3:.3f} ms/sim-s "
          f"({aggregated['events']} events): {speedup:.1f}x")

    doc = {
        "bench": "scale",
        "engine": {
            "shallow_events_per_s": round(shallow, 1),
            "deep_heap_depth": DEEP_HEAP_DEPTH,
            "deep_heap_events_per_s": round(deep, 1),
        },
        "scales": scales,
        "naive_10k": naive,
        "speedup_10k_vs_naive": round(speedup, 2),
        "min_speedup_required": MIN_SPEEDUP,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    assert speedup >= MIN_SPEEDUP, (
        f"10k-home aggregated fleet is only {speedup:.1f}x faster than "
        f"naive per-home simulation (required {MIN_SPEEDUP}x)")
    return doc


def main() -> int:
    experiment()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
