#!/usr/bin/env python3
"""Build the unified run dashboard (``make dashboard``).

Two modes:

- ``--chaos``: run the fixed-seed chaos scenario under the full
  telemetry stack (tracer + TSDB scraper + SLO monitor + event-loop
  profiler), export every artifact into ``--out-dir``, and render the
  dashboard from them.
- artifact mode: point ``--trace/--tsdb/--faults/--slo/--profile`` at
  the JSONL files an earlier run exported — or just ``--artifacts DIR``
  at a directory holding them under the standard names (a study cell
  directory, for instance) — and render those (any subset works;
  missing artifacts just omit their dashboard sections).

Outputs ``dashboard.md`` and ``dashboard.html`` (self-contained, no
external assets) plus, in ``--chaos`` mode, the raw artifacts:
``trace.jsonl``, ``tsdb.jsonl``, ``faults.jsonl``, ``slo.jsonl``,
``control.jsonl`` (the control plane's remediation decision log —
omitted with ``--no-controller``), ``profile.json``, and
``profile.collapsed`` (flamegraph input).

With ``--json`` the dashboard's content is additionally written to
``dashboard.json`` and printed — the machine-readable mirror of the
rendered tables (same idea as ``trace_report.py --json``), which is
what study summaries embed instead of screen-scraping markdown.
"""

import argparse
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.obs.dashboard import (RunArtifacts, build_html,  # noqa: E402
                                 build_markdown, dashboard_json)

# Standard artifact filenames --artifacts discovers in a directory.
ARTIFACT_FILES = {"trace": "trace.jsonl", "tsdb": "tsdb.jsonl",
                  "faults": "faults.jsonl", "slo": "slo.jsonl",
                  "control": "control.jsonl", "profile": "profile.json"}


def run_chaos_instrumented(seed: int, out_dir: pathlib.Path,
                           controller: bool = True) -> dict:
    """Drive the chaos scenario with every telemetry layer attached."""
    from tests.integration.test_chaos import ChaosWorld, CHURN_FRACTION

    world = ChaosWorld(seed)
    tracer = world.sim.enable_tracing(capacity=262144)
    profiler = world.sim.enable_profiling()
    world.enable_telemetry()
    if controller:
        world.enable_controller()
    world.seed_attic()
    plan = world.apply_churn(CHURN_FRACTION)
    results, errors = world.schedule_loads()
    world.sim.run_until(world.sim.now + 150.0)
    world.slo_monitor.finish()

    paths = {
        "trace": out_dir / "trace.jsonl",
        "tsdb": out_dir / "tsdb.jsonl",
        "faults": out_dir / "faults.jsonl",
        "slo": out_dir / "slo.jsonl",
        "profile": out_dir / "profile.json",
    }
    if controller:
        paths["control"] = out_dir / "control.jsonl"
        world.controller.export_jsonl(str(paths["control"]))
    tracer.export_jsonl(str(paths["trace"]), include_profile=True)
    world.tsdb.export_jsonl(str(paths["tsdb"]))
    world.injector.export_jsonl(str(paths["faults"]))
    world.slo_monitor.export_jsonl(str(paths["slo"]))
    paths["profile"].write_text(json.dumps(profiler.to_dict(), indent=2,
                                           sort_keys=True))
    profiler.export_collapsed(str(out_dir / "profile.collapsed"))

    actions = ""
    if controller:
        executed = world.controller.metrics.counters[
            "actions_executed"].value
        actions = f"{executed:.0f} remediation actions, "
    print(f"chaos run: seed={seed} {len(plan)} planned faults, "
          f"{len(results)} loads ok, {len(errors)} load errors, "
          f"{len(world.slo_monitor.events)} SLO transitions, "
          f"{actions}"
          f"wall/sim ratio {profiler.wall_sim_ratio:.4f}")
    return {key: str(path) for key, path in paths.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos scenario and dashboard it")
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--out-dir", default="artifacts/dashboard",
                        help="artifact + dashboard output directory")
    parser.add_argument("--artifacts", metavar="DIR",
                        help="directory holding artifacts under the "
                             "standard names (trace.jsonl, tsdb.jsonl, "
                             "faults.jsonl, slo.jsonl, profile.json)")
    parser.add_argument("--no-controller", action="store_true",
                        help="with --chaos: run without the control "
                             "plane (no remediation/convergence view)")
    parser.add_argument("--json", action="store_true",
                        help="also write dashboard.json and print the "
                             "machine-readable summary")
    parser.add_argument("--trace", help="trace JSONL from Tracer.export_jsonl")
    parser.add_argument("--tsdb", help="TSDB JSONL from TimeSeriesDB")
    parser.add_argument("--faults", help="fault log from FaultInjector")
    parser.add_argument("--slo", help="SLO log from SloMonitor")
    parser.add_argument("--control",
                        help="decision log from repro.control.Controller")
    parser.add_argument("--profile", help="profiler JSON (LoopProfiler)")
    parser.add_argument("--lookback", type=float, default=10.0,
                        help="alert->fault correlation window (sim s)")
    parser.add_argument("--title", default=None)
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when the trace artifact was "
                             "truncated (spans_dropped > 0)")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    if args.chaos:
        produced = run_chaos_instrumented(
            args.seed, out_dir, controller=not args.no_controller)
        for key, value in produced.items():
            setattr(args, key, getattr(args, key) or value)
        title = args.title or f"chaos scenario, seed {args.seed}"
    else:
        if args.artifacts:
            art_dir = pathlib.Path(args.artifacts)
            if not art_dir.is_dir():
                parser.error(f"--artifacts {art_dir} is not a directory")
            for key, filename in ARTIFACT_FILES.items():
                candidate = art_dir / filename
                if candidate.is_file() and not getattr(args, key):
                    setattr(args, key, str(candidate))
        if not any((args.trace, args.tsdb, args.faults, args.slo)):
            parser.error("give --chaos, --artifacts, or at least one "
                         "artifact path")
        title = args.title or (f"artifacts from {args.artifacts}"
                               if args.artifacts else "simulation run")

    art = RunArtifacts.load(trace_path=args.trace, tsdb_path=args.tsdb,
                            faults_path=args.faults, slo_path=args.slo,
                            control_path=args.control,
                            profile_path=args.profile, title=title)

    md_path = out_dir / "dashboard.md"
    html_path = out_dir / "dashboard.html"
    md_path.write_text(build_markdown(art, lookback=args.lookback),
                       encoding="utf-8")
    html_path.write_text(build_html(art, lookback=args.lookback),
                         encoding="utf-8")
    written = f"{md_path} and {html_path}"
    if args.json:
        payload = dashboard_json(art, lookback=args.lookback)
        json_path = out_dir / "dashboard.json"
        json_path.write_text(json.dumps(payload, sort_keys=True, indent=2)
                             + "\n", encoding="utf-8")
        print(json.dumps(payload, sort_keys=True, indent=2))
        written += f" and {json_path}"
    print(f"wrote {written}")

    firing = [e for e in art.slo_events if e.get("state") == "firing"]
    correlated = [r for r in art.correlations(args.lookback) if r["causes"]]
    if firing:
        print(f"{len(firing)} burn-rate alerts, "
              f"{len(correlated)} correlated to an injected fault")
    if art.control:
        conv = art.control_convergences()
        executed = [d for d in art.control_decisions()
                    if d["outcome"] == "executed"]
        print(f"{len(executed)} remediation actions executed, "
              f"{len(conv)} alerts converged")
    if args.strict and art.trace is not None and art.trace.dropped > 0:
        print(f"strict: {art.trace.dropped} spans dropped by the ring "
              f"buffer (trace artifact incomplete; raise the capacity or "
              f"enable tail sampling)", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
