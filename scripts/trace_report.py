#!/usr/bin/env python3
"""Summarize a JSONL trace produced by ``Tracer.export_jsonl``.

Prints three sections: the per-span-name latency table (count / mean /
p50 / p99 of simulated time), the critical path of the slowest span,
and the top wall-clock hotspots by event label (event-count shares when
the trace has no wall-clock profile). A trace truncated by the ring
buffer is flagged loudly with its dropped-span count.

With ``--json`` the same analysis is emitted as one JSON document so CI
and ``scripts/dashboard_report.py`` can consume it without screen-
scraping the text tables.

Usage:
    python scripts/trace_report.py TRACE.jsonl [--top N] [--json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.report import load_trace, render_report, report_json  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize a repro.obs JSONL trace")
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument("--top", type=int, default=10,
                        help="hotspot rows to show (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when the trace was truncated "
                             "(spans_dropped > 0)")
    args = parser.parse_args(argv)

    trace = load_trace(args.trace)
    if not trace.records:
        print(f"no trace records in {args.trace}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report_json(trace, top=args.top), sort_keys=True,
                         indent=2))
    else:
        print(render_report(trace, top=args.top))
    if args.strict and trace.dropped > 0:
        print(f"strict: {trace.dropped} spans dropped by the ring buffer "
              f"({args.trace} is incomplete; raise the capacity or enable "
              f"tail sampling)", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
