#!/usr/bin/env python3
"""Run a multi-seed / parameter-grid study on a process pool.

Fans a scenario across every (seed, grid point) cell, one worker
process per core by default, journaling each completed cell so an
interrupted sweep resumes with only the missing runs (``--fresh``
discards the journal). When all cells are done it merges the per-run
TSDB/SLO/fault exports into ``summary.json`` (deterministic bytes —
independent of worker count and scheduling) and renders the study
dashboard (``study.md`` + ``study.html``: CI bands, per-seed verdict
matrix, slowest-run hotspots).

Examples::

    python scripts/study_run.py --scenario chaos --seeds 101-116 \
        --workers 8 --out artifacts/study
    python scripts/study_run.py --scenario chaos --seeds 101,102 \
        --grid fraction=0.0,0.1,0.2 --out artifacts/churn-sweep
    python scripts/study_run.py --scenario mymod:my_cell --seeds 1-8

Scenario names are built-ins (``chaos``, ``fleet``) or a
``module:callable`` path; see ``repro/experiments/scenarios.py`` for
the cell contract.
"""

import argparse
import pathlib
import sys
from typing import Any, List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.experiments import (  # noqa: E402
    StudySpec,
    build_summary,
    run_study,
    write_summary,
)
from repro.obs.dashboard import (  # noqa: E402
    StudyArtifacts,
    build_study_html,
    build_study_markdown,
)


def parse_seeds(text: str) -> List[int]:
    """``101,102`` and/or inclusive ranges ``101-116``."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part.lstrip("-"):
            lo_text, _, hi_text = part.partition("-")
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"bad seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return seeds


def parse_value(text: str) -> Any:
    """int -> float -> bool -> string, first parse wins."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scenario", default="chaos",
                        help="built-in name or module:callable "
                             "(default: chaos)")
    parser.add_argument("--seeds", required=True,
                        help="comma list and/or inclusive ranges, "
                             "e.g. 101,105 or 101-116")
    parser.add_argument("--param", action="append", default=[],
                        metavar="K=V",
                        help="base param applied to every cell "
                             "(repeatable)")
    parser.add_argument("--grid", action="append", default=[],
                        metavar="K=V1,V2,...",
                        help="grid axis crossed into cells (repeatable)")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size; 0 = one per CPU (default)")
    parser.add_argument("--out", default="artifacts/study",
                        help="study directory (journal, cells, summary)")
    parser.add_argument("--fresh", action="store_true",
                        help="discard any journal and re-run every cell")
    parser.add_argument("--no-dashboard", action="store_true",
                        help="skip rendering study.md / study.html")
    parser.add_argument("--band-limit", type=int, default=12,
                        help="max aligned series in the summary")
    parser.add_argument("--grid-points", type=int, default=64,
                        help="time grid resolution for cross-run bands")
    parser.add_argument("--title", default=None)
    args = parser.parse_args(argv)

    params = {}
    for item in args.param:
        key, _, value = item.partition("=")
        if not key or not value:
            parser.error(f"--param needs K=V, got {item!r}")
        params[key] = parse_value(value)
    grid = {}
    for item in args.grid:
        key, _, values = item.partition("=")
        if not key or not values:
            parser.error(f"--grid needs K=V1,V2,..., got {item!r}")
        grid[key] = [parse_value(v) for v in values.split(",")]

    try:
        seeds = parse_seeds(args.seeds)
    except ValueError as exc:
        parser.error(str(exc))
    spec = StudySpec.build(args.scenario, seeds=seeds, params=params,
                           grid=grid, workers=args.workers)
    cells = spec.cells()
    print(f"study: scenario={args.scenario} {len(seeds)} seeds x "
          f"{len(cells) // len(seeds)} grid points = {len(cells)} cells, "
          f"out={args.out}")

    result = run_study(spec, args.out, resume=not args.fresh)
    serial = result.cell_wall_total()
    print(f"{len(result.executed)} cells run, {len(result.skipped)} "
          f"resumed, {len(result.failed)} failed on {result.workers} "
          f"worker(s); pool wall {result.wall_s:.2f}s, cell wall total "
          f"{serial:.2f}s"
          + (f" ({serial / result.wall_s:.2f}x parallel speedup)"
             if result.wall_s > 0 and result.executed else ""))
    if result.failed:
        for cell_id in result.failed:
            manifest = result.manifests[cell_id]
            first_line = (manifest.error or "?").strip().splitlines()[-1]
            print(f"FAIL {cell_id}: {first_line}", file=sys.stderr)

    summary = build_summary(args.out, band_limit=args.band_limit,
                            grid_points=args.grid_points)
    summary_path = write_summary(args.out, summary)
    print(f"wrote {summary_path}")

    for row in summary["slo"]["pass_rates"]:
        print(f"  {row['slo']}: {row['met']}/{row['runs']} met "
              f"({row['pass_rate']:.0%}), mean error "
              f"{row['mean_error_rate']:.2%}, {row['alerts']} alerts")

    if not args.no_dashboard:
        study = StudyArtifacts.load(args.out, title=args.title)
        out_dir = pathlib.Path(args.out)
        md_path = out_dir / "study.md"
        html_path = out_dir / "study.html"
        md_path.write_text(build_study_markdown(study), encoding="utf-8")
        html_path.write_text(build_study_html(study), encoding="utf-8")
        print(f"wrote {md_path} and {html_path}")

    return 1 if result.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
