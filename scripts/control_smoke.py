#!/usr/bin/env python
"""Control-plane smoke stage for scripts/check.sh (``make check``).

Drives the controller-on chaos scenario from
``tests/integration/test_chaos.py`` at a fixed seed, twice, and
verifies the headline guarantees of the autonomous control plane:

1. the two runs export byte-identical controller decision logs — the
   determinism contract of the control loop,
2. the controller actually acted (executed actions, sent messages),
3. every burn-rate alert that fired maps to at least one recorded
   decision at the alert's fire time (no unhandled alerts), and
4. every alert that resolved has a measured fire->resolve convergence
   time below ``CONVERGENCE_BUDGET_S``.

Exits non-zero (with a diagnosis) if any guarantee is violated.
"""

import argparse
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from tests.integration.test_chaos import run_chaos  # noqa: E402

CONVERGENCE_BUDGET_S = 30.0


def smoke(seed: int) -> int:
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        logs = []
        for run in ("a", "b"):
            path = pathlib.Path(tmp) / f"control-{run}.jsonl"
            world, _plan, results, errors = run_chaos(seed, controller=True)
            world.controller.export_jsonl(str(path))
            logs.append(path.read_bytes())

    ctl = world.controller
    alerts = [e for e in world.slo_monitor.events if e["state"] == "firing"]
    decisions = ctl.decisions()
    executed = ctl.decisions("executed")
    conv = ctl.convergences()
    actions = int(ctl.metrics.counters["actions_executed"].value)
    messages = int(ctl.metrics.counters["messages_sent"].value)

    print(f"seed={seed}: {len(alerts)} alerts, {len(decisions)} decisions "
          f"({len(executed)} executed), {actions} actions, "
          f"{messages} messages, {len(conv)} converged, "
          f"{len(results)} loads ok, {len(errors)} load errors")

    if not logs[0]:
        failures.append("controller decision log is empty")
    if logs[0] != logs[1]:
        failures.append("same-seed decision logs differ (determinism bug)")
    if actions == 0 or messages == 0:
        failures.append("controller observed but never acted")
    if not alerts:
        failures.append("scenario fired no alerts; nothing was exercised")
    for alert in alerts:
        handled = any(d["trigger"] == f"alert:{alert['slo']}"
                      and d["t"] == alert["t"] for d in decisions)
        if not handled:
            failures.append(
                f"alert {alert['slo']}@{alert['t']:.2f} has no decision")
    for record in conv:
        if not 0 < record["convergence_s"] <= CONVERGENCE_BUDGET_S:
            failures.append(
                f"alert {record['slo']} converged in "
                f"{record['convergence_s']:.2f}s "
                f"(budget {CONVERGENCE_BUDGET_S:.0f}s)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=101)
    args = parser.parse_args()
    status = smoke(args.seed)
    if status == 0:
        print("control smoke passed")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
