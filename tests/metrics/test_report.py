"""ExperimentReport tests."""

import pytest

from repro.metrics.report import ExperimentReport


class TestReport:
    def test_rows_and_render(self):
        report = ExperimentReport("E0", "demo", columns=("name", "value"))
        report.add_row("alpha", 1.5)
        report.add_row("beta", 2.0)
        text = report.render()
        assert "E0: demo" in text
        assert "alpha" in text and "beta" in text

    def test_row_arity_checked(self):
        report = ExperimentReport("E0", "demo", columns=("a", "b"))
        with pytest.raises(ValueError):
            report.add_row("only-one")

    def test_claims(self):
        report = ExperimentReport("E0", "demo")
        report.check("thing holds", "x > 1", "x = 2", True)
        report.check("other thing", "y < 1", "y = 3", False)
        assert not report.all_claims_hold
        assert len(report.failed_claims()) == 1
        text = report.render()
        assert "[PASS] thing holds" in text
        assert "[FAIL] other thing" in text

    def test_empty_report_holds(self):
        report = ExperimentReport("E0", "demo")
        assert report.all_claims_hold

    def test_notes_rendered(self):
        report = ExperimentReport("E0", "demo")
        report.note("substitution: simulated substrate")
        assert "substitution" in report.render()

    def test_float_formatting(self):
        report = ExperimentReport("E0", "demo", columns=("v",))
        report.add_row(0.000001)
        report.add_row(1234567.0)
        report.add_row(3.14159)
        text = report.render()
        assert "e-06" in text or "1.000e-06" in text
        assert "3.142" in text
