"""Service counters/gauges/histograms registry tests."""

import math

import pytest

from repro.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                           expose_registries, merge_snapshots)


class TestCounter:
    def test_inc(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_cannot_decrease(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        g.set(7)
        assert g.read() == 7

    def test_function_backed(self):
        backing = {"v": 0.25}
        g = Gauge("hit_rate")
        g.set_function(lambda: backing["v"])
        assert g.read() == 0.25
        backing["v"] = 0.75
        assert g.read() == 0.75


class TestRegistry:
    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry(namespace="svc")
        a = reg.counter("shards", "help text")
        b = reg.counter("shards")
        assert a is b
        a.inc(4)
        assert reg.value("shards") == 4

    def test_gauge_is_get_or_create(self):
        reg = MetricsRegistry()
        g = reg.gauge("rate")
        g.set(0.5)
        assert reg.gauge("rate") is g
        assert reg.value("rate") == 0.5

    def test_unknown_metric(self):
        reg = MetricsRegistry(namespace="svc")
        with pytest.raises(KeyError):
            reg.value("nope")

    def test_snapshot_is_namespaced(self):
        reg = MetricsRegistry(namespace="backup")
        reg.counter("repaired").inc(3)
        reg.gauge("hit_rate").set(0.9)
        snap = reg.snapshot()
        assert snap == {"backup.repaired": 3.0, "backup.hit_rate": 0.9}

    def test_render_sorted_lines(self):
        reg = MetricsRegistry(namespace="x")
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        assert reg.render() == "x.a 2\nx.b 1"


class TestHistogram:
    def test_observe_count_sum_mean(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.6)
        assert h.mean == pytest.approx(0.2)

    def test_quantiles_are_exact(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.99) == pytest.approx(99.01)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_validation(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(0.5)  # empty
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Histogram("lat").mean

    def test_bucket_upper_bound_inclusive(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)    # le="1"
        h.observe(5.0)    # le="10"
        h.observe(100.0)  # +Inf
        assert h.bucket_counts == [1, 1, 1]
        assert h.cumulative_buckets() == [(1.0, 1), (10.0, 2),
                                          (math.inf, 3)]

    def test_default_buckets_log_spaced(self):
        h = Histogram("lat")
        ratios = [b / a for a, b in zip(h.buckets, h.buckets[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))

    def test_registry_get_or_create_and_snapshot(self):
        reg = MetricsRegistry(namespace="svc")
        h = reg.histogram("lat", "latency")
        assert reg.histogram("lat") is h
        h.observe(2.0)
        snap = reg.snapshot()
        assert snap["svc.lat_count"] == 1.0
        assert snap["svc.lat_sum"] == 2.0


class TestTypeCollisions:
    def test_counter_vs_gauge_collision(self):
        reg = MetricsRegistry(namespace="svc")
        reg.counter("n")
        with pytest.raises(TypeError):
            reg.gauge("n")

    def test_gauge_vs_counter_collision(self):
        reg = MetricsRegistry(namespace="svc")
        reg.gauge("rate")
        with pytest.raises(TypeError):
            reg.counter("rate")

    def test_histogram_collisions(self):
        reg = MetricsRegistry(namespace="svc")
        reg.histogram("lat")
        with pytest.raises(TypeError):
            reg.counter("lat")
        with pytest.raises(TypeError):
            reg.gauge("lat")
        reg.counter("n")
        with pytest.raises(TypeError):
            reg.histogram("n")

    def test_first_nonempty_help_wins(self):
        reg = MetricsRegistry()
        c = reg.counter("n", "")
        reg.counter("n", "late help")
        assert c.help == "late help"  # filled the empty slot
        reg.counter("n", "different help")
        assert c.help == "late help"  # first non-empty is kept
        g = reg.gauge("g", "original")
        reg.gauge("g", "other")
        assert g.help == "original"


class TestExposition:
    def test_counter_gauge_exposition(self):
        reg = MetricsRegistry(namespace="svc")
        reg.counter("reqs", "requests served").inc(5)
        reg.gauge("depth").set(2.5)
        text = reg.expose()
        assert "# HELP svc_reqs requests served" in text
        assert "# TYPE svc_reqs counter" in text
        assert "svc_reqs 5" in text
        assert "# TYPE svc_depth gauge" in text
        assert "svc_depth 2.5" in text

    def test_histogram_exposition_cumulative(self):
        reg = MetricsRegistry(namespace="svc")
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.expose()
        assert '# TYPE svc_lat histogram' in text
        assert 'svc_lat_bucket{le="0.1"} 1' in text
        assert 'svc_lat_bucket{le="1"} 2' in text
        assert 'svc_lat_bucket{le="+Inf"} 3' in text
        assert "svc_lat_sum 5.55" in text
        assert "svc_lat_count 3" in text

    def test_name_sanitization(self):
        reg = MetricsRegistry(namespace="peer-backup")
        reg.counter("shards.repaired").inc()
        assert "peer_backup_shards_repaired 1" in reg.expose()

    def test_expose_registries_concatenates(self):
        a = MetricsRegistry(namespace="a")
        a.counter("x").inc()
        b = MetricsRegistry(namespace="b")
        b.counter("y").inc(2)
        page = expose_registries([a, b])
        assert "a_x 1" in page and "b_y 2" in page

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry(namespace="svc").expose() == ""

    def test_families_emit_in_sorted_order(self):
        reg = MetricsRegistry(namespace="svc")
        reg.gauge("zeta").set(1)               # registered first
        reg.counter("alpha").inc()
        reg.histogram("mid", buckets=(1.0,)).observe(0.5)
        text = reg.expose()
        assert text.index("svc_alpha") < text.index("svc_mid") \
            < text.index("svc_zeta")

    def test_exposition_is_deterministic(self):
        def build():
            reg = MetricsRegistry(namespace="svc")
            reg.gauge("b").set(2)
            reg.counter("a").inc(3)
            reg.histogram("c", buckets=(1.0,)).observe(0.1, exemplar=9)
            return reg.expose()

        assert build() == build()

    def test_help_text_escaped(self):
        reg = MetricsRegistry(namespace="svc")
        reg.counter("reqs", help="line one\nline two \\ end").inc()
        text = reg.expose()
        assert "# HELP svc_reqs line one\\nline two \\\\ end\n" in text
        # The raw newline must not split the comment line.
        assert "\nline two" not in text

    def test_bucket_exemplars_render_openmetrics_style(self):
        reg = MetricsRegistry(namespace="svc")
        hist = reg.histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.25, exemplar=77)
        hist.observe(5.0)                      # no exemplar on this bucket
        text = reg.expose()
        assert 'svc_lat_bucket{le="1"} 1 # {trace_id="77"} 0.25' in text
        assert 'svc_lat_bucket{le="10"} 2\n' in text

    def test_exemplar_free_exposition_unchanged(self):
        """Classic byte-identity: observe() without exemplars renders
        exactly as before the exemplar feature existed."""
        reg = MetricsRegistry(namespace="svc")
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = reg.expose()
        assert "trace_id" not in text
        assert 'svc_lat_bucket{le="1"} 1\n' in text


class TestHistogramExemplars:
    def test_latest_exemplar_per_bucket(self):
        hist = Histogram("lat", buckets=(1.0, 10.0))
        hist.observe(0.3, exemplar=1)
        hist.observe(0.7, exemplar=2)          # same bucket: latest wins
        hist.observe(4.0, exemplar=3)
        assert hist.exemplars == {0: (0.7, 2), 1: (4.0, 3)}

    def test_observe_without_exemplar_leaves_store_empty(self):
        hist = Histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.exemplars == {}

    def test_exemplar_observation_bumps_registry_version(self):
        reg = MetricsRegistry(namespace="svc")
        hist = reg.histogram("lat", buckets=(1.0,))
        version = reg.version
        hist.observe(0.5, exemplar=11)
        assert reg.version > version


class TestMerge:
    def test_merge_sums_same_names(self):
        fleet = []
        for _ in range(3):
            reg = MetricsRegistry(namespace="peer")
            reg.counter("repaired").inc(2)
            fleet.append(reg.snapshot())
        merged = merge_snapshots(fleet)
        assert merged == {"peer.repaired": 6.0}

    def test_merge_empty(self):
        assert merge_snapshots([]) == {}

    def test_gauges_merge_by_mean_not_sum(self):
        """Regression: rate gauges must average across the fleet.

        Three peers with decode-cache hit rates 0.5/0.7/0.9 have a
        fleet hit rate of 0.7 — the old sum (2.1) is not a rate at all.
        """
        fleet = []
        for rate in (0.5, 0.7, 0.9):
            reg = MetricsRegistry(namespace="peer-backup")
            reg.gauge("decode_cache_hit_rate").set(rate)
            reg.counter("shards_repaired").inc(10)
            fleet.append(reg)
        merged = merge_snapshots(fleet)
        assert merged["peer-backup.decode_cache_hit_rate"] == \
            pytest.approx(0.7)
        assert merged["peer-backup.shards_repaired"] == 30.0

    def test_plain_dicts_with_gauge_names(self):
        snaps = [{"svc.rate": 0.2, "svc.n": 1.0},
                 {"svc.rate": 0.4, "svc.n": 2.0}]
        merged = merge_snapshots(snaps, gauge_names={"svc.rate"})
        assert merged == {"svc.rate": pytest.approx(0.3), "svc.n": 3.0}

    def test_gauge_missing_from_some_registries(self):
        a = MetricsRegistry(namespace="svc")
        a.gauge("rate").set(0.4)
        b = MetricsRegistry(namespace="svc")
        b.counter("n").inc()
        merged = merge_snapshots([a, b])
        # Averaged over registries that report it, not the whole fleet.
        assert merged["svc.rate"] == pytest.approx(0.4)

    def test_histogram_components_sum(self):
        fleet = []
        for v in (1.0, 3.0):
            reg = MetricsRegistry(namespace="svc")
            reg.histogram("lat").observe(v)
            fleet.append(reg)
        merged = merge_snapshots(fleet)
        assert merged["svc.lat_count"] == 2.0
        assert merged["svc.lat_sum"] == 4.0


class TestHistogramMerge:
    def test_merge_empty_other_is_noop(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.merge(Histogram("other"))
        assert h.count == 1
        assert h.sum == 1.0

    def test_merge_into_empty(self):
        other = Histogram("other")
        other.observe(2.0)
        other.observe(4.0)
        h = Histogram("lat")
        h.merge(other)
        assert h.count == 2
        assert h.mean == pytest.approx(3.0)
        # The source is untouched.
        assert other.count == 2

    def test_merge_single_sample(self):
        other = Histogram("other")
        other.observe(7.5)
        h = Histogram("lat")
        h.observe(0.5)
        h.merge(other)
        assert h.count == 2
        assert h.quantile(1.0) == 7.5

    def test_merge_disjoint_bucket_ranges(self):
        """Samples re-bucket under the receiver's bounds; quantiles stay
        exact even when the two histograms share no bucket edges."""
        lo = Histogram("lo", buckets=(0.1, 0.2, 0.4))
        for v in (0.05, 0.15, 0.3):
            lo.observe(v)
        hi = Histogram("hi", buckets=(10.0, 100.0))
        for v in (5.0, 50.0):
            hi.observe(v)
        lo.merge(hi)
        assert lo.count == 5
        assert lo.sum == pytest.approx(55.5)
        # Everything from `hi` lands in lo's +Inf bucket.
        assert lo.bucket_counts == [1, 1, 1, 2]
        assert lo.quantile(1.0) == 50.0
        assert lo.quantile(0.5) == pytest.approx(0.3)

    def test_merged_quantiles_match_pooled_samples(self):
        a, b = Histogram("a"), Histogram("b")
        for v in range(10):
            a.observe(float(v))
        for v in range(10, 20):
            b.observe(float(v))
        a.merge(b)
        pooled = Histogram("pooled")
        for v in range(20):
            pooled.observe(float(v))
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert a.quantile(q) == pooled.quantile(q)


class TestSnapshotSeries:
    def test_kinds_and_names(self):
        reg = MetricsRegistry(namespace="svc")
        reg.counter("requests").inc(3)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat").observe(0.2)
        triples = reg.snapshot_series()
        as_map = {name: (kind, value) for name, kind, value in triples}
        assert as_map["svc.requests"] == ("counter", 3.0)
        assert as_map["svc.depth"] == ("gauge", 1.5)
        assert as_map["svc.lat_count"] == ("counter", 1.0)
        assert as_map["svc.lat_sum"] == ("counter", 0.2)

    def test_quantiles_only_when_requested_and_nonempty(self):
        reg = MetricsRegistry(namespace="svc")
        reg.histogram("empty")
        hist = reg.histogram("lat")
        names = {name for name, _k, _v in reg.snapshot_series((0.5,))}
        assert "svc.lat_p50" not in names     # no samples yet
        assert "svc.empty_p50" not in names
        hist.observe(0.3)
        as_map = {name: (kind, value)
                  for name, kind, value in reg.snapshot_series((0.5, 0.99))}
        assert as_map["svc.lat_p50"] == ("gauge", 0.3)
        assert as_map["svc.lat_p99"] == ("gauge", 0.3)
        assert "svc.empty_p50" not in as_map

    def test_snapshot_delegates_to_series(self):
        reg = MetricsRegistry(namespace="svc")
        reg.histogram("lat").observe(2.0)
        snap = reg.snapshot(quantiles=(0.5,))
        assert snap["svc.lat_p50"] == 2.0

    def test_no_namespace_prefix(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        [(name, kind, value)] = reg.snapshot_series()
        assert (name, kind, value) == ("n", "counter", 1.0)


class TestMergeMixedFleet:
    def test_mixed_gauge_counter_histogram_fleet(self):
        """A realistic fleet merge: counters sum, gauges average,
        histogram components sum — all in one pass."""
        fleet = []
        for i, (hits, rate, lat) in enumerate(
                [(10, 0.2, 0.1), (20, 0.4, 0.3), (30, 0.9, 0.5)]):
            reg = MetricsRegistry(namespace="peer")
            reg.counter("hits").inc(hits)
            reg.gauge("hit_rate").set(rate)
            reg.histogram("lat").observe(lat)
            fleet.append(reg)
        merged = merge_snapshots(fleet)
        assert merged["peer.hits"] == 60.0
        assert merged["peer.hit_rate"] == pytest.approx(0.5)
        assert merged["peer.lat_count"] == 3.0
        assert merged["peer.lat_sum"] == pytest.approx(0.9)

    def test_mixed_registry_and_dict_items(self):
        reg = MetricsRegistry(namespace="svc")
        reg.gauge("rate").set(0.6)
        reg.counter("n").inc(2)
        plain = {"svc.rate": 0.2, "svc.n": 3.0}
        merged = merge_snapshots([reg, plain])
        # The registry declares svc.rate as a gauge; that declaration
        # covers the plain dict's sample too.
        assert merged["svc.rate"] == pytest.approx(0.4)
        assert merged["svc.n"] == 5.0
