"""Service counters/gauges registry tests."""

import pytest

from repro.metrics import (Counter, Gauge, MetricsRegistry, merge_snapshots)


class TestCounter:
    def test_inc(self):
        c = Counter("events")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_cannot_decrease(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        g.set(7)
        assert g.read() == 7

    def test_function_backed(self):
        backing = {"v": 0.25}
        g = Gauge("hit_rate")
        g.set_function(lambda: backing["v"])
        assert g.read() == 0.25
        backing["v"] = 0.75
        assert g.read() == 0.75


class TestRegistry:
    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry(namespace="svc")
        a = reg.counter("shards", "help text")
        b = reg.counter("shards")
        assert a is b
        a.inc(4)
        assert reg.value("shards") == 4

    def test_gauge_is_get_or_create(self):
        reg = MetricsRegistry()
        g = reg.gauge("rate")
        g.set(0.5)
        assert reg.gauge("rate") is g
        assert reg.value("rate") == 0.5

    def test_unknown_metric(self):
        reg = MetricsRegistry(namespace="svc")
        with pytest.raises(KeyError):
            reg.value("nope")

    def test_snapshot_is_namespaced(self):
        reg = MetricsRegistry(namespace="backup")
        reg.counter("repaired").inc(3)
        reg.gauge("hit_rate").set(0.9)
        snap = reg.snapshot()
        assert snap == {"backup.repaired": 3.0, "backup.hit_rate": 0.9}

    def test_render_sorted_lines(self):
        reg = MetricsRegistry(namespace="x")
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        assert reg.render() == "x.a 2\nx.b 1"


class TestMerge:
    def test_merge_sums_same_names(self):
        fleet = []
        for _ in range(3):
            reg = MetricsRegistry(namespace="peer")
            reg.counter("repaired").inc(2)
            fleet.append(reg.snapshot())
        merged = merge_snapshots(fleet)
        assert merged == {"peer.repaired": 6.0}

    def test_merge_empty(self):
        assert merge_snapshots([]) == {}
