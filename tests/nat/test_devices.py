"""NAT device behaviour tests: mapping, filtering, UPnP, chains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nat.devices import (
    NatChain,
    NatDevice,
    NatType,
    hole_punch_succeeds,
    make_cgn,
)
from repro.net.address import Address

PUB = Address.parse("100.64.0.1")
INSIDE = Address.parse("192.168.1.10")
REMOTE = (Address.parse("198.18.0.1"), 80)
OTHER = (Address.parse("198.18.0.2"), 81)


def make_nat(nat_type):
    return NatDevice("nat", PUB, nat_type=nat_type)


class TestMapping:
    def test_outbound_creates_public_mapping(self):
        nat = make_nat(NatType.FULL_CONE)
        public = nat.map_outbound((INSIDE, 5000), REMOTE)
        assert public[0] == PUB
        assert public[1] >= 30000

    def test_cone_nat_reuses_port_across_destinations(self):
        nat = make_nat(NatType.PORT_RESTRICTED)
        p1 = nat.map_outbound((INSIDE, 5000), REMOTE)
        p2 = nat.map_outbound((INSIDE, 5000), OTHER)
        assert p1 == p2

    def test_symmetric_nat_allocates_per_destination(self):
        nat = make_nat(NatType.SYMMETRIC)
        p1 = nat.map_outbound((INSIDE, 5000), REMOTE)
        p2 = nat.map_outbound((INSIDE, 5000), OTHER)
        assert p1 != p2

    def test_distinct_private_endpoints_get_distinct_ports(self):
        nat = make_nat(NatType.FULL_CONE)
        p1 = nat.map_outbound((INSIDE, 5000), REMOTE)
        p2 = nat.map_outbound((INSIDE, 5001), REMOTE)
        assert p1 != p2


class TestInboundFiltering:
    def test_full_cone_admits_anyone(self):
        nat = make_nat(NatType.FULL_CONE)
        public = nat.map_outbound((INSIDE, 5000), REMOTE)
        assert nat.admit_inbound(OTHER, public[1]) == (INSIDE, 5000)

    def test_restricted_cone_requires_prior_address_contact(self):
        nat = make_nat(NatType.RESTRICTED_CONE)
        public = nat.map_outbound((INSIDE, 5000), REMOTE)
        # Same address, different port: admitted.
        assert nat.admit_inbound((REMOTE[0], 9999), public[1]) is not None
        # Never-contacted address: filtered.
        assert nat.admit_inbound(OTHER, public[1]) is None

    def test_port_restricted_requires_exact_endpoint(self):
        nat = make_nat(NatType.PORT_RESTRICTED)
        public = nat.map_outbound((INSIDE, 5000), REMOTE)
        assert nat.admit_inbound(REMOTE, public[1]) is not None
        assert nat.admit_inbound((REMOTE[0], 9999), public[1]) is None

    def test_symmetric_binds_to_destination(self):
        nat = make_nat(NatType.SYMMETRIC)
        public = nat.map_outbound((INSIDE, 5000), REMOTE)
        assert nat.admit_inbound(REMOTE, public[1]) == (INSIDE, 5000)
        assert nat.admit_inbound(OTHER, public[1]) is None

    def test_unmapped_port_filtered(self):
        nat = make_nat(NatType.FULL_CONE)
        assert nat.admit_inbound(REMOTE, 31337) is None


class TestUpnp:
    def test_forward_admits_anyone(self):
        nat = make_nat(NatType.SYMMETRIC)  # even a symmetric NAT honors forwards
        port = nat.upnp_add_port_mapping((INSIDE, 8080))
        assert nat.admit_inbound(REMOTE, port) == (INSIDE, 8080)
        assert nat.admit_inbound(OTHER, port) == (INSIDE, 8080)

    def test_explicit_port_honored(self):
        nat = make_nat(NatType.FULL_CONE)
        port = nat.upnp_add_port_mapping((INSIDE, 8080), public_port=8443)
        assert port == 8443

    def test_duplicate_port_rejected(self):
        nat = make_nat(NatType.FULL_CONE)
        nat.upnp_add_port_mapping((INSIDE, 8080), public_port=8443)
        with pytest.raises(ValueError):
            nat.upnp_add_port_mapping((INSIDE, 8081), public_port=8443)

    def test_delete_mapping(self):
        nat = make_nat(NatType.FULL_CONE)
        port = nat.upnp_add_port_mapping((INSIDE, 8080))
        nat.upnp_delete_port_mapping(port)
        assert nat.admit_inbound(REMOTE, port) is None
        assert nat.forward_count == 0

    def test_cgn_refuses_upnp(self):
        cgn = make_cgn("cgn", PUB)
        with pytest.raises(PermissionError):
            cgn.upnp_add_port_mapping((INSIDE, 8080))


class TestNatChain:
    def test_public_chain(self):
        chain = NatChain()
        assert chain.is_public
        assert chain.effective_type() is None
        assert not chain.upnp_available()

    def test_single_home_nat(self):
        chain = NatChain([make_nat(NatType.PORT_RESTRICTED)])
        assert not chain.is_public
        assert not chain.has_cgn
        assert chain.upnp_available()
        assert chain.effective_type() is NatType.PORT_RESTRICTED

    def test_cgn_stack_takes_most_restrictive(self):
        chain = NatChain([make_nat(NatType.FULL_CONE),
                          make_cgn("cgn", Address.parse("100.64.0.2"))])
        assert chain.has_cgn
        assert not chain.upnp_available()
        assert chain.effective_type() is NatType.SYMMETRIC

    def test_upnp_disabled_home_nat(self):
        nat = NatDevice("nat", PUB, upnp_enabled=False)
        chain = NatChain([nat])
        assert not chain.upnp_available()


class TestHolePunchMatrix:
    def test_public_always_works(self):
        assert hole_punch_succeeds(None, NatType.SYMMETRIC)
        assert hole_punch_succeeds(NatType.SYMMETRIC, None)

    def test_symmetric_pair_fails(self):
        assert not hole_punch_succeeds(NatType.SYMMETRIC, NatType.SYMMETRIC)

    def test_symmetric_vs_port_restricted_fails(self):
        assert not hole_punch_succeeds(NatType.SYMMETRIC, NatType.PORT_RESTRICTED)
        assert not hole_punch_succeeds(NatType.PORT_RESTRICTED, NatType.SYMMETRIC)

    def test_symmetric_vs_cone_works(self):
        assert hole_punch_succeeds(NatType.SYMMETRIC, NatType.FULL_CONE)
        assert hole_punch_succeeds(NatType.SYMMETRIC, NatType.RESTRICTED_CONE)

    def test_cone_pairs_work(self):
        cones = [NatType.FULL_CONE, NatType.RESTRICTED_CONE, NatType.PORT_RESTRICTED]
        for a in cones:
            for b in cones:
                assert hole_punch_succeeds(a, b)

    def test_matrix_is_symmetric(self):
        types = [None] + list(NatType)
        for a in types:
            for b in types:
                assert hole_punch_succeeds(a, b) == hole_punch_succeeds(b, a)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(5000, 5005),
                          st.sampled_from([REMOTE, OTHER])), max_size=30))
def test_property_mappings_stable_and_unique(pairs):
    """Cone NAT: same private endpoint always maps to the same public port;
    distinct private endpoints never share a port."""
    nat = make_nat(NatType.PORT_RESTRICTED)
    seen = {}
    for private_port, dest in pairs:
        public = nat.map_outbound((INSIDE, private_port), dest)
        if private_port in seen:
            assert seen[private_port] == public
        seen[private_port] = public
    ports = list(seen.values())
    assert len(ports) == len(set(ports))
