"""STUN/TURN service and reachability-ladder tests."""

import pytest

from repro.nat.devices import NatChain, NatDevice, NatType, make_cgn
from repro.nat.traversal import (
    STUN_PORT,
    ReachabilityManager,
    ReachabilityMethod,
    StunServer,
    TurnServer,
)
from repro.net.address import Address
from repro.net.network import Network, NetworkError
from repro.sim.engine import Simulator
from repro.util.units import gbps, ms


def build_world():
    """Two homes and a public infrastructure host."""
    sim = Simulator(seed=4)
    net = Network(sim)
    infra = net.add_host("infra")
    infra.add_interface(Address.parse("198.18.0.1"))
    core = net.add_router("core")
    core.add_interface(Address.parse("172.16.0.1"))
    net.connect(infra, core, gbps(10), ms(5))
    hpop_a = net.add_host("hpop-a")
    hpop_a.add_interface(Address.parse("10.128.0.1"))
    net.connect(hpop_a, core, gbps(1), ms(10))
    client_b = net.add_host("client-b")
    client_b.add_interface(Address.parse("10.128.1.1"))
    net.connect(client_b, core, gbps(1), ms(15))
    return sim, net, infra, hpop_a, client_b


def chain_single(nat_type=NatType.PORT_RESTRICTED, upnp=True, addr="100.64.0.1"):
    return NatChain([NatDevice("home-nat", Address.parse(addr),
                               nat_type=nat_type, upnp_enabled=upnp)])


def chain_cgn(home_type=NatType.FULL_CONE, addr="100.64.0.9"):
    return NatChain([
        NatDevice("home-nat", Address.parse(addr), nat_type=home_type),
        make_cgn("cgn", Address.parse("100.64.9.9")),
    ])


class TestStunServer:
    def test_binding_response_reports_reflexive_endpoint(self):
        sim, net, infra, hpop, _client = build_world()
        stun = StunServer(net, infra)
        got = []
        hpop.bind_datagram(5000, lambda src, sport, payload: got.append(payload))
        net.send_datagram(hpop, 5000, infra.address, STUN_PORT,
                          {"type": "binding", "txid": "t1"}, size=64)
        sim.run()
        assert got and got[0]["type"] == "binding-response"
        assert got[0]["mapped"] == (hpop.address, 5000)
        assert got[0]["txid"] == "t1"
        assert stun.requests_served == 1

    def test_non_binding_ignored(self):
        sim, net, infra, hpop, _client = build_world()
        stun = StunServer(net, infra)
        net.send_datagram(hpop, 5000, infra.address, STUN_PORT, {"type": "junk"})
        sim.run()
        assert stun.requests_served == 0


class TestTurnServer:
    def test_allocation_and_release(self):
        _sim, net, infra, hpop, _client = build_world()
        turn = TurnServer(net, infra)
        alloc = turn.allocate(hpop)
        assert alloc.relay_port in turn.allocations
        turn.release(alloc)
        assert alloc.relay_port not in turn.allocations

    def test_relayed_path_goes_through_relay(self):
        _sim, net, infra, hpop, client = build_world()
        turn = TurnServer(net, infra)
        relayed = turn.relayed_path(client, hpop)
        direct = net.path_between(client, hpop)
        assert relayed.propagation_delay > direct.propagation_delay
        assert relayed.source is client and relayed.dest is hpop


class TestReachabilityLadder:
    def establish(self, manager, sim, host, chain):
        manager.register_chain(host, chain)
        reports = []
        manager.establish(host, 443, reports.append)
        sim.run()
        assert len(reports) == 1
        return reports[0]

    def make_manager(self, with_stun=True, with_turn=True):
        sim, net, infra, hpop, client = build_world()
        stun = StunServer(net, infra) if with_stun else None
        turn = TurnServer(net, infra) if with_turn else None
        return sim, net, infra, hpop, client, ReachabilityManager(net, stun, turn)

    def test_public_host_needs_nothing(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager()
        report = self.establish(mgr, sim, hpop, NatChain())
        assert report.method is ReachabilityMethod.PUBLIC
        assert report.public_endpoint == (hpop.address, 443)

    def test_single_nat_uses_upnp(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager()
        chain = chain_single()
        report = self.establish(mgr, sim, hpop, chain)
        assert report.method is ReachabilityMethod.UPNP
        assert report.public_endpoint[0] == chain.home_nat.public_address
        assert chain.home_nat.forward_count == 1

    def test_cgn_with_cone_type_uses_stun(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager()
        chain = chain_cgn(home_type=NatType.FULL_CONE)
        # CGN in this test is symmetric by default -> chain effective type
        # symmetric -> falls to relay; use a port-restricted CGN instead.
        chain.devices[1].nat_type = NatType.PORT_RESTRICTED
        report = self.establish(mgr, sim, hpop, chain)
        assert report.method is ReachabilityMethod.HOLE_PUNCH
        assert report.setup_time > 0  # STUN round trip costs time

    def test_symmetric_cgn_falls_back_to_relay(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager()
        report = self.establish(mgr, sim, hpop, chain_cgn())
        assert report.method is ReachabilityMethod.RELAY
        assert report.relay is not None

    def test_no_turn_means_unreachable(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager(
            with_stun=True, with_turn=False)
        report = self.establish(mgr, sim, hpop, chain_cgn())
        assert report.method is ReachabilityMethod.UNREACHABLE
        assert not report.reachable

    def test_upnp_disabled_single_nat_uses_stun(self):
        sim, _net, _infra, hpop, _client, mgr = self.make_manager()
        chain = chain_single(nat_type=NatType.RESTRICTED_CONE, upnp=False)
        report = self.establish(mgr, sim, hpop, chain)
        assert report.method is ReachabilityMethod.HOLE_PUNCH


class TestConnectionChecks:
    def setup_reachable(self, target_type, client_type, method_hint=None):
        sim, net, infra, hpop, client = build_world()
        stun = StunServer(net, infra)
        turn = TurnServer(net, infra)
        mgr = ReachabilityManager(net, stun, turn)
        mgr.register_chain(
            hpop, chain_single(nat_type=target_type, upnp=False))
        mgr.register_chain(
            client, chain_single(nat_type=client_type, upnp=False,
                                 addr="100.64.0.2"))
        reports = []
        mgr.establish(hpop, 443, reports.append)
        sim.run()
        return sim, net, mgr, hpop, client, reports[0]

    def test_punch_compatible_pair_connects_directly(self):
        _sim, net, mgr, hpop, client, report = self.setup_reachable(
            NatType.RESTRICTED_CONE, NatType.RESTRICTED_CONE)
        assert report.method is ReachabilityMethod.HOLE_PUNCH
        assert mgr.can_connect_from(client, hpop)
        path = mgr.data_path(client, hpop)
        assert path.dest is hpop
        assert path.propagation_delay == net.path_between(client, hpop).propagation_delay

    def test_incompatible_pair_blocked(self):
        _sim, _net, mgr, hpop, client, report = self.setup_reachable(
            NatType.PORT_RESTRICTED, NatType.SYMMETRIC)
        assert report.method is ReachabilityMethod.HOLE_PUNCH
        assert not mgr.can_connect_from(client, hpop)
        with pytest.raises(NetworkError):
            mgr.data_path(client, hpop)

    def test_relayed_target_accepts_anyone(self):
        _sim, net, mgr, hpop, client, report = self.setup_reachable(
            NatType.SYMMETRIC, NatType.SYMMETRIC)
        assert report.method is ReachabilityMethod.RELAY
        assert mgr.can_connect_from(client, hpop)
        path = mgr.data_path(client, hpop)
        assert path.propagation_delay > net.path_between(client, hpop).propagation_delay

    def test_unestablished_target_unreachable(self):
        sim, net, _infra, hpop, client = build_world()
        mgr = ReachabilityManager(net)
        assert not mgr.can_connect_from(client, hpop)
        with pytest.raises(NetworkError):
            mgr.data_path(client, hpop)
