"""Smoke tests: every shipped example runs to completion.

The examples double as end-to-end acceptance tests — each asserts its
own scenario invariants internally; here we just execute them.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert "OK" in out
