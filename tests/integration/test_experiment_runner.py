"""Tests for the standalone experiment runner."""

import pathlib

import pytest

from repro.experiments import discover, find_benchmarks_dir, load_experiment, run

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestDiscovery:
    def test_finds_benchmarks_dir(self):
        bench_dir = find_benchmarks_dir(REPO_ROOT)
        assert bench_dir.name == "benchmarks"

    def test_discovers_all_experiments(self):
        experiments = discover(REPO_ROOT / "benchmarks")
        # 13 paper experiments + 8 ablations.
        assert len(experiments) == 21
        assert "e1" in experiments and "e13" in experiments
        assert "a1" in experiments and "a8" in experiments

    def test_ids_match_filenames(self):
        experiments = discover(REPO_ROOT / "benchmarks")
        for exp_id, path in experiments.items():
            assert path.name.startswith(f"bench_{exp_id}_")


class TestExecution:
    def test_load_and_run_one(self):
        experiments = discover(REPO_ROOT / "benchmarks")
        experiment = load_experiment(experiments["e2"])
        report = experiment()
        assert report.experiment_id == "E2"
        assert report.all_claims_hold

    def test_run_lists_when_no_ids(self, capsys):
        code = run([], bench_dir=REPO_ROOT / "benchmarks")
        out = capsys.readouterr().out
        assert code == 0
        assert "e1" in out and "a5" in out

    def test_run_unknown_id(self, capsys):
        code = run(["zz9"], bench_dir=REPO_ROOT / "benchmarks")
        assert code == 2
        assert "unknown" in capsys.readouterr().out

    def test_run_selected(self, capsys):
        code = run(["e2"], bench_dir=REPO_ROOT / "benchmarks")
        out = capsys.readouterr().out
        assert code == 0
        assert "E2" in out
        assert "1 fully passing" in out
