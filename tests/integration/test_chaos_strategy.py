"""Chaos x collaborative caching: churn + sharded placement + control.

The sharded strategy gives every object one home peer; when churn
kills or the controller quarantines that home, its shard range must
re-home to ring successors with no migration step — computed against
the live set at the next request. These tests pin that the combined
system stays correct under the standard 20% churn scenario: every
load completes, quarantined peers leave the directory, and the whole
run (fault log + decision log) is byte-identical per seed.
"""

import pytest

from tests.integration.test_chaos import (
    CHURN_FRACTION,
    NUM_LOADS,
    run_chaos,
)


def run_chaos_sharded(seed, tmp_path, tag):
    # flaps=3: repeat link offenders push client failure rates over
    # the SLO so the controller's quarantine rule actually fires.
    world, plan, results, errors = run_chaos(
        seed, export_path=tmp_path / f"faults-{tag}.jsonl",
        fraction=CHURN_FRACTION, controller=True, strategy="sharded",
        flaps=3)
    world.controller.export_jsonl(str(tmp_path / f"control-{tag}.jsonl"))
    return world, plan, results, errors


class TestChaosWithShardedStrategy:
    def test_all_loads_complete_through_rehoming(self, tmp_path):
        world, plan, results, errors = run_chaos_sharded(101, tmp_path, "a")
        assert plan.node_crashes()  # churn actually did damage
        assert not errors, f"page loads failed: {errors}"
        assert len(results) == NUM_LOADS
        for result in results:
            assert result.total_bytes > 0
            assert not result.corrupted
        # The strategy really drove placement: peers declined to cache
        # objects they do not own, so holders are (at most) unique per
        # object at any instant outside a churn handoff.
        peers = [h.service("nocdn-peer") for h in world.hpops]
        cached_total = sum(
            len(p.signup_for("news.example").cache) for p in peers)
        object_count = sum(
            len(list(world.catalog.page(f"/page{i}").all_objects()))
            for i in range(2))
        assert 0 < cached_total <= 2 * object_count

    def test_quarantined_home_leaves_the_directory(self, tmp_path):
        world, _plan, _results, _errors = \
            run_chaos_sharded(101, tmp_path, "a")
        quarantines = sum(info.quarantines
                          for info in world.provider.peers.values())
        assert quarantines > 0, "controller never quarantined a peer"
        directory = world.provider.directory
        # No quarantined-right-now peer is advertised as a holder.
        now = world.sim.now
        quarantined = {pid for pid, info in world.provider.peers.items()
                       if now < info.quarantined_until}
        for (_site, _name), holders in directory.entries().items():
            assert not (set(holders) & quarantined)

    def test_serves_never_hit_origin_5xx(self, tmp_path):
        world, _plan, results, errors = run_chaos_sharded(101, tmp_path, "a")
        assert not errors
        # Client-visible failovers are fine (that is the failover
        # machinery working); what must not happen is a load falling
        # all the way to direct origin pages because re-homing failed.
        assert world.provider.direct_pages_served == 0
        assert sum(r.bytes_from_peers for r in results) > 0

    def test_same_seed_byte_identical_exports(self, tmp_path):
        run_chaos_sharded(101, tmp_path, "a")
        run_chaos_sharded(101, tmp_path, "b")
        for kind in ("faults", "control"):
            a = (tmp_path / f"{kind}-a.jsonl").read_bytes()
            b = (tmp_path / f"{kind}-b.jsonl").read_bytes()
            assert a == b, f"{kind} log diverged for same seed"
            assert a  # non-empty: the scenario actually fired

    @pytest.mark.parametrize("strategy", ["naive", "replicate-hot"])
    def test_other_strategies_survive_churn_too(self, strategy, tmp_path):
        _world, _plan, results, errors = run_chaos(
            101, export_path=tmp_path / "f.jsonl",
            fraction=CHURN_FRACTION, strategy=strategy)
        assert not errors
        assert len(results) == NUM_LOADS
