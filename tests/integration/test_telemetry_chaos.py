"""Acceptance: the chaos scenario under the full telemetry stack.

The ISSUE's headline criteria: a fixed-seed chaos run must yield at
least one SLO burn-rate alert that correlates in sim time with an
injected fault, and the TSDB export must be byte-identical across two
runs from the same seed.
"""

import pytest

from repro.obs.slo import correlate_alerts

from tests.integration.test_chaos import NUM_LOADS, run_chaos

SEED = 101


@pytest.fixture(scope="module")
def telemetry_run():
    return run_chaos(SEED, telemetry=True)


class TestChaosTelemetry:
    def test_scenario_still_green_under_telemetry(self, telemetry_run):
        world, _plan, results, errors = telemetry_run
        assert not errors
        assert len(results) == NUM_LOADS
        assert world.attic_fully_redundant()

    def test_tsdb_scraped_the_fleet(self, telemetry_run):
        world, _plan, _results, _errors = telemetry_run
        tsdb = world.tsdb
        assert tsdb.scrapes > 100
        # Per-source prefixes keep fleet members distinguishable.
        assert tsdb.names("client/")
        assert tsdb.names("injector/")
        assert tsdb.names("h0/")
        assert tsdb.names("slo/")
        # Faults left their mark in the injector series.
        crashes = tsdb.get("injector/faults.node_crashes")
        assert crashes.points[-1][1] > 0

    def test_burn_rate_alert_fires_and_correlates_to_fault(
            self, telemetry_run):
        world, _plan, _results, _errors = telemetry_run
        firing = [e for e in world.slo_monitor.events
                  if e["state"] == "firing"]
        assert firing, "no burn-rate alert fired during chaos"
        fault_events = world.injector.events
        rows = correlate_alerts(firing, fault_events, lookback=10.0)
        correlated = [r for r in rows if r["causes"]]
        assert correlated, (
            f"no alert correlated to an injected fault; alerts at "
            f"{[e['t'] for e in firing]}, faults at "
            f"{[f['t'] for f in fault_events]}")
        # The cause precedes the alert within the lookback window.
        alert_t = float(correlated[0]["alert"]["t"])
        cause_t = float(correlated[0]["causes"][0]["t"])
        assert alert_t - 10.0 <= cause_t <= alert_t

    def test_every_alert_resolved_by_run_end(self, telemetry_run):
        world, _plan, _results, _errors = telemetry_run
        assert world.slo_monitor._active == {}
        fired = sum(1 for e in world.slo_monitor.events
                    if e["state"] == "firing")
        resolved = sum(1 for e in world.slo_monitor.events
                       if e["state"] == "resolved")
        assert fired == resolved

    def test_verdicts_cover_all_specs(self, telemetry_run):
        world, _plan, _results, _errors = telemetry_run
        verdicts = world.slo_monitor.verdicts()
        assert {v["slo"] for v in verdicts} == {
            spec.name for spec in world.slo_monitor.specs}
        violated = [v for v in verdicts if not v["met"]]
        assert violated, "chaos at 20% churn should violate something"


class TestTelemetryDeterminism:
    def test_same_seed_byte_identical_tsdb_and_slo_exports(self, tmp_path):
        paths = {}
        for tag in ("a", "b"):
            world, _plan, _results, _errors = run_chaos(SEED, telemetry=True)
            tsdb_path = tmp_path / f"tsdb_{tag}.jsonl"
            slo_path = tmp_path / f"slo_{tag}.jsonl"
            world.tsdb.export_jsonl(str(tsdb_path))
            world.slo_monitor.export_jsonl(str(slo_path))
            paths[tag] = (tsdb_path, slo_path)
        tsdb_a = paths["a"][0].read_bytes()
        assert tsdb_a == paths["b"][0].read_bytes()
        assert tsdb_a  # non-empty
        slo_a = paths["a"][1].read_bytes()
        assert slo_a == paths["b"][1].read_bytes()
        assert slo_a
