"""Integration: one appliance running every service at once.

The paper's HPoP is "an extensible and configurable platform" — these
tests make sure the services actually coexist: shared HTTP server,
shared lifecycle, independent state, sensible behaviour across restarts.
"""

import pytest

from repro.attic.backup_service import PeerBackupService
from repro.attic.cloudmirror import KeyEscrowService
from repro.attic.service import DataAtticService
from repro.dcol.collective import DetourCollective, WaypointService
from repro.hpop.core import Household, Hpop, User
from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.iah.service import InternetAtHomeService
from repro.net.topology import build_city
from repro.nocdn.origin import ContentProvider
from repro.nocdn.peer import NoCdnPeerService
from repro.sim.engine import Simulator
from repro.workloads.web import CatalogSpec, generate_catalog
import random

ALL_SERVICES = ("attic", "nocdn-peer", "internet-at-home", "dcol-waypoint",
                "peer-backup", "key-escrow")


def build_kitchen_sink(seed=21):
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=4,
                      server_sites={"origin": 1})
    home = city.neighborhoods[0].homes[0]
    hpop = Hpop(home.hpop_host, city.network,
                Household(name="h", users=[User("ann", "pw")]))
    hpop.install(DataAtticService())
    hpop.install(NoCdnPeerService())
    hpop.install(InternetAtHomeService(gather_interval=0))
    hpop.install(WaypointService())
    hpop.install(PeerBackupService())
    hpop.install(KeyEscrowService())
    hpop.start()
    return sim, city, home, hpop


class TestCoexistence:
    def test_all_services_install_and_start(self):
        _sim, _city, _home, hpop = build_kitchen_sink()
        for name in ALL_SERVICES:
            assert hpop.has_service(name)
            assert hpop.service(name).running

    def test_portal_lists_everything(self):
        sim, city, home, hpop = build_kitchen_sink()
        client = HttpClient(home.devices[0], city.network)
        results = []
        client.request(hpop.host, HttpRequest("GET", "/portal/status"),
                       lambda resp, stats: results.append(resp.body),
                       port=443)
        sim.run()
        assert set(ALL_SERVICES) <= set(results[0]["services"])

    def test_routes_do_not_collide(self):
        """Each service owns distinct prefixes on the shared server."""
        sim, city, home, hpop = build_kitchen_sink()
        client = HttpClient(home.devices[0], city.network)
        statuses = {}
        probes = {
            "/attic/ann": "attic",        # 401 (auth required), not 404
            "/iah/page": "iah",           # 404 page body (route exists)
            "/escrow/key": "escrow",      # 403 (unauthorized), not 404
            "/portal/status": "portal",   # 200
        }

        def probe(path, tag):
            client.request(
                hpop.host,
                HttpRequest("POST" if path == "/escrow/key" else "GET", path),
                lambda resp, stats, t=tag: statuses.__setitem__(t, resp.status),
                port=443)

        for path, tag in probes.items():
            probe(path, tag)
        sim.run()
        assert statuses["attic"] == 401
        assert statuses["escrow"] == 403
        assert statuses["portal"] == 200

    def test_attic_and_nocdn_share_the_appliance(self):
        """The attic serves the household while the NoCDN peer serves a
        provider — concurrently, over the same uplink."""
        sim, city, home, hpop = build_kitchen_sink()
        catalog = generate_catalog(CatalogSpec(num_pages=2),
                                   random.Random(1))
        provider = ContentProvider(
            "site", city.server_sites["origin"].servers[0],
            city.network, catalog)
        hpop.service("nocdn-peer").sign_up(provider)
        from repro.nocdn.loader import PageLoader
        attic = hpop.service("attic")
        attic.dav.tree.put("/ann/big", size=5_000_000)

        external = city.neighborhoods[0].homes[1].devices[0]
        loader = PageLoader(external, city.network)
        attic_client = HttpClient(city.neighborhoods[0].homes[2].devices[0],
                                  city.network)
        from repro.webdav.server import basic_auth
        outcomes = {}
        loader.load(provider, catalog.pages()[0].url,
                    lambda r: outcomes.setdefault("page", r))
        attic_client.request(
            hpop.host,
            HttpRequest("GET", "/attic/ann/big",
                        headers=basic_auth("ann", "pw")),
            lambda resp, stats: outcomes.setdefault("attic", resp),
            port=443)
        sim.run()
        assert outcomes["attic"].ok
        assert outcomes["page"].bytes_from_peers > 0


class TestLifecycle:
    def test_restart_preserves_attic_and_cache(self):
        sim, city, home, hpop = build_kitchen_sink()
        attic = hpop.service("attic")
        attic.dav.tree.put("/ann/keep.txt", size=100)
        hpop.restart()
        assert attic.dav.tree.exists("/ann/keep.txt")
        assert hpop.service("internet-at-home").running

    def test_shutdown_takes_every_service_down(self):
        sim, city, home, hpop = build_kitchen_sink()
        hpop.shutdown()
        for name in ALL_SERVICES:
            assert not hpop.service(name).running
        client = HttpClient(home.devices[0], city.network)
        errors = []
        client.request(hpop.host, HttpRequest("GET", "/portal/status"),
                       lambda resp, stats: None, port=443,
                       on_error=errors.append, timeout=3.0)
        sim.run()
        assert len(errors) == 1

    def test_waypoint_availability_follows_lifecycle(self):
        sim, _city, _home, hpop = build_kitchen_sink()
        collective = DetourCollective()
        waypoint = hpop.service("dcol-waypoint")
        collective.join(waypoint)
        assert waypoint in collective.available_waypoints()
        hpop.shutdown()
        assert waypoint not in collective.available_waypoints()
        hpop.restart()
        assert waypoint in collective.available_waypoints()
