"""Integration: flows crossing multiple subsystems."""

import random

import pytest

from repro.attic.driver import AtticDriver
from repro.attic.service import DataAtticService
from repro.hpop.core import HPOP_PORT, Household, Hpop, User
from repro.iah.deepweb import PropertyTrigger
from repro.iah.service import InternetAtHomeService
from repro.iah.web import Website
from repro.nat.devices import NatChain, NatDevice, NatType, make_cgn
from repro.nat.traversal import ReachabilityManager, ReachabilityMethod, \
    StunServer, TurnServer
from repro.net.address import Address
from repro.net.topology import build_city
from repro.nocdn.loader import PageLoader
from repro.nocdn.origin import ContentProvider
from repro.nocdn.peer import NoCdnPeerService
from repro.sim.engine import Simulator
from repro.workloads.web import CatalogSpec, generate_catalog


class TestAtticThroughNat:
    """SIII + SIV-A: an external app reaches the attic behind a CGN."""

    def build(self):
        sim = Simulator(seed=22)
        city = build_city(sim, homes_per_neighborhood=2,
                          server_sites={"infra": 1, "saas": 1})
        infra = city.server_sites["infra"].servers[0]
        manager = ReachabilityManager(city.network,
                                      StunServer(city.network, infra),
                                      TurnServer(city.network, infra))
        home = city.neighborhoods[0].homes[0]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name="h", users=[User("ann", "pw")]),
                    reachability=manager)
        attic = hpop.install(DataAtticService())
        # Behind a symmetric CGN: only a relay works.
        manager.register_chain(home.hpop_host, NatChain([
            NatDevice("home-nat", Address.parse("100.64.5.1")),
            make_cgn("cgn", Address.parse("100.64.9.5")),
        ]))
        reports = []
        hpop.start(on_reachable=reports.append)
        sim.run()
        return sim, city, manager, hpop, attic, reports[0]

    def test_relayed_driver_round_trip(self):
        sim, city, manager, hpop, attic, report = self.build()
        assert report.method is ReachabilityMethod.RELAY
        grant = attic.issue_grant("ann", "saas", sub_path="docs")
        saas = city.server_sites["saas"].servers[0]
        manager.register_chain(saas, NatChain())
        relay_path = manager.data_path(saas, hpop.host)
        driver = AtticDriver(saas, city.network, attic.qr_for(grant),
                             via_path=relay_path)
        opened, closed = [], []
        driver.open("report.doc", "w", opened.append,
                    create_size=50_000, create_payload="draft")
        sim.run()
        assert len(opened) == 1
        driver.close(opened[0], lambda: closed.append(1))
        sim.run()
        assert closed == [1]
        assert attic.dav.tree.exists("/ann/docs/report.doc")

    def test_relayed_access_slower_than_direct_would_be(self):
        sim, city, manager, hpop, attic, _report = self.build()
        saas = city.server_sites["saas"].servers[0]
        manager.register_chain(saas, NatChain())
        relayed = manager.data_path(saas, hpop.host)
        direct = city.network.path_between(saas, hpop.host)
        assert relayed.rtt > direct.rtt


class TestAtticDrivesInternetAtHome:
    """SIV-D "Leveraging the Data Attic": attic contents trigger gathering."""

    def test_tax_document_keeps_quotes_fresh(self):
        sim = Simulator(seed=23)
        city = build_city(sim, homes_per_neighborhood=2,
                          server_sites={"fin": 1})
        from repro.http.content import ContentCatalog, WebObject
        catalog = ContentCatalog()
        for symbol in ("AAPL", "MSFT", "NVDA"):
            catalog.add_object(WebObject(f"quote/{symbol}", 2_000))
        site = Website("fin.example", city.server_sites["fin"].servers[0],
                       city.network, catalog, object_ttl=60.0)
        home = city.neighborhoods[0].homes[0]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name="h", users=[User("ann", "pw")]))
        attic = hpop.install(DataAtticService())
        iah = hpop.install(InternetAtHomeService(gather_interval=0))
        iah.register_site(site)
        iah.add_trigger(PropertyTrigger("tickers", site.name, "quote/{}"))
        hpop.start()

        # The user files taxes into the attic; properties name two tickers.
        attic.dav.tree.put("/ann/taxes.pdf", size=90_000)
        attic.dav.tree.lookup("/ann/taxes.pdf").properties["tickers"] = \
            "AAPL, MSFT"
        iah.gather()
        sim.run()
        assert iah.cache.contains("fin.example|quote/AAPL")
        assert iah.cache.contains("fin.example|quote/MSFT")
        assert not iah.cache.contains("fin.example|quote/NVDA")

        # A new document adds a ticker; the next round picks it up.
        attic.dav.tree.put("/ann/brokerage.pdf", size=10_000)
        attic.dav.tree.lookup("/ann/brokerage.pdf").properties["tickers"] = \
            "NVDA"
        iah.gather()
        sim.run()
        assert iah.cache.contains("fin.example|quote/NVDA")


class TestNoCdnPeerChurn:
    """Peers die and return mid-service; readers never see broken pages."""

    def test_flash_crowd_with_peer_deaths(self):
        sim = Simulator(seed=24)
        city = build_city(sim, homes_per_neighborhood=10,
                          server_sites={"origin": 1})
        catalog = generate_catalog(CatalogSpec(num_pages=2),
                                   random.Random(24))
        provider = ContentProvider(
            "site", city.server_sites["origin"].servers[0],
            city.network, catalog)
        peers, hpops = [], []
        for i in range(4):
            home = city.neighborhoods[0].homes[i]
            hpop = Hpop(home.hpop_host, city.network,
                        Household(name=f"h{i}", users=[User("u", "p")]))
            service = hpop.install(NoCdnPeerService())
            hpop.start()
            service.sign_up(provider)
            peers.append(service)
            hpops.append(hpop)
        url = catalog.pages()[0].url
        page_size = catalog.pages()[0].total_size
        loader = PageLoader(city.neighborhoods[0].homes[5].devices[0],
                            city.network)
        results = []
        loader.load(provider, url, results.append)
        sim.run()

        # Two peers die; the origin does not know yet.
        hpops[0].shutdown()
        hpops[1].shutdown()
        loader2 = PageLoader(city.neighborhoods[0].homes[6].devices[0],
                             city.network)
        loader2.load(provider, url, results.append)
        sim.run()
        # Page still complete: dead-peer fetches failed over to the origin
        # (or landed on live peers).
        assert results[1].total_bytes >= page_size

        # They come back; service resumes cleanly.
        hpops[0].restart()
        hpops[1].restart()
        loader3 = PageLoader(city.neighborhoods[0].homes[7].devices[0],
                             city.network)
        loader3.load(provider, url, results.append)
        sim.run()
        assert results[2].total_bytes >= page_size
        assert results[2].peer_failures == []
