"""Chaos acceptance scenario: seeded 20% HPoP churn against a world
running NoCDN page serving and attic peer backup simultaneously.

Proves the headline claims of the fault-injection subsystem:

- every page load started during the churn window completes (peer
  failover / origin fallback absorb dead peers),
- the attic returns to full shard redundancy once the dust settles
  (heartbeat detection -> auto repair), and
- the same seed yields a byte-identical fault-event JSONL export.
"""

from repro.attic.backup_service import PeerBackupService
from repro.attic.service import DataAtticService
from repro.faults import FaultInjector, FaultPlan, LinkFlap
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.nocdn.loader import PageLoader
from repro.nocdn.origin import ContentProvider
from repro.nocdn.peer import NoCdnPeerService
from repro.sim.engine import Simulator
from repro.util.units import kib

from tests.nocdn.harness import make_catalog

CHURN_FRACTION = 0.2
CHURN_START = 2.0
CHURN_HORIZON = 20.0
NUM_PEERS = 8
NUM_LOADS = 40


class ChaosWorld:
    """NoCDN peers that are also each other's attic backup friends.

    HPoP index 0 is the attic owner whose files must survive; every
    HPoP additionally serves NoCDN chunks. Churn victims are drawn
    from indices 1..n so the owner's manifest stays authoritative.
    """

    def __init__(self, seed: int, num_peers: int = NUM_PEERS,
                 strategy: str = None):
        self.num_peers = num_peers
        self.sim = Simulator(seed=seed)
        self.city = build_city(self.sim,
                               homes_per_neighborhood=num_peers + 2,
                               server_sites={"origin": 1})
        self.catalog = make_catalog(num_pages=2)
        origin_host = self.city.server_sites["origin"].servers[0]
        # Collaborative caching rides along when a strategy is named;
        # the default (None) keeps the classic world — and its seeded
        # exports — byte-identical.
        provider_kwargs = {}
        if strategy is not None:
            from repro.nocdn.directory import ContentDirectory
            from repro.nocdn.strategy import make_strategy

            provider_kwargs = {
                "strategy": make_strategy(strategy),
                "directory": ContentDirectory(self.sim),
            }
        self.provider = ContentProvider(
            "news.example", origin_host, self.city.network, self.catalog,
            **provider_kwargs)
        self.hpops, self.backups = [], []
        for i in range(num_peers):
            home = self.city.neighborhoods[0].homes[i]
            hpop = Hpop(home.hpop_host, self.city.network,
                        Household(name=f"h{i}", users=[User("u", "p")]))
            hpop.install(DataAtticService())
            backup = hpop.install(PeerBackupService(
                k=2, m=1,
                heartbeat_interval=1.0 if i == 0 else None))
            peer = hpop.install(NoCdnPeerService())
            hpop.start()
            peer.sign_up(self.provider)
            self.hpops.append(hpop)
            self.backups.append(backup)
        self.owner = self.backups[0]
        for friend in self.backups[1:]:
            self.owner.add_friend(friend)
        self.client_device = (
            self.city.neighborhoods[0].homes[num_peers].devices[0])
        self.loader = PageLoader(self.client_device, self.city.network,
                                 peer_timeout=1.0)
        self.injector = FaultInjector(self.sim, self.city.network,
                                      hpops=self.hpops)
        self.tsdb = None
        self.slo_monitor = None
        self.controller = None
        self.zone = None
        self.resolver = None
        self.exemplar_store = None
        self.sampler = None
        self.redundancy_transitions = []

    def enable_sampling(self, rate: float = 0.05, **policy):
        """Attach deterministic tail-based trace sampling.

        Requires ``sim.enable_tracing()`` first. Defaults size the
        limbo grace to cover the longest SLO burn window, so exemplar
        pins from late-firing alerts still resurrect their traces.
        Returns the :class:`~repro.obs.sampling.TailSampler`.
        """
        tracer = self.sim.tracer
        if not hasattr(tracer, "enable_tail_sampling"):
            raise RuntimeError("call sim.enable_tracing() before "
                               "enable_sampling()")
        policy.setdefault("slow_threshold", 5.0)
        policy.setdefault("grace", 120.0)
        self.sampler = tracer.enable_tail_sampling(rate=rate, **policy)
        if self.exemplar_store is not None:
            self.exemplar_store.sampler = self.sampler
        return self.sampler

    def enable_telemetry(self, scrape_interval: float = 0.25,
                         eval_interval: float = 0.5,
                         exemplars: bool = False):
        """Attach the full fleet-telemetry stack to this world.

        Scrapes every registry (loader, injector, network, each HPoP's
        peer-backup service) into a :class:`TimeSeriesDB` under a
        per-source prefix, and evaluates the NoCDN + attic default SLOs
        against it. With ``exemplars`` an
        :class:`~repro.obs.sampling.ExemplarStore` links every firing
        alert to the worst in-window request's trace (and pins it
        through the sampler when one is attached). Returns
        ``(tsdb, slo_monitor)``.
        """
        from repro.attic.backup_service import default_slos as attic_slos
        from repro.nocdn.loader import default_slos as nocdn_slos
        from repro.obs.slo import SloMonitor
        from repro.obs.timeseries import TimeSeriesDB

        if exemplars:
            from repro.obs.sampling import ExemplarStore
            self.exemplar_store = ExemplarStore(self.sim, window=120.0)
            self.exemplar_store.sampler = self.sampler
            self.loader.exemplars = self.exemplar_store
            for backup in self.backups:
                backup.exemplars = self.exemplar_store
        self.tsdb = TimeSeriesDB(self.sim, interval=scrape_interval)
        self.tsdb.add_registry(self.loader.metrics, source="client")
        self.tsdb.add_registry(self.injector.metrics, source="injector")
        self.tsdb.add_registry(self.city.network.metrics, source="net")
        for i, backup in enumerate(self.backups):
            self.tsdb.add_registry(backup.metrics, source=f"h{i}")
        specs = nocdn_slos("client") + attic_slos("h0")
        self.slo_monitor = SloMonitor(self.sim, self.tsdb, specs,
                                      interval=eval_interval,
                                      exemplars=self.exemplar_store)
        self.tsdb.add_registry(self.slo_monitor.metrics, source="slo")
        self.tsdb.start()
        self.slo_monitor.start()
        return self.tsdb, self.slo_monitor

    def enable_controller(self, quarantine_s: float = 20.0):
        """Attach the autonomous control plane on top of the telemetry.

        One shared :class:`Controller` subscribes to the SLO monitor's
        alert stream and the owner attic's death/revival verdicts;
        rules quarantine failing NoCDN peers, pull attic repairs
        forward, probe implicated friends out-of-band, evacuate
        chronically flappy holders, and re-register restarted HPoPs in
        a ``home.`` zone (invalidating the client resolver's cache).
        Requires :meth:`enable_telemetry` first. Returns the controller.
        """
        from repro.control import (
            Controller,
            ControlAgent,
            attic_migrate_rule,
            attic_probe_rule,
            attic_repair_rule,
            nocdn_rerank_rule,
            reregister_rule,
        )
        from repro.naming.dns import StubResolver, Zone

        assert self.slo_monitor is not None, "enable_telemetry() first"
        self.controller = Controller(self.sim)
        self.zone = Zone("home")
        self.resolver = StubResolver(self.sim, client=self.client_device)
        self.resolver.add_zone(self.zone)
        for hpop in self.hpops:
            fqdn = f"{hpop.host.name}.home"
            self.zone.add(fqdn, hpop.host.address, ttl=30.0)
            self.resolver.resolve(fqdn)  # warm cache: restarts must evict
            hpop.install(ControlAgent(self.controller, fqdn=fqdn))
        self.controller.add_rule(nocdn_rerank_rule(
            self.provider, self.loader, quarantine_s=quarantine_s))
        self.controller.add_rule(attic_repair_rule(self.owner))
        self.controller.add_rule(attic_probe_rule(self.owner, self.loader))
        self.controller.add_rule(attic_migrate_rule(self.owner))
        self.controller.add_rule(reregister_rule(
            self.zone, resolvers=[self.resolver]))
        self.slo_monitor.add_listener(self.controller.on_slo_event)
        self.owner.add_peer_listener(self.controller.on_peer_event)
        self.tsdb.add_registry(self.controller.metrics, source="control")
        return self.controller

    def start_redundancy_probe(self, interval: float = 0.25):
        """Sample attic redundancy on a cadence; records transitions.

        ``redundancy_transitions`` collects ``(t, bool)`` whenever the
        fully-redundant verdict changes — the outage intervals between
        a ``True -> False`` edge and the next ``False -> True`` edge
        are the *injection-to-repair* times the control bench compares
        (the service's own ``time_to_repair_seconds`` clock only starts
        at the death verdict, so it cannot credit faster detection).
        """
        state = {"redundant": None}

        def sample():
            now_redundant = self.attic_fully_redundant()
            if now_redundant != state["redundant"]:
                state["redundant"] = now_redundant
                self.redundancy_transitions.append(
                    (self.sim.now, now_redundant))
            self.sim.schedule(interval, sample, label="chaos.redundancy",
                              weak=True)

        sample()

    def repair_outages(self):
        """Closed (start, duration) outage windows from the probe."""
        outages = []
        down_at = None
        for t, redundant in self.redundancy_transitions:
            if not redundant and down_at is None:
                down_at = t
            elif redundant and down_at is not None:
                outages.append((down_at, t - down_at))
                down_at = None
        return outages

    def seed_attic(self):
        attic = self.owner.hpop.service("attic")
        attic.dav.tree.mkcol_recursive("/u0")
        for i in range(3):
            attic.dav.tree.put(f"/u0/file{i}.dat", size=kib(80),
                               payload="original")
        done = []
        self.owner.backup_all(lambda ok, total: done.append((ok, total)))
        self.sim.run_until(self.sim.now + 30.0)
        assert done == [(3, 3)]

    def apply_churn(self, fraction: float = CHURN_FRACTION,
                    flaps: int = 1, flap_duration: float = 4.0,
                    horizon: float = CHURN_HORIZON):
        t0 = self.sim.now
        victims = [h.host.name for h in self.hpops[1:]]
        plan = FaultPlan.churn(
            victims, fraction, horizon=t0 + horizon,
            rng=self.sim.rng.stream("chaos.plan"),
            downtime=(3.0, 6.0), start=t0 + CHURN_START)
        if fraction > 0 and flaps > 0:
            # A partitioned (but powered) peer: the origin cannot see
            # link state, keeps assigning it, and every load in the
            # window exercises client-side failover.
            plan.add(LinkFlap("hpop-n0h3", at=t0 + 5.0, duration=4.0))
            # Extra flaps (the control bench's repeat offenders) come
            # from their own rng stream so the default flaps=1 plan —
            # and therefore the PR-3 fault log — stays byte-identical.
            if flaps > 1:
                flap_rng = self.sim.rng.stream("chaos.flaps")
                for _ in range(flaps - 1):
                    victim = flap_rng.randrange(1, self.num_peers)
                    at = t0 + CHURN_START + flap_rng.uniform(
                        0.0, max(0.0, horizon - CHURN_START))
                    plan.add(LinkFlap(f"hpop-n0h{victim}", at=at,
                                      duration=flap_duration))
        self.injector.apply(plan)
        return plan

    def schedule_loads(self, num_loads: int = NUM_LOADS,
                       spacing: float = 0.5):
        results, errors = [], []
        t0 = self.sim.now
        for i in range(num_loads):
            url = f"/page{i % 2}"
            self.sim.at(
                t0 + 1.0 + spacing * i,
                lambda u=url: self.loader.load(self.provider, u,
                                               results.append,
                                               errors.append),
                label=f"chaos.load{i}")
        return results, errors

    def attic_fully_redundant(self) -> bool:
        by_name = {b.owner_name: b for b in self.backups}
        for entry in self.owner.manifest.values():
            if len(entry.shard_holders) != self.owner.k + self.owner.m:
                return False
            for index, holder_name in enumerate(entry.shard_holders):
                holder = by_name[holder_name]
                if not holder.hpop.running:
                    return False
                if not any(key[1] == entry.path and key[2] == index
                           for key in holder.held_shards):
                    return False
        return True


def run_chaos(seed: int, export_path=None, fraction: float = CHURN_FRACTION,
              num_peers: int = NUM_PEERS, telemetry: bool = False,
              controller: bool = False, num_loads: int = NUM_LOADS,
              spacing: float = 0.5, flaps: int = 1,
              horizon: float = CHURN_HORIZON, strategy: str = None,
              sampling: float = None, exemplars: bool = False):
    world = ChaosWorld(seed, num_peers=num_peers, strategy=strategy)
    if sampling is not None:
        world.sim.enable_tracing(capacity=262144)
        world.enable_sampling(rate=sampling)
    if telemetry or controller or exemplars:
        world.enable_telemetry(exemplars=exemplars)
    if controller:
        world.enable_controller()
    world.seed_attic()
    plan = world.apply_churn(fraction, flaps=flaps, horizon=horizon)
    results, errors = world.schedule_loads(num_loads=num_loads,
                                           spacing=spacing)
    world.sim.run_until(world.sim.now + 150.0)
    if world.slo_monitor is not None:
        world.slo_monitor.finish()
    if export_path is not None:
        world.injector.export_jsonl(str(export_path))
    return world, plan, results, errors


class TestChaosScenario:
    def test_churn_scenario_degrades_gracefully(self, tmp_path):
        world, plan, results, errors = run_chaos(101, tmp_path / "f.jsonl")
        # The plan actually did damage.
        assert plan.node_crashes()
        assert world.injector.metrics.counters["node_crashes"].value \
            == len(plan.node_crashes())
        assert world.injector.metrics.counters["node_restarts"].value \
            == len(plan.node_crashes())
        assert world.injector.metrics.counters["link_flaps"].value == 1
        # 1) Every page load completed despite dead peers.
        assert not errors, f"page loads failed: {errors}"
        assert len(results) == NUM_LOADS
        for result in results:
            assert result.total_bytes > 0
        # 2) The attic is back at full redundancy.
        assert world.attic_fully_redundant(), (
            "attic not repaired to full redundancy")
        # Steady state: no repair loop left spinning, nothing gave up.
        assert world.owner.metrics.counters["auto_repair_gave_up"].value == 0

    def test_failovers_actually_exercised(self):
        """The scenario is only meaningful if faults hit live traffic."""
        world, _plan, results, _errors = run_chaos(101)
        failovers = (
            world.loader.metrics.counters["peer_failovers"].value
            + world.loader.metrics.counters["origin_fallbacks"].value)
        peer_failures = sum(len(r.peer_failures) for r in results)
        assert failovers > 0
        assert peer_failures > 0

    def test_same_seed_byte_identical_fault_log(self, tmp_path):
        _w1, _p1, _r1, _e1 = run_chaos(101, tmp_path / "a.jsonl")
        _w2, _p2, _r2, _e2 = run_chaos(101, tmp_path / "b.jsonl")
        a = (tmp_path / "a.jsonl").read_bytes()
        b = (tmp_path / "b.jsonl").read_bytes()
        assert a == b
        assert a  # non-empty: the plan really fired

    def test_different_seed_different_fault_log(self, tmp_path):
        run_chaos(101, tmp_path / "a.jsonl")
        run_chaos(202, tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() \
            != (tmp_path / "b.jsonl").read_bytes()

    def test_zero_churn_is_faultless_baseline(self, tmp_path):
        world, plan, results, errors = run_chaos(
            101, tmp_path / "f.jsonl", fraction=0.0)
        assert len(plan) == 0
        assert not errors
        assert len(results) == NUM_LOADS
        assert (tmp_path / "f.jsonl").read_bytes() == b""
        assert world.loader.metrics.counters["peer_failovers"].value == 0
