"""Control plane under the chaos scenario: acted-on alerts, convergence,
re-registration, and a byte-identical decision log per seed."""

from tests.integration.test_chaos import NUM_LOADS, run_chaos


class TestControllerUnderChurn:
    def test_controller_acts_and_world_survives(self):
        world, plan, results, errors = run_chaos(101, controller=True)
        ctl = world.controller
        # The run still degrades gracefully with the controller active.
        assert not errors
        assert len(results) == NUM_LOADS
        assert world.attic_fully_redundant()
        # The controller actually did something.
        assert ctl.metrics.counters["actions_executed"].value > 0
        assert ctl.metrics.counters["messages_sent"].value > 0

    def test_every_fired_alert_maps_to_a_decision(self):
        world, _plan, _results, _errors = run_chaos(101, controller=True)
        ctl = world.controller
        alerts = [e for e in world.slo_monitor.events
                  if e["state"] == "firing"]
        assert alerts, "scenario fired no alerts; nothing was exercised"
        for alert in alerts:
            matching = [d for d in ctl.decisions()
                        if d["trigger"] == f"alert:{alert['slo']}"
                        and d["t"] == alert["t"]]
            assert matching, f"alert {alert['slo']}@{alert['t']} unhandled"

    def test_convergence_measured_for_resolved_alerts(self):
        world, _plan, _results, _errors = run_chaos(101, controller=True)
        ctl = world.controller
        conv = ctl.convergences()
        assert conv, "no alert converged during the run"
        for record in conv:
            assert record["convergence_s"] > 0
            assert record["fired_t"] < record["t"]
        assert (world.controller.metrics.histograms[
            "convergence_seconds"].count == len(conv))

    def test_quarantine_excludes_peer_from_assignments(self):
        world, _plan, _results, _errors = run_chaos(101, controller=True)
        quarantined = [p for p, info in world.provider.peers.items()
                       if info.quarantines > 0]
        assert quarantined, "the rerank rule never quarantined anyone"
        executed = [d for d in world.controller.decisions("executed")
                    if d["action"] == "nocdn.quarantine"]
        assert {d["target"] for d in executed} == set(quarantined)

    def test_crashed_hpops_reregister(self):
        world, plan, _results, _errors = run_chaos(101, controller=True)
        crashed = {c.node for c in plan.node_crashes()}
        assert crashed
        rereg = [d for d in world.controller.decisions("executed")
                 if d["action"] == "naming.reregister"]
        # Every crash that restarted produced a re-registration, and the
        # zone serves every appliance's record afterwards.
        assert {d["target"] for d in rereg} >= crashed
        for hpop in world.hpops:
            assert world.zone.resolve(f"{hpop.host.name}.home").address \
                == hpop.host.address

    def test_same_seed_byte_identical_decision_log(self, tmp_path):
        w1, _p1, _r1, _e1 = run_chaos(101, controller=True)
        w2, _p2, _r2, _e2 = run_chaos(101, controller=True)
        w1.controller.export_jsonl(str(tmp_path / "a.jsonl"))
        w2.controller.export_jsonl(str(tmp_path / "b.jsonl"))
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert a  # decisions actually happened

    def test_different_seed_different_decisions(self, tmp_path):
        w1, _p1, _r1, _e1 = run_chaos(101, controller=True)
        w2, _p2, _r2, _e2 = run_chaos(202, controller=True)
        w1.controller.export_jsonl(str(tmp_path / "a.jsonl"))
        w2.controller.export_jsonl(str(tmp_path / "b.jsonl"))
        assert (tmp_path / "a.jsonl").read_bytes() \
            != (tmp_path / "b.jsonl").read_bytes()

    def test_controller_off_run_unperturbed(self, tmp_path):
        """The controller import/wiring must not change the base run:
        the PR-3 fault log stays byte-identical with telemetry only."""
        run_chaos(101, tmp_path / "plain.jsonl")
        run_chaos(101, tmp_path / "telemetry.jsonl", telemetry=True)
        assert (tmp_path / "plain.jsonl").read_bytes() \
            == (tmp_path / "telemetry.jsonl").read_bytes()
