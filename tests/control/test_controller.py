"""Controller mechanics: routing, guards, convergence, determinism."""

import pytest

from repro.control import Controller, ControlRule, Proposal, load_control_jsonl
from repro.sim.engine import Simulator


def make_controller(seed=7):
    sim = Simulator(seed=seed)
    return sim, Controller(sim)


def acting_rule(name="act", kinds=("alert",), actions=None, cooldown=0.0,
                hysteresis=1, hysteresis_window=10.0, matcher=None,
                detail=None):
    """A rule whose executions append to ``actions``."""
    actions = actions if actions is not None else []

    def propose(sig, ctl):
        def execute():
            actions.append((ctl.sim.now, sig.key))
            return {"acted": True}

        return [Proposal(target=sig.key, execute=execute,
                         detail=dict(detail or {}))]

    rule = ControlRule(name, kinds=kinds, propose=propose, matcher=matcher,
                       cooldown=cooldown, hysteresis=hysteresis,
                       hysteresis_window=hysteresis_window)
    return rule, actions


class TestRouting:
    def test_signal_routes_to_matching_rule(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(kinds=("alert",))
        ctl.add_rule(rule)
        produced = ctl.signal("alert", "some-slo", service="nocdn")
        assert actions == [(0.0, "some-slo")]
        assert [d["outcome"] for d in produced] == ["executed"]
        assert produced[0]["action"] == "act"
        assert produced[0]["trigger"] == "alert:some-slo"
        assert produced[0]["acted"] is True

    def test_kind_filter(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(kinds=("peer_dead",))
        ctl.add_rule(rule)
        ctl.signal("alert", "x")
        assert actions == []
        ctl.signal("peer_dead", "h3")
        assert actions == [(0.0, "h3")]

    def test_matcher_filter(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(
            matcher=lambda sig: sig.attrs.get("service") == "nocdn")
        ctl.add_rule(rule)
        ctl.signal("alert", "a", service="attic")
        ctl.signal("alert", "b", service="nocdn")
        assert [key for _t, key in actions] == ["b"]

    def test_duplicate_rule_name_rejected(self):
        _sim, ctl = make_controller()
        ctl.add_rule(acting_rule(name="dup")[0])
        with pytest.raises(ValueError, match="duplicate"):
            ctl.add_rule(acting_rule(name="dup")[0])

    def test_unmatched_alert_logs_observed_decision(self):
        """Acceptance contract: every fired alert maps to a decision."""
        _sim, ctl = make_controller()
        produced = ctl.signal("alert", "lonely-slo", service="dcol")
        assert len(produced) == 1
        assert produced[0]["action"] == "none"
        assert produced[0]["outcome"] == "observed"

    def test_metrics_track_execution(self):
        _sim, ctl = make_controller()
        rule, _actions = acting_rule(cooldown=100.0)
        ctl.add_rule(rule)
        ctl.signal("alert", "x")
        ctl.signal("alert", "x")  # inside cooldown
        ctl.count_message(3)
        assert ctl.metrics.counters["signals_seen"].value == 2
        assert ctl.metrics.counters["actions_executed"].value == 1
        assert ctl.metrics.counters["actions_suppressed"].value == 1
        assert ctl.metrics.counters["messages_sent"].value == 3
        assert ctl.metrics.counters["actions_act"].value == 1


class TestCooldown:
    def test_cooldown_suppresses_then_releases(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(cooldown=5.0)
        ctl.add_rule(rule)
        ctl.signal("alert", "x")
        sim.run_until(2.0)
        produced = ctl.signal("alert", "x")
        assert produced[0]["outcome"] == "cooldown"
        assert len(actions) == 1
        sim.run_until(5.5)
        produced = ctl.signal("alert", "x")
        assert produced[0]["outcome"] == "executed"
        assert len(actions) == 2

    def test_cooldown_is_per_target(self):
        sim, ctl = make_controller()
        actions = []

        def propose(sig, ctl):
            def exec_for(t):
                return lambda: actions.append(t) or None

            return [Proposal(target=t, execute=exec_for(t))
                    for t in sig.attrs["targets"]]

        ctl.add_rule(ControlRule("multi", kinds=("alert",), propose=propose,
                                 cooldown=10.0))
        ctl.signal("alert", "x", targets=["a", "b"])
        produced = ctl.signal("alert", "x", targets=["a", "c"])
        # "a" is cooling down; "c" is a fresh target.
        assert [d["outcome"] for d in produced] == ["cooldown", "executed"]
        assert actions == ["a", "b", "c"]


class TestHysteresis:
    def test_requires_n_signals(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(hysteresis=3, hysteresis_window=10.0)
        ctl.add_rule(rule)
        p1 = ctl.signal("alert", "x")
        p2 = ctl.signal("alert", "x")
        p3 = ctl.signal("alert", "x")
        assert [p[0]["outcome"] for p in (p1, p2, p3)] == [
            "hysteresis", "hysteresis", "executed"]
        assert len(actions) == 1

    def test_window_gap_resets_count(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(hysteresis=2, hysteresis_window=5.0)
        ctl.add_rule(rule)
        ctl.signal("alert", "x")
        sim.run_until(20.0)  # > window: the streak evaporates
        produced = ctl.signal("alert", "x")
        assert produced[0]["outcome"] == "hysteresis"
        produced = ctl.signal("alert", "x")
        assert produced[0]["outcome"] == "executed"
        assert len(actions) == 1

    def test_hysteresis_tracked_per_key(self):
        sim, ctl = make_controller()
        rule, actions = acting_rule(hysteresis=2)
        ctl.add_rule(rule)
        ctl.signal("alert", "x")
        produced = ctl.signal("alert", "y")  # different key: own streak
        assert produced[0]["outcome"] == "hysteresis"
        produced = ctl.signal("alert", "x")
        assert produced[0]["outcome"] == "executed"

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlRule("bad", kinds=("alert",),
                        propose=lambda s, c: [], hysteresis=0)
        with pytest.raises(ValueError):
            ControlRule("bad", kinds=("alert",),
                        propose=lambda s, c: [], cooldown=-1.0)


class TestConvergence:
    def test_alert_resolve_measures_convergence(self):
        sim, ctl = make_controller()
        rule, _actions = acting_rule()
        ctl.add_rule(rule)
        ctl.on_slo_event({"t": 0.0, "state": "firing", "slo": "s",
                          "service": "nocdn", "objective": 0.9})
        sim.run_until(6.5)
        ctl.on_slo_event({"t": 6.5, "state": "resolved", "slo": "s",
                          "service": "nocdn", "objective": 0.9})
        conv = ctl.convergences()
        assert len(conv) == 1
        assert conv[0]["slo"] == "s"
        assert conv[0]["convergence_s"] == pytest.approx(6.5)
        assert conv[0]["decisions"] == 1
        assert ctl.metrics.histograms["convergence_seconds"].count == 1
        assert ctl.metrics.gauges["open_alerts"].read() == 0.0

    def test_run_end_resolve_is_not_convergence(self):
        sim, ctl = make_controller()
        ctl.on_slo_event({"t": 0.0, "state": "firing", "slo": "s",
                          "service": "x", "objective": 0.9})
        ctl.on_slo_event({"t": 0.0, "state": "resolved", "slo": "s",
                          "service": "x", "objective": 0.9,
                          "at_run_end": True})
        assert ctl.convergences() == []
        assert ctl.metrics.histograms["convergence_seconds"].count == 0

    def test_resolve_without_fire_is_ignored(self):
        _sim, ctl = make_controller()
        ctl.on_slo_event({"t": 1.0, "state": "resolved", "slo": "ghost",
                          "service": "x", "objective": 0.9})
        assert ctl.convergences() == []


class TestAvailability:
    def test_tracks_down_intervals(self):
        sim, ctl = make_controller()
        ctl.signal("peer_dead", "h1")
        sim.run_until(4.0)
        ctl.signal("peer_alive", "h1")
        sim.run_until(10.0)
        # 4 seconds down in the trailing 10.
        assert ctl.availability("h1", 10.0) == pytest.approx(0.6)
        assert ctl.availability("h1", 2.0) == 1.0  # outage aged out
        assert ctl.availability("unknown", 10.0) == 1.0

    def test_open_interval_counts_to_now(self):
        sim, ctl = make_controller()
        sim.run_until(5.0)
        ctl.signal("peer_dead", "h1")
        sim.run_until(10.0)
        assert ctl.availability("h1", 10.0) == pytest.approx(0.5)


class TestExport:
    def test_jsonl_roundtrip_and_determinism(self, tmp_path):
        def run(path):
            sim, ctl = make_controller(seed=3)
            rule, _ = acting_rule(cooldown=1.0)
            ctl.add_rule(rule)
            ctl.on_slo_event({"t": 0.0, "state": "firing", "slo": "s",
                              "service": "nocdn", "objective": 0.9})
            sim.run_until(2.0)
            ctl.on_slo_event({"t": 2.0, "state": "resolved", "slo": "s",
                              "service": "nocdn", "objective": 0.9})
            ctl.signal("peer_dead", "h2")
            assert ctl.export_jsonl(str(path)) == len(ctl.events)
            return ctl

        ctl = run(tmp_path / "a.jsonl")
        run(tmp_path / "b.jsonl")
        a = (tmp_path / "a.jsonl").read_bytes()
        assert a == (tmp_path / "b.jsonl").read_bytes()
        assert a
        records = load_control_jsonl(str(tmp_path / "a.jsonl"))
        assert records == ctl.events
        assert {r["event"] for r in records} == {"decision", "converged"}
