"""Remediation rules: what each one proposes, against light stubs."""

import pytest

from repro.control import (
    Controller,
    attic_migrate_rule,
    attic_probe_rule,
    attic_repair_rule,
    dcol_rotate_rule,
    nocdn_rerank_rule,
    reregister_rule,
)
from repro.net.address import Address
from repro.naming.dns import StubResolver, Zone
from repro.sim.engine import Simulator


def make_controller(seed=5):
    sim = Simulator(seed=seed)
    return sim, Controller(sim)


class FakeLoader:
    def __init__(self):
        self.peer_failure_counts = {}


class FakeProvider:
    def __init__(self, sim):
        self.sim = sim
        self.quarantined = []

    def quarantine_peer(self, peer_id, duration):
        self.quarantined.append((peer_id, duration))
        return self.sim.now + duration


class FakeMonitor:
    def __init__(self):
        self.alive = {}
        self.declared = []

    def is_alive(self, name):
        return self.alive.get(name, True)

    def declare_dead(self, name):
        self.declared.append(name)
        return True


class FakeBackup:
    def __init__(self, friends=("h1", "h2", "h3")):
        self.owner_name = "h0"
        self.friends = [type("F", (), {"owner_name": n})() for n in friends]
        self.monitor = FakeMonitor()
        self.repair_now_calls = 0
        self.evacuated = []
        self.probed = []

    def repair_now(self):
        self.repair_now_calls += 1
        return True

    def evacuate_holder(self, name):
        self.evacuated.append(name)
        return 2

    def probe_friend(self, name, on_verdict=None, timeout=None):
        self.probed.append(name)


class TestNocdnRerank:
    def test_quarantines_worst_failing_peers(self):
        sim, ctl = make_controller()
        loader, provider = FakeLoader(), FakeProvider(sim)
        ctl.add_rule(nocdn_rerank_rule(provider, loader, quarantine_s=15.0,
                                       top_n=2))
        loader.peer_failure_counts = {"pA": 4, "pB": 1, "pC": 2}
        produced = ctl.signal("alert", "nocdn-x", service="nocdn")
        executed = [d for d in produced if d["outcome"] == "executed"]
        assert [d["target"] for d in executed] == ["pA", "pC"]
        assert [(p, d) for p, d in provider.quarantined] == [
            ("pA", 15.0), ("pC", 15.0)]
        assert executed[0]["failures"] == 4
        assert ctl.metrics.counters["messages_sent"].value == 2

    def test_only_new_failures_count(self):
        sim, ctl = make_controller()
        loader, provider = FakeLoader(), FakeProvider(sim)
        ctl.add_rule(nocdn_rerank_rule(provider, loader, cooldown=0.0))
        loader.peer_failure_counts = {"pA": 4}
        ctl.signal("alert", "nocdn-x", service="nocdn")
        # No new failures since: the second alert proposes nothing.
        produced = ctl.signal("alert", "nocdn-x", service="nocdn")
        assert all(d["outcome"] != "executed" or d["action"] != "nocdn.quarantine"
                   for d in produced)
        assert len(provider.quarantined) == 1
        # Fresh failures re-arm it.
        loader.peer_failure_counts = {"pA": 4, "pB": 2}
        produced = ctl.signal("alert", "nocdn-x", service="nocdn")
        assert [d["target"] for d in produced
                if d["outcome"] == "executed"] == ["pB"]

    def test_ignores_other_services(self):
        sim, ctl = make_controller()
        loader, provider = FakeLoader(), FakeProvider(sim)
        ctl.add_rule(nocdn_rerank_rule(provider, loader))
        loader.peer_failure_counts = {"pA": 4}
        ctl.signal("alert", "attic-x", service="attic")
        assert provider.quarantined == []


class TestAtticRules:
    def test_repair_now_on_alert_and_death(self):
        sim, ctl = make_controller()
        backup = FakeBackup()
        ctl.add_rule(attic_repair_rule(backup, cooldown=0.0))
        ctl.signal("alert", "attic-x", service="attic")
        ctl.signal("peer_dead", "h2")
        assert backup.repair_now_calls == 2
        ctl.signal("alert", "nocdn-x", service="nocdn")
        assert backup.repair_now_calls == 2  # wrong service: no-op

    def test_migrate_fires_below_availability_threshold(self):
        sim, ctl = make_controller()
        backup = FakeBackup()
        ctl.add_rule(attic_migrate_rule(backup, availability_threshold=0.75,
                                        window=10.0))
        # h2 down for 4 of the trailing 10 seconds -> availability 0.6.
        ctl.signal("peer_dead", "h2")
        sim.run_until(4.0)
        produced = ctl.signal("peer_alive", "h2")
        executed = [d for d in produced if d["outcome"] == "executed"]
        assert [d["target"] for d in executed] == ["h2"]
        assert executed[0]["files"] == 2
        assert backup.evacuated == ["h2"]

    def test_migrate_spares_mostly_available_peer(self):
        sim, ctl = make_controller()
        backup = FakeBackup()
        ctl.add_rule(attic_migrate_rule(backup, availability_threshold=0.75,
                                        window=100.0))
        sim.run_until(50.0)
        ctl.signal("peer_dead", "h2")
        sim.run_until(52.0)  # 2% downtime
        ctl.signal("peer_alive", "h2")
        assert backup.evacuated == []

    def test_migrate_ignores_strangers(self):
        sim, ctl = make_controller()
        backup = FakeBackup(friends=("h1",))
        ctl.add_rule(attic_migrate_rule(backup, window=1.0))
        ctl.signal("peer_dead", "h9")
        ctl.signal("peer_alive", "h9")
        assert backup.evacuated == []

    def test_probe_targets_implicated_friends_only(self):
        sim, ctl = make_controller()
        backup = FakeBackup(friends=("h1", "h2"))
        loader = FakeLoader()
        ctl.add_rule(attic_probe_rule(backup, loader))
        # h2 is a friend and failing; pX is failing but not a friend;
        # h1 is a friend but clean.
        loader.peer_failure_counts = {"h2": 3, "pX": 5}
        ctl.signal("alert", "nocdn-x", service="nocdn")
        assert backup.probed == ["h2"]

    def test_probe_skips_already_dead_friends(self):
        sim, ctl = make_controller()
        backup = FakeBackup(friends=("h2",))
        backup.monitor.alive["h2"] = False
        loader = FakeLoader()
        loader.peer_failure_counts = {"h2": 3}
        ctl.add_rule(attic_probe_rule(backup, loader))
        ctl.signal("alert", "nocdn-x", service="nocdn")
        assert backup.probed == []


class TestDcolRotate:
    class FakeTransfer:
        def __init__(self, label, done=False, handshake_done=True):
            self.label = label
            self.done = done
            self.handshake_done = handshake_done
            self.rotations = []

        def rotate_worst(self, candidates, mechanism="vpn"):
            self.rotations.append((tuple(candidates), mechanism))
            return {"withdrawn": "w-old", "engaged": "w-new"}

    class FakeManager:
        def candidate_waypoints(self):
            return ["w1", "w2"]

    def test_rotates_live_transfers_only(self):
        sim, ctl = make_controller()
        live = self.FakeTransfer("t-live")
        finished = self.FakeTransfer("t-done", done=True)
        pending = self.FakeTransfer("t-hs", handshake_done=False)
        transfers = [live, finished, pending]
        ctl.add_rule(dcol_rotate_rule(self.FakeManager(),
                                      lambda: transfers))
        produced = ctl.signal("alert", "dcol-x", service="dcol")
        executed = [d for d in produced if d["outcome"] == "executed"]
        assert [d["target"] for d in executed] == ["t-live"]
        assert executed[0]["withdrawn"] == "w-old"
        assert executed[0]["engaged"] == "w-new"
        assert live.rotations == [(("w1", "w2"), "vpn")]
        assert finished.rotations == []
        assert pending.rotations == []


class TestReregister:
    def test_republishes_record_and_invalidates_cache(self):
        sim, ctl = make_controller()
        zone = Zone("home")
        old = Address.parse("198.18.0.1")
        new = Address.parse("198.18.0.2")
        zone.add("h3.home", old, ttl=300.0)
        resolver = StubResolver(sim)
        resolver.add_zone(zone)
        assert resolver.resolve("h3.home") == old
        zone.remove("h3.home")  # the crash lost the registration
        ctl.add_rule(reregister_rule(zone, resolvers=[resolver], ttl=30.0))
        produced = ctl.signal("hpop_restart", "h3", fqdn="h3.home",
                              address=new)
        assert [d["outcome"] for d in produced] == ["executed"]
        assert produced[0]["fqdn"] == "h3.home"
        assert produced[0]["address"] == str(new)
        # The stale cached answer is gone; resolution sees the new address.
        assert resolver.resolve("h3.home") == new
        assert zone.resolve("h3.home").ttl == 30.0
        # zone add + one resolver invalidation
        assert ctl.metrics.counters["messages_sent"].value == 2

    def test_missing_attrs_proposes_nothing(self):
        sim, ctl = make_controller()
        zone = Zone("home")
        ctl.add_rule(reregister_rule(zone))
        produced = ctl.signal("hpop_restart", "h3")
        assert [d for d in produced if d["outcome"] == "executed"] == []
