"""DNS zone and resolver tests."""

import pytest

from repro.naming.dns import DnsError, RequestRoutingZone, StubResolver, Zone
from repro.net.address import Address
from repro.sim.engine import Simulator


class TestZone:
    def test_static_resolution(self):
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"))
        record = zone.resolve("www.example.com")
        assert record.address == Address.parse("198.18.0.1")
        assert zone.queries_served == 1

    def test_nxdomain(self):
        zone = Zone("example.com")
        with pytest.raises(DnsError):
            zone.resolve("nope.example.com")

    def test_remove(self):
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"))
        zone.remove("www.example.com")
        with pytest.raises(DnsError):
            zone.resolve("www.example.com")


class TestRequestRouting:
    def test_selector_answers_per_client(self):
        answers = {"alice": Address.parse("10.0.0.1"),
                   "bob": Address.parse("10.0.0.2")}

        class FakeClient:
            def __init__(self, name):
                self.name = name

        zone = RequestRoutingZone(
            "cdn.example",
            lambda name, client: answers.get(client.name) if client else None)
        assert zone.resolve("www.cdn.example",
                            FakeClient("alice")).address == answers["alice"]
        assert zone.resolve("www.cdn.example",
                            FakeClient("bob")).address == answers["bob"]

    def test_short_ttl(self):
        zone = RequestRoutingZone("cdn.example",
                                  lambda n, c: Address.parse("10.0.0.1"))
        assert zone.resolve("x.cdn.example").ttl == 20.0

    def test_fallback_to_static(self):
        zone = RequestRoutingZone("cdn.example", lambda n, c: None)
        zone.add("www.cdn.example", Address.parse("10.9.9.9"))
        assert zone.resolve("www.cdn.example").address == Address.parse("10.9.9.9")
        with pytest.raises(DnsError):
            zone.resolve("other.cdn.example")


class TestStubResolver:
    def make(self, ttl=100.0):
        sim = Simulator()
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"), ttl=ttl)
        resolver = StubResolver(sim)
        resolver.add_zone(zone)
        return sim, zone, resolver

    def test_caches_within_ttl(self):
        sim, zone, resolver = self.make()
        resolver.resolve("www.example.com")
        resolver.resolve("www.example.com")
        assert zone.queries_served == 1
        assert resolver.cache_hits == 1

    def test_ttl_expiry_requeries(self):
        sim, zone, resolver = self.make(ttl=10.0)
        resolver.resolve("www.example.com")
        sim.run_until(11.0)
        resolver.resolve("www.example.com")
        assert zone.queries_served == 2

    def test_zone_matching_by_suffix(self):
        sim, _zone, resolver = self.make()
        with pytest.raises(DnsError):
            resolver.resolve("www.other.org")

    def test_flush(self):
        sim, zone, resolver = self.make()
        resolver.resolve("www.example.com")
        resolver.flush()
        resolver.resolve("www.example.com")
        assert zone.queries_served == 2

    def test_cdn_zone_integration(self):
        """TraditionalCdn.dns_zone steers a resolver to the nearest edge."""
        from repro.cdn.baselines import TraditionalCdn
        from tests.nocdn.harness import NoCdnWorld

        world = NoCdnWorld(num_peers=0)
        cdn = TraditionalCdn(world.provider, world.city.network)
        edge = cdn.deploy_edge(world.city.server_sites["edge"].servers[0])
        zone = cdn.dns_zone()
        resolver = StubResolver(world.sim, client=world.client_device)
        resolver.add_zone(zone)
        assert resolver.resolve("www.news.example") == edge.host.address
