"""DNS zone and resolver tests."""

import pytest

from repro.naming.dns import DnsError, RequestRoutingZone, StubResolver, Zone
from repro.net.address import Address
from repro.sim.engine import Simulator


class TestZone:
    def test_static_resolution(self):
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"))
        record = zone.resolve("www.example.com")
        assert record.address == Address.parse("198.18.0.1")
        assert zone.queries_served == 1

    def test_nxdomain(self):
        zone = Zone("example.com")
        with pytest.raises(DnsError):
            zone.resolve("nope.example.com")

    def test_remove(self):
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"))
        zone.remove("www.example.com")
        with pytest.raises(DnsError):
            zone.resolve("www.example.com")


class TestRequestRouting:
    def test_selector_answers_per_client(self):
        answers = {"alice": Address.parse("10.0.0.1"),
                   "bob": Address.parse("10.0.0.2")}

        class FakeClient:
            def __init__(self, name):
                self.name = name

        zone = RequestRoutingZone(
            "cdn.example",
            lambda name, client: answers.get(client.name) if client else None)
        assert zone.resolve("www.cdn.example",
                            FakeClient("alice")).address == answers["alice"]
        assert zone.resolve("www.cdn.example",
                            FakeClient("bob")).address == answers["bob"]

    def test_short_ttl(self):
        zone = RequestRoutingZone("cdn.example",
                                  lambda n, c: Address.parse("10.0.0.1"))
        assert zone.resolve("x.cdn.example").ttl == 20.0

    def test_fallback_to_static(self):
        zone = RequestRoutingZone("cdn.example", lambda n, c: None)
        zone.add("www.cdn.example", Address.parse("10.9.9.9"))
        assert zone.resolve("www.cdn.example").address == Address.parse("10.9.9.9")
        with pytest.raises(DnsError):
            zone.resolve("other.cdn.example")


class TestStubResolver:
    def make(self, ttl=100.0):
        sim = Simulator()
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"), ttl=ttl)
        resolver = StubResolver(sim)
        resolver.add_zone(zone)
        return sim, zone, resolver

    def test_caches_within_ttl(self):
        sim, zone, resolver = self.make()
        resolver.resolve("www.example.com")
        resolver.resolve("www.example.com")
        assert zone.queries_served == 1
        assert resolver.cache_hits == 1

    def test_ttl_expiry_requeries(self):
        sim, zone, resolver = self.make(ttl=10.0)
        resolver.resolve("www.example.com")
        sim.run_until(11.0)
        resolver.resolve("www.example.com")
        assert zone.queries_served == 2

    def test_zone_matching_by_suffix(self):
        sim, _zone, resolver = self.make()
        with pytest.raises(DnsError):
            resolver.resolve("www.other.org")

    def test_flush(self):
        sim, zone, resolver = self.make()
        resolver.resolve("www.example.com")
        resolver.flush()
        resolver.resolve("www.example.com")
        assert zone.queries_served == 2

    def test_cdn_zone_integration(self):
        """TraditionalCdn.dns_zone steers a resolver to the nearest edge."""
        from repro.cdn.baselines import TraditionalCdn
        from tests.nocdn.harness import NoCdnWorld

        world = NoCdnWorld(num_peers=0)
        cdn = TraditionalCdn(world.provider, world.city.network)
        edge = cdn.deploy_edge(world.city.server_sites["edge"].servers[0])
        zone = cdn.dns_zone()
        resolver = StubResolver(world.sim, client=world.client_device)
        resolver.add_zone(zone)
        assert resolver.resolve("www.news.example") == edge.host.address


class TestInvalidateAndPrune:
    def make(self, ttl=100.0):
        sim = Simulator()
        zone = Zone("example.com")
        zone.add("www.example.com", Address.parse("198.18.0.1"), ttl=ttl)
        zone.add("mail.example.com", Address.parse("198.18.0.2"), ttl=ttl)
        resolver = StubResolver(sim)
        resolver.add_zone(zone)
        return sim, zone, resolver

    def test_invalidate_then_resolve_sees_new_address(self):
        """A re-registered address must not wait out the stale TTL."""
        sim, zone, resolver = self.make(ttl=300.0)
        old = resolver.resolve("www.example.com")
        zone.add("www.example.com", Address.parse("198.18.0.9"), ttl=300.0)
        # Without invalidation the stale answer survives...
        assert resolver.resolve("www.example.com") == old
        # ...invalidation forces a fresh zone query.
        assert resolver.invalidate("www.example.com") is True
        assert resolver.resolve("www.example.com") \
            == Address.parse("198.18.0.9")
        assert zone.queries_served == 2

    def test_invalidate_is_per_name(self):
        sim, zone, resolver = self.make()
        resolver.resolve("www.example.com")
        resolver.resolve("mail.example.com")
        resolver.invalidate("www.example.com")
        resolver.resolve("mail.example.com")  # still cached
        assert resolver.cache_hits == 1
        assert zone.queries_served == 2

    def test_invalidate_unknown_name_is_noop(self):
        _sim, _zone, resolver = self.make()
        assert resolver.invalidate("nope.example.com") is False

    def test_ttl_boundary_exact_expiry_is_a_miss(self):
        """now == expires_at is expired: a TTL of 10 means *less than*
        10 seconds of reuse, matching the zone's authority window."""
        sim, zone, resolver = self.make(ttl=10.0)
        resolver.resolve("www.example.com")
        sim.run_until(10.0)
        assert resolver.cached_names() == []
        resolver.resolve("www.example.com")
        assert zone.queries_served == 2
        assert resolver.cache_hits == 0

    def test_ttl_boundary_just_before_expiry_is_a_hit(self):
        sim, zone, resolver = self.make(ttl=10.0)
        resolver.resolve("www.example.com")
        sim.run_until(9.999)
        resolver.resolve("www.example.com")
        assert zone.queries_served == 1
        assert resolver.cache_hits == 1

    def test_resolve_drops_expired_entry_even_on_error(self):
        sim, zone, resolver = self.make(ttl=5.0)
        resolver.resolve("www.example.com")
        zone.remove("www.example.com")
        sim.run_until(6.0)
        with pytest.raises(DnsError):
            resolver.resolve("www.example.com")
        # The dead entry did not linger in the cache.
        assert "www.example.com" not in resolver._cache

    def test_prune_evicts_only_expired(self):
        sim, zone, resolver = self.make(ttl=5.0)
        resolver.resolve("www.example.com")
        sim.run_until(3.0)
        zone.add("late.example.com", Address.parse("198.18.0.3"), ttl=5.0)
        resolver.resolve("late.example.com")
        sim.run_until(6.0)  # www expired at 5.0; late lives until 8.0
        assert resolver.prune() == 1
        assert resolver.cached_names() == ["late.example.com"]
        resolver.resolve("late.example.com")
        assert resolver.cache_hits == 1
