"""Regression tests for event-loop accounting bugs.

Three bugs shipped together and are pinned here:

1. ``Event.cancel()`` on an already-fired event double-decremented
   ``_strong_pending`` (fire decremented once, the late cancel again),
   driving the counter negative and making ``run()`` stop before
   quiescence.
2. ``Process.every`` scheduled the *first* tick with no jitter even
   when a jitter stream was configured, synchronizing every periodic
   actor's first firing.
3. ``call_soon`` silently dropped ``weak``, scheduling strong-only.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Process, Simulator


class TestCancelAfterFire:
    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert event.fired
        assert not event.cancelled
        event.cancel()  # must not corrupt accounting
        assert event.fired
        assert not event.cancelled
        assert sim._strong_pending == 0

    def test_late_cancel_does_not_end_run_early(self):
        """The timeout idiom: a response arrives, and cleanup cancels
        the (already fired or now-moot) timeout afterwards. Before the
        fix the double decrement made run() return before later strong
        events fired."""
        sim = Simulator()
        fired = []
        timeout = sim.schedule(1.0, lambda: fired.append("timeout"))
        sim.schedule(2.0, timeout.cancel, label="late-cancel")
        sim.schedule(3.0, lambda: fired.append("must-still-fire"))
        sim.run()
        assert fired == ["timeout", "must-still-fire"]
        assert sim.now == 3.0

    def test_many_late_cancels_keep_counter_sane(self):
        sim = Simulator()
        events = [sim.schedule(0.1 * (i + 1), lambda: None)
                  for i in range(10)]

        def cancel_all():
            for event in events:
                event.cancel()

        sim.schedule(5.0, cancel_all)
        sentinel = []
        sim.schedule(9.0, lambda: sentinel.append(True))
        sim.run()
        assert sentinel == [True]
        assert sim._strong_pending == 0

    def test_cancel_then_fire_time_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        event.cancel()  # idempotent on cancelled too
        sim.schedule(2.0, lambda: fired.append("y"))
        sim.run()
        assert fired == ["y"]
        assert event.cancelled and not event.fired


class TestFirstTickJitter:
    def test_first_tick_is_jittered(self):
        """Many periodic actors sharing an interval must not all take
        their first tick on the same timestamp."""
        sim = Simulator(seed=5)
        first_ticks = {}
        for i in range(50):
            proc = Process(sim, f"actor{i}")
            proc.every(10.0, lambda i=i: first_ticks.setdefault(i, sim.now),
                       jitter_stream="stampede")
        sim.schedule(12.0, lambda: None)  # strong work past the first round
        sim.run()
        times = sorted(set(first_ticks.values()))
        assert len(first_ticks) == 50
        # Pre-fix every first tick landed exactly at t=10.0.
        assert len(times) > 40
        assert all(9.0 <= t <= 11.0 for t in times)

    def test_unjittered_first_tick_is_exact(self):
        sim = Simulator()
        ticks = []
        Process(sim, "plain").every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(11.0, lambda: None)
        sim.run()
        assert ticks == [10.0]


class TestCallSoonWeak:
    def test_call_soon_weak_does_not_pin_run(self):
        sim = Simulator()
        fired = []

        def finish():
            # Deferred daemon work: must not extend quiescence.
            sim.call_soon(lambda: fired.append("weak"), weak=True)

        sim.schedule(1.0, finish)
        sim.run()
        assert fired == []  # weak backlog left unfired at quiescence

    def test_call_soon_default_is_strong(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: fired.append("s")))
        sim.run()
        assert fired == ["s"]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["schedule", "cancel", "run_next"]),
                          st.floats(min_value=0.0, max_value=10.0,
                                    allow_nan=False),
                          st.booleans()),
                max_size=60))
def test_property_strong_pending_matches_live_strong_events(ops):
    """``_strong_pending`` must always equal the number of scheduled,
    uncancelled, unfired strong events — under any interleaving of
    scheduling, cancellation (including repeats and post-fire cancels),
    and event delivery."""
    sim = Simulator()
    events = []

    def live_strong_count():
        return sum(1 for e in events
                   if not e.weak and not e.cancelled and not e.fired)

    for action, delay, weak in ops:
        if action == "schedule":
            events.append(sim.schedule(delay, lambda: None, weak=weak))
        elif action == "cancel" and events:
            # Deterministic pick: bounce across the list via the delay.
            events[int(delay * len(events)) % len(events)].cancel()
        elif action == "run_next":
            sim.step()
        assert sim._strong_pending == live_strong_count()
        assert sim._strong_pending >= 0
    sim.run()
    assert sim._strong_pending == live_strong_count() == 0
