"""Discrete-event engine tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Process, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunUntil:
    def test_run_until_stops_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(1.5)
        assert fired == [1]
        assert sim.now == 1.5
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_backwards_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def respawn():
            sim.schedule(0.001, respawn)

        sim.schedule(0.001, respawn)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestIntrospection:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 3

    def test_trace_hook_sees_events(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda e: seen.append(e.label))
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert seen == ["tick"]

    def test_simulator_rng_deterministic(self, seeded_sim):
        a = seeded_sim(5).rng.stream("x").random()
        b = seeded_sim(5).rng.stream("x").random()
        assert a == b


class TestProcess:
    def test_periodic_fires_until_stop(self):
        sim = Simulator()
        proc = Process(sim, "ticker")
        ticks = []
        proc.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(3.5)
        proc.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert proc.stopped

    def test_invalid_interval(self):
        proc = Process(Simulator(), "p")
        with pytest.raises(SimulationError):
            proc.every(0, lambda: None)

    def test_jittered_periodic_still_fires(self, seeded_sim):
        sim = seeded_sim(3)
        proc = Process(sim, "jitter")
        ticks = []
        proc.every(1.0, lambda: ticks.append(sim.now), jitter_stream="jit")
        sim.run_until(10.0)
        assert 8 <= len(ticks) <= 12
        # Jitter means ticks are not exactly on integers.
        assert any(abs(t - round(t)) > 1e-9 for t in ticks)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100,
                          allow_nan=False), max_size=40))
def test_property_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
