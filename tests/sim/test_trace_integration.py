"""Simulator semantics interacting with tracing (weak events, cancel)."""

import pytest


@pytest.fixture
def traced_sim(seeded_sim):
    def make(seed=0, **kwargs):
        sim = seeded_sim(seed)
        return sim, sim.enable_tracing(**kwargs)

    return make


class TestCancellation:
    def test_cancelled_traced_event_emits_no_span(self, traced_sim):
        sim, tracer = traced_sim()
        with tracer.trace("root"):
            doomed = sim.schedule(1.0, lambda: None, label="doomed")
            sim.schedule(2.0, lambda: None, label="survivor")
        doomed.cancel()
        sim.run()
        marks = [s.name for s in tracer.spans() if s.kind == "event"]
        assert "doomed" not in marks
        assert "survivor" in marks

    def test_cancel_inside_traced_callback(self, traced_sim):
        sim, tracer = traced_sim()
        later = sim.schedule(5.0, lambda: None, label="later")
        sim.schedule(1.0, later.cancel, label="canceller")
        sim.run()
        marks = [s.name for s in tracer.spans() if s.kind == "event"]
        assert marks == ["canceller"]
        assert sim.pending_events == 0

    def test_cancelled_event_keeps_no_context(self, traced_sim):
        """A cancelled event's captured ctx must never become current."""
        sim, tracer = traced_sim()
        seen = []
        with tracer.trace("ctx-holder"):
            doomed = sim.schedule(1.0, lambda: None, label="doomed")
        doomed.cancel()
        sim.schedule(2.0, lambda: seen.append(tracer.current.parent_id),
                     label="unparented")
        sim.run()
        assert seen == [None]


class TestWeakEvents:
    def test_run_quiesces_with_only_weak_spans_pending(self, traced_sim):
        """Traced weak (daemon) events do not keep run() alive."""
        sim, tracer = traced_sim()
        fired = []

        def heartbeat():
            fired.append(sim.now)
            with tracer.trace("heartbeat.work"):
                pass
            sim.schedule(10.0, heartbeat, label="heartbeat", weak=True)

        with tracer.trace("boot"):
            sim.schedule(10.0, heartbeat, label="heartbeat", weak=True)
            sim.schedule(25.0, lambda: None, label="strong-work")
        sim.run()
        # Quiesced after the strong event; one weak heartbeat remains queued.
        assert fired == [10.0, 20.0]
        assert sim.pending_events == 1
        # The weak re-schedule still has a traced context waiting, but that
        # alone must not have kept the run going.
        assert sim.now == 25.0

    def test_weak_event_marks_inherit_context(self, traced_sim):
        sim, tracer = traced_sim()
        with tracer.trace("root") as root:
            sim.schedule(1.0, lambda: None, label="maint", weak=True)
        sim.schedule(2.0, lambda: None, label="strong")
        sim.run()
        marks = {s.name: s for s in tracer.spans() if s.kind == "event"}
        assert marks["maint"].parent_id == root.span_id


class TestDeterminismWithTracing:
    def test_tracing_does_not_change_event_order(self, seeded_sim):
        def run(traced):
            sim = seeded_sim(3)
            if traced:
                sim.enable_tracing()
            order = []
            for i in range(5):
                sim.schedule(1.0, lambda i=i: order.append(i), label=f"e{i}")
            sim.run()
            return order, sim.now

        assert run(False) == run(True)

    def test_callback_exception_still_ends_event(self, traced_sim):
        sim, tracer = traced_sim()
        sim.schedule(1.0, lambda: 1 / 0, label="boom")
        try:
            sim.run()
        except ZeroDivisionError:
            pass
        assert tracer.current is None
        assert tracer.events_traced == 1
