"""Weak (daemon) event semantics: run() quiescence rules."""

import pytest

from repro.sim.engine import Process, Simulator


class TestWeakEvents:
    def test_run_ignores_pure_weak_backlog(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("weak"), weak=True)
        sim.run()
        assert fired == []
        assert sim.now == 0.0

    def test_weak_fires_if_strong_work_extends_past_it(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("weak"), weak=True)
        sim.schedule(2.0, lambda: fired.append("strong"))
        sim.run()
        assert fired == ["weak", "strong"]

    def test_weak_after_last_strong_does_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("strong"))
        sim.schedule(2.0, lambda: fired.append("weak"), weak=True)
        sim.run()
        assert fired == ["strong"]

    def test_run_until_fires_weak_events(self):
        """Time-bounded runs execute everything in the window."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("weak"), weak=True)
        sim.run_until(5.0)
        assert fired == ["weak"]

    def test_weak_backlog_resumes_with_new_strong_work(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("weak"), weak=True)
        sim.run()
        assert fired == []
        sim.schedule(3.0, lambda: fired.append("strong"))
        sim.run()
        assert fired == ["weak", "strong"]

    def test_cancelled_strong_event_reaches_quiescence(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        sim.schedule(0.5, lambda: None)
        assert sim.run() == 1  # only the live strong event fires

    def test_cancel_weak_event_is_safe(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None, weak=True)
        event.cancel()
        event.cancel()  # idempotent
        sim.schedule(2.0, lambda: None)
        sim.run()

    def test_periodic_process_is_weak(self):
        """A Process.every loop never keeps run() from returning —
        the regression that once made sim.run() spin forever."""
        sim = Simulator()
        proc = Process(sim, "maintenance")
        ticks = []
        proc.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(35.0, lambda: None)  # strong work ends at t=35
        fired = sim.run()
        assert sim.now == 35.0
        assert ticks == [10.0, 20.0, 30.0]
        assert fired < 10  # terminated promptly

    def test_strong_event_scheduled_by_weak_event_extends_run(self):
        sim = Simulator()
        fired = []

        def weak_callback():
            fired.append("weak")
            sim.schedule(1.0, lambda: fired.append("spawned-strong"))

        sim.schedule(1.0, weak_callback, weak=True)
        sim.schedule(2.0, lambda: fired.append("strong"))
        sim.run()
        assert fired == ["weak", "strong", "spawned-strong"]
