"""Subscription and personal-target tests for Internet@home."""

import pytest

from repro.http.content import ContentCatalog, WebObject
from repro.iah.service import CoopGroup

from tests.iah.test_service import build, visit_and_learn


def add_personal_objects(site):
    site.catalog.add_object(WebObject("private/feed2.json", 5_000))


class TestSubscriptions:
    def test_subscription_gathered_every_round(self):
        sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        svc.vault.store(site.name, "ann", "pw")
        svc.subscribe(site.name, "private/feed.json")
        svc.gather()
        sim.run()
        assert svc.cache.contains("news.example|private/feed.json")

    def test_subscribe_is_idempotent(self):
        _sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        svc.subscribe(site.name, "quote/AAPL")
        svc.subscribe(site.name, "quote/AAPL")
        assert svc.subscriptions == [(site.name, "quote/AAPL")]

    def test_subscription_without_credentials_not_cached(self):
        sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        svc.subscribe(site.name, "private/feed.json")  # no vault entry
        svc.gather()
        sim.run()
        assert not svc.cache.contains("news.example|private/feed.json")

    def test_public_subscription_needs_no_credentials(self):
        sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        svc.subscribe(site.name, "quote/AAPL")
        svc.gather()
        sim.run()
        assert svc.cache.contains("news.example|quote/AAPL")


class TestPersonalTargetsBypassCoop:
    def test_subscription_not_delegated_to_neighbors(self):
        """Personal feeds are gathered by the owner's HPoP even when the
        rendezvous hash would assign them elsewhere."""
        sim, _city, site, services, _hpops = build(num_homes=3)
        group = CoopGroup()
        for svc in services:
            group.join(svc)
        owner = services[0]
        owner.vault.store(site.name, "ann", "pw")
        owner.subscribe(site.name, "private/feed.json")
        for svc in services:
            svc.gather()
        sim.run()
        # Only the owner holds it, regardless of hash assignment.
        assert owner.cache.contains("news.example|private/feed.json")
        for other in services[1:]:
            assert not other.cache.contains("news.example|private/feed.json")

    def test_page_objects_still_partitioned(self):
        sim, _city, site, services, _hpops = build(num_homes=3)
        group = CoopGroup()
        for svc in services:
            group.join(svc)
            visit_and_learn(svc, site, ["/page0"])
        services[0].subscribe(site.name, "quote/AAPL")
        for svc in services:
            svc.gather()
        sim.run()
        page_fetches = sum(s.stats.full_fetches for s in services)
        # 4 page objects fetched once each + 1 personal subscription.
        assert page_fetches == 5

    def test_personal_targets_listing(self):
        _sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        svc.subscribe(site.name, "quote/AAPL")
        assert (site.name, "quote/AAPL") in svc.personal_targets()
        # Regular page history does not appear in personal targets.
        visit_and_learn(svc, site, ["/page0"])
        assert all(not url.startswith("__page__")
                   for _s, url in svc.personal_targets())
