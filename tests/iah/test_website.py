"""Direct tests for the Website origin (caching metadata, deep web)."""

import pytest

from repro.http.client import HttpClient
from repro.http.content import ContentCatalog, WebObject, WebPage
from repro.http.messages import HttpRequest
from repro.iah.web import Website
from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=35)
    bell = build_dumbbell(sim)
    catalog = ContentCatalog()
    catalog.add_page(WebPage("/home", WebObject("home.html", 10_000),
                             embedded=(WebObject("pic.jpg", 40_000),)))
    catalog.add_object(WebObject("private/inbox", 5_000))
    site = Website("example.org", bell.server, bell.network, catalog,
                   object_ttl=120.0, credentials={"ann": "pw"})
    client = HttpClient(bell.client, bell.network)
    return sim, bell, site, client


def fetch(sim, bell, client, path, headers=None):
    results = []
    client.request(bell.server,
                   HttpRequest("GET", path, host="example.org",
                               headers=headers or {}),
                   lambda resp, stats: results.append(resp))
    sim.run()
    assert len(results) == 1
    return results[0]


class TestObjects:
    def test_serves_with_cache_metadata(self):
        sim, bell, site, client = build()
        resp = fetch(sim, bell, client, "/objects/home.html")
        assert resp.ok
        assert resp.max_age == 120.0
        assert resp.etag == '"home.html-v1"'
        assert site.requests_served == 1

    def test_conditional_get_304(self):
        sim, bell, site, client = build()
        resp = fetch(sim, bell, client, "/objects/home.html")
        resp2 = fetch(sim, bell, client, "/objects/home.html",
                      headers={"If-None-Match": resp.etag})
        assert resp2.status == 304
        assert site.validation_hits == 1

    def test_update_invalidates_etag(self):
        sim, bell, site, client = build()
        resp = fetch(sim, bell, client, "/objects/home.html")
        site.update_object("home.html")
        resp2 = fetch(sim, bell, client, "/objects/home.html",
                      headers={"If-None-Match": resp.etag})
        assert resp2.status == 200
        assert resp2.body.version == 2

    def test_missing_object_404(self):
        sim, bell, _site, client = build()
        assert fetch(sim, bell, client, "/objects/ghost").status == 404


class TestDeepWeb:
    def test_deep_object_requires_credentials(self):
        sim, bell, site, client = build()
        assert site.is_deep("private/inbox")
        assert not site.is_deep("home.html")
        resp = fetch(sim, bell, client, "/objects/private/inbox")
        assert resp.status == 401

    def test_valid_credentials_admit(self):
        sim, bell, _site, client = build()
        resp = fetch(sim, bell, client, "/objects/private/inbox",
                     headers={"Authorization": "Basic ann:pw"})
        assert resp.ok

    def test_bad_credentials_rejected(self):
        sim, bell, _site, client = build()
        for header in ("Basic ann:wrong", "Basic malformed", "Bearer tok"):
            resp = fetch(sim, bell, client, "/objects/private/inbox",
                         headers={"Authorization": header})
            assert resp.status == 401


class TestPageMeta:
    def test_page_meta_served(self):
        sim, bell, _site, client = build()
        resp = fetch(sim, bell, client, "/pages/home")
        assert resp.ok
        assert isinstance(resp.body, WebPage)
        assert resp.body.object_count == 2

    def test_missing_page_404(self):
        sim, bell, _site, client = build()
        assert fetch(sim, bell, client, "/pages/nope").status == 404
