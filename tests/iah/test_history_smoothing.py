"""History/profile, demand-smoother, vault, and trigger tests."""

import pytest

from repro.iah.deepweb import CredentialVault, PropertyTrigger
from repro.iah.history import BrowsingHistory, InterestProfile
from repro.iah.smoothing import DemandSmoother
from repro.sim.engine import Simulator


class TestHistoryProfile:
    def test_counts_and_last_visit(self):
        history = BrowsingHistory()
        history.record(1.0, "s", "/a")
        history.record(2.0, "s", "/a")
        history.record(3.0, "s", "/b")
        assert history.visit_count == 3
        assert history.count_for("s", "/a") == 2
        assert history.last_visit("s", "/a") == 2.0
        assert history.count_for("s", "/zzz") == 0

    def test_profile_ranks_by_frequency(self):
        history = BrowsingHistory()
        for _ in range(5):
            history.record(10.0, "s", "/hot")
        history.record(10.0, "s", "/cold")
        profile = InterestProfile(history)
        assert profile.ranked(now=10.0)[0] == ("s", "/hot")

    def test_recency_decay(self):
        history = BrowsingHistory()
        for _ in range(3):
            history.record(0.0, "s", "/old")
        history.record(100 * 86400.0, "s", "/new")
        history.record(100 * 86400.0, "s", "/new")
        profile = InterestProfile(history, half_life=7 * 86400.0)
        # Three visits 100 days ago lose to two visits today.
        assert profile.ranked(now=100 * 86400.0)[0] == ("s", "/new")

    def test_target_set_scales_with_aggressiveness(self):
        history = BrowsingHistory()
        for i in range(10):
            history.record(float(i), "s", f"/p{i}")
        profile = InterestProfile(history)
        assert profile.target_set(20.0, 0.0) == []
        assert len(profile.target_set(20.0, 0.5)) == 5
        assert len(profile.target_set(20.0, 1.0)) == 10

    def test_target_set_keeps_at_least_one(self):
        history = BrowsingHistory()
        history.record(0.0, "s", "/only")
        profile = InterestProfile(history)
        assert profile.target_set(1.0, 0.01) == [("s", "/only")]

    def test_invalid_parameters(self):
        history = BrowsingHistory()
        with pytest.raises(ValueError):
            InterestProfile(history, half_life=0)
        profile = InterestProfile(history)
        with pytest.raises(ValueError):
            profile.target_set(0.0, 1.5)


class TestDemandSmoother:
    def test_jobs_release_at_rate(self):
        sim = Simulator()
        smoother = DemandSmoother(sim, rate_bytes_per_sec=1000,
                                  burst_bytes=1000)
        released = []
        for i in range(3):
            smoother.submit(1000, lambda i=i: released.append((i, sim.now)))
        sim.run_until(10.0)
        assert len(released) == 3
        # First job immediate (full bucket), then one per second.
        assert released[0][1] == pytest.approx(0.0)
        assert released[1][1] == pytest.approx(1.0)
        assert released[2][1] == pytest.approx(2.0)

    def test_offpeak_window_defers(self):
        sim = Simulator()
        # Window: seconds [100, 200) of each day.
        smoother = DemandSmoother(sim, rate_bytes_per_sec=1e6,
                                  offpeak_windows=[(100.0, 200.0)])
        released = []
        smoother.submit(10, lambda: released.append(sim.now))
        sim.run_until(50.0)
        assert released == []
        sim.run_until(150.0)
        assert len(released) == 1
        assert released[0] == pytest.approx(100.0)

    def test_oversized_job_released_at_capacity(self):
        sim = Simulator()
        smoother = DemandSmoother(sim, rate_bytes_per_sec=100,
                                  burst_bytes=1000)
        released = []
        smoother.submit(50_000, lambda: released.append(sim.now))
        sim.run_until(20.0)
        assert len(released) == 1  # does not starve

    def test_queue_inspection(self):
        sim = Simulator()
        smoother = DemandSmoother(sim, rate_bytes_per_sec=1,
                                  burst_bytes=1)
        smoother.submit(1, lambda: None)
        smoother.submit(1, lambda: None)
        assert smoother.queued_jobs == 2
        sim.run_until(5.0)
        assert smoother.jobs_released == 2

    def test_negative_size_rejected(self):
        smoother = DemandSmoother(Simulator(), 10)
        with pytest.raises(ValueError):
            smoother.submit(-1, lambda: None)


class TestCredentialVault:
    def test_store_and_headers(self):
        vault = CredentialVault()
        vault.store("social.example", "ann", "pw")
        headers = vault.auth_headers("social.example")
        assert headers == {"Authorization": "Basic ann:pw"}
        assert vault.auth_headers("other") == {}
        assert vault.has("social.example")

    def test_forget(self):
        vault = CredentialVault()
        vault.store("s", "u", "p")
        vault.forget("s")
        assert not vault.has("s")
        assert vault.sites() == []


class TestPropertyTrigger:
    def make_attic(self):
        """A minimal stand-in with a DAV tree (the real service works too)."""
        from repro.webdav.server import WebDavServer

        class FakeAttic:
            dav = None

        from repro.webdav.resources import ResourceTree

        class FakeDav:
            tree = ResourceTree()

        attic = FakeAttic()
        attic.dav = FakeDav()
        return attic

    def test_derives_targets_from_properties(self):
        attic = self.make_attic()
        attic.dav.tree.put("/taxes-2025.pdf", size=100)
        attic.dav.tree.lookup("/taxes-2025.pdf").properties["tickers"] = \
            "AAPL, MSFT"
        trigger = PropertyTrigger("tickers", "finance.example", "quote/{}")
        targets = trigger.derive(attic)
        assert ("finance.example", "quote/AAPL") in targets
        assert ("finance.example", "quote/MSFT") in targets

    def test_deduplicates_symbols(self):
        attic = self.make_attic()
        attic.dav.tree.put("/a", size=1)
        attic.dav.tree.put("/b", size=1)
        attic.dav.tree.lookup("/a").properties["tickers"] = "AAPL"
        attic.dav.tree.lookup("/b").properties["tickers"] = "AAPL"
        trigger = PropertyTrigger("tickers", "fin", "quote/{}")
        assert trigger.derive(attic) == [("fin", "quote/AAPL")]

    def test_no_attic_no_targets(self):
        trigger = PropertyTrigger("tickers", "fin", "quote/{}")
        assert trigger.derive(None) == []

    def test_bad_template_rejected(self):
        with pytest.raises(ValueError):
            PropertyTrigger("p", "s", "no-placeholder")
