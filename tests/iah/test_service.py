"""Internet@home service end-to-end tests."""

import pytest

from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.http.content import ContentCatalog, WebObject, WebPage
from repro.iah.browser import HomeBrowser
from repro.iah.deepweb import PropertyTrigger
from repro.iah.service import CoopGroup, InternetAtHomeService
from repro.iah.smoothing import DemandSmoother
from repro.iah.web import Website
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def make_site_catalog(num_pages=3, objects_per_page=3, object_size=40_000):
    catalog = ContentCatalog()
    for p in range(num_pages):
        container = WebObject(f"page{p}.html", 15_000)
        embedded = tuple(WebObject(f"p{p}-obj{i}.bin", object_size)
                         for i in range(objects_per_page))
        catalog.add_page(WebPage(url=f"/page{p}", container=container,
                                 embedded=embedded))
    # Deep-web content.
    catalog.add_object(WebObject("private/feed.json", 8_000))
    catalog.add_object(WebObject("quote/AAPL", 2_000))
    catalog.add_object(WebObject("quote/MSFT", 2_000))
    return catalog


def build(num_homes=3, seed=16, with_attic=False, **svc_kwargs):
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=max(num_homes, 2),
                      server_sites={"web": 1})
    site = Website("news.example", city.server_sites["web"].servers[0],
                   city.network, make_site_catalog(),
                   credentials={"ann": "pw"})
    services, hpops = [], []
    for i in range(num_homes):
        home = city.neighborhoods[0].homes[i]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name=f"h{i}", users=[User("ann", "pw")]))
        if with_attic:
            hpop.install(DataAtticService())
        svc = hpop.install(InternetAtHomeService(gather_interval=0,
                                                 **svc_kwargs))
        svc.register_site(site)
        hpop.start()
        services.append(svc)
        hpops.append(hpop)
    return sim, city, site, services, hpops


def visit_and_learn(svc, site, urls):
    """Record visits and teach page structure (as browsing would)."""
    for url in urls:
        svc.record_visit(site.name, url)
        svc.learn_page(site.name, url, site.catalog.page(url))


class TestGathering:
    def test_gather_fills_cache(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=1.0)
        svc = services[0]
        visit_and_learn(svc, site, ["/page0", "/page1"])
        done = []
        svc.gather(lambda: done.append(sim.now))
        sim.run()
        assert done
        assert svc.stats.full_fetches == 8  # 2 pages x (1 container + 3 objs)
        assert svc.cache.contains("news.example|page0.html")
        assert svc.stats.upstream_bytes > 0

    def test_aggressiveness_limits_scope(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=0.3)
        svc = services[0]
        # page0 visited most; page1 and page2 once.
        visit_and_learn(svc, site, ["/page0", "/page0", "/page0",
                                    "/page1", "/page2"])
        svc.gather()
        sim.run()
        # Only the top ~1/3 of pages (page0) is gathered.
        assert svc.cache.contains("news.example|page0.html")
        assert not svc.cache.contains("news.example|page1.html")

    def test_second_gather_revalidates_not_refetches(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=1.0)
        svc = services[0]
        visit_and_learn(svc, site, ["/page0"])
        svc.gather()
        sim.run()
        fetched = svc.stats.full_fetches
        bytes_first = svc.stats.upstream_bytes
        # Let cached entries expire (site ttl = 300).
        sim.run_until(sim.now + 400)
        svc.gather()
        sim.run()
        assert svc.stats.full_fetches == fetched  # no re-downloads
        assert svc.stats.revalidated_unchanged == 4
        # Revalidation cost a fraction of the original transfer.
        assert svc.stats.upstream_bytes - bytes_first < bytes_first / 2

    def test_changed_object_refetched_on_revalidation(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=1.0)
        svc = services[0]
        visit_and_learn(svc, site, ["/page0"])
        svc.gather()
        sim.run()
        site.update_object("p0-obj0.bin")
        visit_and_learn(svc, site, ["/page0"])  # refresh meta knowledge
        sim.run_until(sim.now + 400)
        svc.gather()
        sim.run()
        _, entry = svc.cache.lookup("news.example|p0-obj0.bin", sim.now)
        assert entry.obj.version == 2

    def test_unknown_page_meta_fetched_then_gathered(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=1.0)
        svc = services[0]
        svc.record_visit(site.name, "/page0")  # no learn_page
        svc.gather()
        sim.run()
        # First round only fetched the metadata.
        assert not svc.cache.contains("news.example|page0.html")
        svc.gather()
        sim.run()
        assert svc.cache.contains("news.example|page0.html")

    def test_gather_through_smoother(self):
        sim, _city, site, services, _hpops = build(num_homes=1,
                                                   aggressiveness=1.0)
        svc = services[0]
        smoother = DemandSmoother(sim, rate_bytes_per_sec=20_000,
                                  burst_bytes=40_000)
        svc.smoother = smoother
        visit_and_learn(svc, site, ["/page0", "/page1"])
        svc.gather()
        sim.run_until(sim.now + 30)
        assert smoother.jobs_released == 8
        # Rate-limited: releases stretched over multiple seconds.
        assert svc.cache.contains("news.example|page0.html")


class TestDeepWebAndTriggers:
    def test_deep_content_requires_vault(self):
        sim, _city, site, services, _hpops = build(num_homes=1)
        svc = services[0]
        fetched = []
        svc._fetch_upstream("news.example", "private/feed.json", None,
                            lambda resp: fetched.append(resp))
        sim.run()
        assert fetched[0].status == 401  # no credentials
        svc.vault.store("news.example", "ann", "pw")
        svc._fetch_upstream("news.example", "private/feed.json", None,
                            lambda resp: fetched.append(resp))
        sim.run()
        assert fetched[1].ok
        assert svc.cache.contains("news.example|private/feed.json")

    def test_attic_trigger_gathers_quotes(self):
        sim, _city, site, services, hpops = build(num_homes=1,
                                                  with_attic=True,
                                                  aggressiveness=1.0)
        svc = services[0]
        attic = hpops[0].service("attic")
        attic.dav.tree.put("/ann/taxes.pdf", size=1000)
        attic.dav.tree.lookup("/ann/taxes.pdf").properties["tickers"] = \
            "AAPL,MSFT"
        svc.add_trigger(PropertyTrigger("tickers", "news.example",
                                        "quote/{}"))
        svc.gather()
        sim.run()
        assert svc.cache.contains("news.example|quote/AAPL")
        assert svc.cache.contains("news.example|quote/MSFT")


class TestDeviceServing:
    def test_hit_served_fast_miss_served_slow(self):
        sim, city, site, services, hpops = build(num_homes=1,
                                                 aggressiveness=1.0)
        svc = services[0]
        visit_and_learn(svc, site, ["/page0"])
        svc.gather()
        sim.run()
        device = city.neighborhoods[0].homes[0].devices[0]
        browser = HomeBrowser(device, city.network)
        results = []
        browser.load_via_hpop(hpops[0].host, site, "/page0", results.append)
        sim.run()
        warm = results[0]
        assert warm.hit_rate == 1.0
        browser.load_via_hpop(hpops[0].host, site, "/page2", results.append)
        sim.run()
        cold = results[1]
        assert cold.hit_rate == 0.0
        assert warm.duration < cold.duration

    def test_hpop_beats_origin_when_warm(self):
        sim, city, site, services, hpops = build(num_homes=1,
                                                 aggressiveness=1.0)
        svc = services[0]
        visit_and_learn(svc, site, ["/page0"])
        svc.gather()
        sim.run()
        device = city.neighborhoods[0].homes[0].devices[0]
        browser = HomeBrowser(device, city.network)
        results = {}
        browser.load_via_hpop(hpops[0].host, site, "/page0",
                              lambda r: results.setdefault("hpop", r))
        sim.run()
        browser.load_via_origin(site, "/page0",
                                lambda r: results.setdefault("origin", r))
        sim.run()
        assert results["hpop"].duration < results["origin"].duration

    def test_visit_recorded_via_route(self):
        sim, city, site, services, hpops = build(num_homes=1)
        device = city.neighborhoods[0].homes[0].devices[0]
        browser = HomeBrowser(device, city.network)
        browser.load_via_hpop(hpops[0].host, site, "/page1", lambda r: None)
        sim.run()
        assert services[0].history.count_for("news.example", "/page1") == 1


class TestCooperativeCache:
    def test_gathering_partitioned(self):
        sim, _city, site, services, _hpops = build(num_homes=3,
                                                   aggressiveness=1.0)
        group = CoopGroup()
        for svc in services:
            group.join(svc)
            visit_and_learn(svc, site, ["/page0", "/page1", "/page2"])
        for svc in services:
            svc.gather()
        sim.run()
        total_fetches = sum(s.stats.full_fetches for s in services)
        # Without the group each home fetches all 12 objects: 36 fetches.
        # Partitioned: each object fetched exactly once.
        assert total_fetches == 12

    def test_lateral_fetch_on_miss(self):
        sim, city, site, services, hpops = build(num_homes=2,
                                                 aggressiveness=1.0)
        group = CoopGroup()
        for svc in services:
            group.join(svc)
            visit_and_learn(svc, site, ["/page0"])
        for svc in services:
            svc.gather()
        sim.run()
        device = city.neighborhoods[0].homes[0].devices[0]
        browser = HomeBrowser(device, city.network)
        results = []
        browser.load_via_hpop(hpops[0].host, site, "/page0", results.append)
        sim.run()
        result = results[0]
        # Every object served from home cache or a neighbor, none from WAN.
        assert result.cache_hits + result.lateral_hits == result.object_count
        if result.lateral_hits:
            assert any(s.stats.lateral_served > 0 for s in services)

    def test_dead_member_reassigns_responsibility(self):
        sim, _city, site, services, hpops = build(num_homes=3,
                                                  aggressiveness=1.0)
        group = CoopGroup()
        for svc in services:
            group.join(svc)
        owner_before = group.responsible_for("news.example", "page0.html")
        owner_before.hpop.shutdown()
        owner_after = group.responsible_for("news.example", "page0.html")
        assert owner_after is not owner_before
        assert owner_after is not None

    def test_double_join_rejected(self):
        _sim, _city, _site, services, _hpops = build(num_homes=1)
        group = CoopGroup()
        group.join(services[0])
        with pytest.raises(ValueError):
            group.join(services[0])

    def test_leave(self):
        _sim, _city, _site, services, _hpops = build(num_homes=2)
        group = CoopGroup()
        group.join(services[0])
        group.join(services[1])
        group.leave(services[0])
        assert services[0].group is None
        assert group.responsible_for("s", "o") is services[1]
