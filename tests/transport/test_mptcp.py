"""MPTCP model tests: pooling, subflow dynamics, steering, withdrawal."""

import pytest

from repro.net.network import compose_paths
from repro.net.topology import build_detour_testbed
from repro.sim.engine import Simulator
from repro.transport.mptcp import MptcpConnection
from repro.util.units import mib, ms


def make_bed(seed=3, **kwargs):
    sim = Simulator(seed=seed)
    bed = build_detour_testbed(sim, **kwargs)
    return sim, bed


def direct_path(bed):
    return bed.network.path_between(bed.client, bed.server)


def detour_path(bed, wp_index=0):
    wp = bed.waypoints[wp_index]
    leg1 = bed.network.path_between(bed.client, wp)
    leg2 = bed.network.path_between(wp, bed.server)
    return compose_paths(leg1, leg2)


class TestSingleSubflow:
    def test_transfer_completes(self):
        sim, bed = make_bed()
        done = []
        conn = MptcpConnection(sim, mib(5), on_complete=lambda c: done.append(c))
        conn.add_subflow(direct_path(bed))
        sim.run()
        assert done and conn.done
        assert conn.stats.bytes_delivered == pytest.approx(mib(5))

    def test_single_subflow_matches_tcp_shape(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(5))
        sf = conn.add_subflow(direct_path(bed))
        sim.run()
        assert sf.stats.bytes_delivered == pytest.approx(mib(5))
        assert conn.share_of(sf) == pytest.approx(1.0)


class TestMultipath:
    def test_two_subflows_split_work(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(20))
        direct = conn.add_subflow(direct_path(bed), label="direct")
        detour = conn.add_subflow(detour_path(bed, 0), label="detour")
        sim.run()
        assert conn.done
        assert direct.stats.bytes_delivered > 0
        assert detour.stats.bytes_delivered > 0
        total = direct.stats.bytes_delivered + detour.stats.bytes_delivered
        assert total >= mib(20) * 0.999

    def test_aggregate_beats_single_path(self):
        """SIV-C: 'aggregate bandwidth of several available paths'."""
        size = mib(30)
        sim1, bed1 = make_bed()
        t_single = {}
        conn1 = MptcpConnection(sim1, size,
                                on_complete=lambda c: t_single.setdefault("t", sim1.now))
        conn1.add_subflow(direct_path(bed1))
        sim1.run()

        sim2, bed2 = make_bed()
        t_multi = {}
        conn2 = MptcpConnection(sim2, size,
                                on_complete=lambda c: t_multi.setdefault("t", sim2.now))
        conn2.add_subflow(direct_path(bed2))
        conn2.add_subflow(detour_path(bed2, 0))
        sim2.run()
        assert t_multi["t"] < t_single["t"]

    def test_low_rtt_clean_subflow_carries_more(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(30))
        # Native route: 60 ms delay and 2% loss; detour: ~36 ms, clean.
        direct = conn.add_subflow(direct_path(bed), label="direct")
        detour = conn.add_subflow(detour_path(bed, 0), label="detour")
        sim.run()
        assert detour.stats.bytes_delivered > direct.stats.bytes_delivered


class TestSteering:
    # Steering tests use a clean (lossless) native route so both subflows
    # are genuinely usable and share shifts are attributable to the ACKs.
    CLEAN = dict(direct_loss=0.0)

    def test_ack_delay_shifts_share(self):
        """SIV-C: delaying subflow ACKs inflates the RTT the server sees
        and reduces that subflow's share."""
        def run(ack_delay):
            sim, bed = make_bed(**self.CLEAN)
            conn = MptcpConnection(sim, mib(30))
            conn.add_subflow(direct_path(bed), label="direct")
            detour = conn.add_subflow(detour_path(bed, 0), label="detour",
                                      extra_ack_delay=ack_delay)
            sim.run()
            return conn.share_of(detour)

        baseline = run(0.0)
        steered = run(ms(200))
        assert steered < baseline * 0.75

    def test_set_ack_delay_mid_connection(self):
        def detour_bytes_in_window(steer):
            sim, bed = make_bed(**self.CLEAN)
            conn = MptcpConnection(sim, mib(2000))
            conn.add_subflow(direct_path(bed))
            detour = conn.add_subflow(detour_path(bed, 0))
            sim.run_until(1.0)
            if steer:
                detour.set_ack_delay(ms(500))
            before = detour.stats.bytes_delivered
            sim.run_until(3.0)
            return detour.stats.bytes_delivered - before

        unsteered = detour_bytes_in_window(steer=False)
        steered = detour_bytes_in_window(steer=True)
        # With a 500 ms ACK delay the detour's window rate (cwnd / RTT)
        # collapses; the fair-share cap bounds how big the drop can look,
        # so assert a robust >40% reduction rather than a cliff.
        assert steered < unsteered * 0.6

    def test_negative_ack_delay_rejected(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(1))
        sf = conn.add_subflow(direct_path(bed))
        with pytest.raises(ValueError):
            sf.set_ack_delay(-0.1)


class TestWithdrawal:
    def test_remove_subflow_recovers_bytes(self):
        """Withdrawing a detour mid-transfer loses no data."""
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(20))
        conn.add_subflow(direct_path(bed), label="direct")
        detour = conn.add_subflow(detour_path(bed, 0), label="detour")
        sim.run_until(0.3)
        conn.remove_subflow(detour)
        sim.run()
        assert conn.done
        assert conn.stats.bytes_delivered >= mib(20) * 0.999
        assert detour.removed

    def test_remove_foreign_subflow_rejected(self):
        sim, bed = make_bed()
        conn_a = MptcpConnection(sim, mib(1))
        conn_b = MptcpConnection(sim, mib(1))
        sf = conn_a.add_subflow(direct_path(bed))
        with pytest.raises(ValueError):
            conn_b.remove_subflow(sf)

    def test_active_subflows_tracks_removal(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(20))
        a = conn.add_subflow(direct_path(bed))
        b = conn.add_subflow(detour_path(bed, 0))
        sim.run_until(0.2)
        conn.remove_subflow(b)
        assert conn.active_subflows() == [a]
        sim.run()

    def test_add_subflow_after_done_rejected(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, 10_000)
        conn.add_subflow(direct_path(bed))
        sim.run()
        assert conn.done
        with pytest.raises(RuntimeError):
            conn.add_subflow(detour_path(bed, 0))


class TestPoolAccounting:
    def test_claim_restore_cycle(self):
        sim = Simulator()
        conn = MptcpConnection(sim, 1000)
        assert conn.claim(600) == 600
        assert conn.claim(600) == 400
        assert conn.claim(10) == 0
        conn.restore(500)
        assert conn.claim(1000) == 500

    def test_deliver_completes_once(self):
        sim = Simulator()
        completions = []
        conn = MptcpConnection(sim, 1000,
                               on_complete=lambda c: completions.append(1))
        conn.claim(1000)
        conn.deliver(1000)
        assert conn.done
        assert completions == [1]

    def test_rejects_nonpositive_size(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MptcpConnection(sim, 0)

    def test_invalid_weight_rejected(self):
        sim, bed = make_bed()
        conn = MptcpConnection(sim, mib(1))
        with pytest.raises(ValueError):
            conn.add_subflow(direct_path(bed), weight=0)
