"""TCP flow-model tests, including the paper's ramp-up arithmetic."""

import pytest

from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator
from repro.transport.tcp import MSS, TcpConnection, TcpFlow
from repro.util.units import gbps, mib, ms


def make_path(loss=0.0, bottleneck=gbps(1), delay=ms(25)):
    sim = Simulator(seed=2)
    bell = build_dumbbell(sim, bottleneck_bps=bottleneck,
                          bottleneck_delay=delay, loss_rate=loss)
    path = bell.network.path_between(bell.server, bell.client)  # download
    return sim, bell, path


class TestTcpFlow:
    def test_small_transfer_completes_quickly(self):
        sim, _bell, path = make_path()
        done = []
        TcpFlow(sim, path, 10_000, on_complete=lambda f: done.append(f))
        sim.run()
        assert len(done) == 1
        flow = done[0]
        assert flow.done
        assert flow.stats.bytes_delivered == pytest.approx(10_000)
        # 10 KB fits in IW10: roughly one round.
        assert flow.stats.rounds == 1
        assert sim.now < 3 * path.rtt

    def test_large_transfer_uses_capacity(self):
        sim, _bell, path = make_path()
        done = []
        TcpFlow(sim, path, mib(100), on_complete=lambda f: done.append(f))
        sim.run()
        flow = done[0]
        goodput = flow.stats.mean_goodput_bps
        # 100 MiB over 1 Gbps x 50 ms: slow start costs ~10 RTTs, then
        # line rate; mean goodput should be within 2x of capacity.
        assert goodput > gbps(1) / 2
        assert flow.stats.bytes_delivered == pytest.approx(mib(100))

    def test_paper_rampup_claim(self):
        """SIV-D: ~10 RTTs and >14 MB before a 1 Gbps x 50 ms path is full."""
        sim, _bell, path = make_path()
        done = []
        TcpFlow(sim, path, mib(200), on_complete=lambda f: done.append(f))
        sim.run()
        flow = done[0]
        bdp_bytes = gbps(1) * path.rtt / 8
        # Find the first round at which the per-round delivery fills the BDP.
        cumulative = flow.stats.progress
        fill_round = None
        prev_bytes = 0.0
        for i, (_t, total) in enumerate(cumulative):
            if total - prev_bytes >= 0.95 * bdp_bytes:
                fill_round = i + 1
                break
            prev_bytes = total
        assert fill_round is not None
        assert 8 <= fill_round <= 12  # "10 RTTs"
        # Paper: "over 14 MB of data before utilizing the available
        # capacity" (sum of IW10 slow-start rounds, 14.6KB * (2^10 - 1)
        # ~= 14.9 MB). Our final slow-start round is BDP-capped, so the
        # cumulative figure lands slightly lower; assert the ~14 MB shape.
        bytes_before_full = cumulative[fill_round - 1][1]
        assert 12e6 < bytes_before_full < 16e6

    def test_slow_start_doubles(self):
        sim, _bell, path = make_path()
        flow = TcpFlow(sim, path, mib(50), start=False)
        initial = flow.cwnd
        flow.start()
        # cwnd for the *next* round doubles as soon as a round is sent.
        sim.run_until(path.rtt * 0.5)
        assert flow.cwnd == pytest.approx(initial * 2)
        sim.run_until(path.rtt * 1.5)
        assert flow.cwnd == pytest.approx(initial * 4)

    def test_loss_halves_cwnd(self):
        sim, _bell, path = make_path(loss=0.3)
        flow = TcpFlow(sim, path, mib(1))
        sim.run()
        assert flow.stats.loss_events > 0
        assert flow.stats.retransmitted_bytes > 0
        assert flow.done  # lossy but finishes

    def test_lossy_path_slower_than_clean(self):
        sim_clean, _b1, path_clean = make_path(loss=0.0)
        done_clean = []
        TcpFlow(sim_clean, path_clean, mib(5),
                on_complete=lambda f: done_clean.append(sim_clean.now))
        sim_clean.run()
        sim_lossy, _b2, path_lossy = make_path(loss=0.02)
        done_lossy = []
        TcpFlow(sim_lossy, path_lossy, mib(5),
                on_complete=lambda f: done_lossy.append(sim_lossy.now))
        sim_lossy.run()
        assert done_lossy[0] > done_clean[0] * 1.5

    def test_two_flows_share_bottleneck(self):
        sim, bell, _path = make_path()
        down_path = bell.network.path_between(bell.server, bell.client)
        done = {}
        TcpFlow(sim, down_path, mib(50), on_complete=lambda f: done.setdefault("a", sim.now))
        TcpFlow(sim, down_path, mib(50), on_complete=lambda f: done.setdefault("b", sim.now))
        sim.run()
        # Two 50 MiB flows over 1 Gbps should take roughly as long as one
        # 100 MiB flow (sharing), i.e. ~0.9-2 s, not ~0.5 s.
        assert min(done.values()) > 0.75

    def test_cancel_stops_flow(self):
        sim, _bell, path = make_path()
        done = []
        flow = TcpFlow(sim, path, mib(100), on_complete=lambda f: done.append(1))
        sim.run_until(0.2)
        flow.cancel()
        sim.run()
        assert done == []
        assert not flow.done
        # Path no longer counts the flow.
        assert path.fair_share_bps(object()) == pytest.approx(gbps(1))

    def test_progress_is_monotone(self):
        sim, _bell, path = make_path(loss=0.05)
        flow = TcpFlow(sim, path, mib(2))
        sim.run()
        totals = [b for _t, b in flow.stats.progress]
        assert totals == sorted(totals)

    def test_overhead_reduces_goodput(self):
        sim1, _b1, path1 = make_path()
        done1 = []
        TcpFlow(sim1, path1, mib(20), on_complete=lambda f: done1.append(sim1.now))
        sim1.run()
        sim2, _b2, path2 = make_path()
        done2 = []
        TcpFlow(sim2, path2, mib(20), overhead_per_packet=400,
                on_complete=lambda f: done2.append(sim2.now))
        sim2.run()
        assert done2[0] > done1[0]

    def test_rejects_nonpositive_bytes(self):
        sim, _bell, path = make_path()
        with pytest.raises(ValueError):
            TcpFlow(sim, path, 0)


class TestTcpConnection:
    def make_conn(self, tls=0):
        sim, bell, _path = make_path()
        fwd = bell.network.path_between(bell.client, bell.server)
        rev = bell.network.path_between(bell.server, bell.client)
        return sim, TcpConnection(sim, fwd, rev, tls_round_trips=tls)

    def test_handshake_takes_one_rtt(self):
        sim, conn = self.make_conn()
        ready = []
        conn.establish(lambda: ready.append(sim.now))
        sim.run()
        assert ready[0] == pytest.approx(conn.forward_path.rtt)

    def test_tls_adds_round_trips(self):
        sim, conn = self.make_conn(tls=2)
        ready = []
        conn.establish(lambda: ready.append(sim.now))
        sim.run()
        assert ready[0] == pytest.approx(3 * conn.forward_path.rtt)

    def test_transfer_requires_establishment(self):
        _sim, conn = self.make_conn()
        with pytest.raises(RuntimeError):
            conn.transfer(1000, "down", lambda f: None)

    def test_warm_connection_faster_second_transfer(self):
        sim, conn = self.make_conn()
        times = {}
        size = mib(3)

        def second_done(flow):
            times["second"] = sim.now - times["second_start"]

        def first_done(flow):
            times["first"] = sim.now
            times["second_start"] = sim.now
            conn.transfer(size, "down", second_done)

        conn.establish(lambda: conn.transfer(size, "down", first_done))
        sim.run()
        first_duration = times["first"] - conn.forward_path.rtt
        assert times["second"] < first_duration

    def test_concurrent_establish_callbacks(self):
        sim, conn = self.make_conn()
        ready = []
        conn.establish(lambda: ready.append("a"))
        conn.establish(lambda: ready.append("b"))
        sim.run()
        assert ready == ["a", "b"]

    def test_closed_connection_rejects_use(self):
        sim, conn = self.make_conn()
        conn.establish(lambda: None)
        sim.run()
        conn.close()
        with pytest.raises(RuntimeError):
            conn.transfer(100, "down", lambda f: None)
        with pytest.raises(RuntimeError):
            conn.establish(lambda: None)

    def test_bad_direction_rejected(self):
        sim, conn = self.make_conn()
        conn.establish(lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            conn.transfer(100, "sideways", lambda f: None)
