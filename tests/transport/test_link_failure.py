"""Transport behaviour under link failures: reroute, stall, MPTCP failover."""

import pytest

from repro.net.address import Address
from repro.net.network import Network, compose_paths
from repro.net.topology import build_detour_testbed, build_dumbbell
from repro.sim.engine import Simulator
from repro.transport.mptcp import MptcpConnection
from repro.transport.tcp import TcpFlow
from repro.util.units import gbps, mib, ms


def build_two_path_net():
    """a -- r1 -- b plus a slower backup path a -- r2 -- b."""
    sim = Simulator(seed=28)
    net = Network(sim)
    a = net.add_host("a")
    a.add_interface(Address.parse("10.0.0.1"))
    b = net.add_host("b")
    b.add_interface(Address.parse("10.0.0.2"))
    r1 = net.add_router("r1")
    r1.add_interface(Address.parse("172.16.0.1"))
    r2 = net.add_router("r2")
    r2.add_interface(Address.parse("172.16.0.2"))
    net.connect(a, r1, gbps(1), ms(2))
    primary = net.connect(r1, b, gbps(1), ms(2))
    net.connect(a, r2, gbps(1), ms(20))
    net.connect(r2, b, gbps(1), ms(20))
    return sim, net, a, b, primary


class TestTcpReroute:
    def test_flow_reroutes_around_failure(self):
        sim, net, a, b, primary = build_two_path_net()
        path = net.path_between(a, b)
        assert path.propagation_delay == pytest.approx(0.004)
        done = []
        flow = TcpFlow(sim, path, mib(50), on_complete=lambda f: done.append(1))
        sim.run_until(0.1)
        net.fail_link(primary)
        sim.run()
        assert done == [1]
        assert flow.stats.reroutes == 1
        assert flow.stats.bytes_delivered == pytest.approx(mib(50))
        # The flow ended on the backup path.
        assert flow.path.propagation_delay == pytest.approx(0.040)

    def test_flow_stalls_then_fails_when_partitioned(self):
        sim = Simulator(seed=29)
        bell = build_dumbbell(sim)
        path = bell.network.path_between(bell.server, bell.client)
        done = []
        flow = TcpFlow(sim, path, mib(50), on_complete=lambda f: done.append(1))
        sim.run_until(0.1)
        bell.network.fail_link(bell.bottleneck)  # no alternative exists
        sim.run()
        assert done == []
        assert flow.failed
        assert flow.stats.stalls == flow.max_stalls
        # The dead flow no longer occupies the path.
        assert path.fair_share_bps(object()) == pytest.approx(gbps(1))

    def test_flow_resumes_if_link_restored_during_stall(self):
        sim = Simulator(seed=30)
        bell = build_dumbbell(sim)
        path = bell.network.path_between(bell.server, bell.client)
        done = []
        flow = TcpFlow(sim, path, mib(20), on_complete=lambda f: done.append(1))
        sim.run_until(0.1)
        bell.network.fail_link(bell.bottleneck)
        sim.run_until(1.0)  # a few stall periods
        bell.network.restore_link(bell.bottleneck)
        sim.run()
        assert done == [1]
        assert not flow.failed
        assert flow.stats.stalls > 0

    def test_reroute_restarts_congestion_window(self):
        sim, net, a, b, primary = build_two_path_net()
        path = net.path_between(a, b)
        flow = TcpFlow(sim, path, mib(100))
        sim.run_until(0.5)
        grown = flow.cwnd
        net.fail_link(primary)
        sim.run_until(0.51)
        assert flow.stats.reroutes == 1
        assert flow.cwnd < grown
        flow.cancel()


class TestMptcpFailover:
    def test_dead_subflow_path_fails_over(self):
        sim = Simulator(seed=31)
        bed = build_detour_testbed(sim, num_waypoints=1, direct_loss=0.0)
        conn = MptcpConnection(sim, mib(20))
        direct = conn.add_subflow(
            bed.network.path_between(bed.client, bed.server), label="direct")
        wp = bed.waypoints[0]
        detour_path = compose_paths(
            bed.network.path_between(bed.client, wp),
            bed.network.path_between(wp, bed.server))
        detour = conn.add_subflow(detour_path, label="detour")
        sim.run_until(0.3)
        # Sever the waypoint's access link: the detour subflow dies, the
        # transfer completes on the direct subflow.
        wp_access = bed.network.links["wp0-access"]
        bed.network.fail_link(wp_access)
        sim.run()
        assert conn.done
        assert detour.removed
        assert conn.stats.bytes_delivered >= mib(20) * 0.999

    def test_all_paths_dead_means_stalled(self):
        sim = Simulator(seed=32)
        bell = build_dumbbell(sim)
        conn = MptcpConnection(sim, mib(20))
        path = bell.network.path_between(bell.server, bell.client)
        conn.add_subflow(path)
        sim.run_until(0.2)
        bell.network.fail_link(bell.bottleneck)
        sim.run()
        assert not conn.done
        assert conn.stalled
        # Recovery: a new subflow on a restored path finishes the job.
        bell.network.restore_link(bell.bottleneck)
        conn.add_subflow(bell.network.path_between(bell.server, bell.client))
        sim.run()
        assert conn.done
