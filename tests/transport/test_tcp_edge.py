"""TCP model edge cases: RTO, caps, cancellation, cwnd reuse."""

import pytest

from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator
from repro.transport.tcp import MSS, TcpConnection, TcpFlow
from repro.util.units import gbps, kib, mbps, mib, ms


def make(seed=26, **kwargs):
    sim = Simulator(seed=seed)
    bell = build_dumbbell(sim, **kwargs)
    path = bell.network.path_between(bell.server, bell.client)
    return sim, bell, path


class TestRetransmissionTimeout:
    def test_extreme_loss_triggers_rto(self):
        sim, _bell, path = make(loss_rate=0.45)
        flow = TcpFlow(sim, path, kib(400))
        sim.run()
        assert flow.done
        assert flow.stats.timeouts > 0
        assert flow.stats.loss_events >= 3

    def test_rto_pause_slows_completion(self):
        sim_a, _b1, path_a = make(loss_rate=0.0)
        done_a = []
        TcpFlow(sim_a, path_a, kib(400),
                on_complete=lambda f: done_a.append(sim_a.now))
        sim_a.run()
        sim_b, _b2, path_b = make(loss_rate=0.45)
        done_b = []
        TcpFlow(sim_b, path_b, kib(400),
                on_complete=lambda f: done_b.append(sim_b.now))
        sim_b.run()
        assert done_b[0] > 3 * done_a[0]


class TestWindowCap:
    def test_cwnd_bounded_by_share_bdp(self):
        """When rate-limited, cwnd settles near 4x the share BDP instead
        of growing without bound."""
        sim, _bell, path = make(bottleneck_bps=mbps(50))
        flow = TcpFlow(sim, path, mib(200))
        sim.run_until(20.0)
        share_bdp = path.fair_share_bps(flow) * flow.rtt / 8
        assert flow.cwnd <= 4 * share_bdp * 1.01
        flow.cancel()

    def test_window_limited_flow_unaffected_by_cap(self):
        sim, _bell, path = make()
        flow = TcpFlow(sim, path, kib(100))
        sim.run()
        # Small transfer: never rate-limited, two rounds with IW10.
        assert flow.stats.rounds <= 4


class TestCancellation:
    def test_cancel_before_start(self):
        sim, _bell, path = make()
        flow = TcpFlow(sim, path, mib(1), start=False)
        flow.cancel()
        sim.run()
        assert not flow.done

    def test_cancel_is_idempotent(self):
        sim, _bell, path = make()
        flow = TcpFlow(sim, path, mib(10))
        sim.run_until(0.1)
        flow.cancel()
        flow.cancel()
        sim.run()
        assert not flow.done

    def test_cancelled_flow_frees_share_for_others(self):
        sim, _bell, path = make()
        hog = TcpFlow(sim, path, mib(500), label="hog")
        sim.run_until(1.0)
        assert path.fair_share_bps(object()) == pytest.approx(gbps(1) / 2)
        hog.cancel()
        assert path.fair_share_bps(object()) == pytest.approx(gbps(1))
        done = []
        TcpFlow(sim, path, mib(10),
                on_complete=lambda f: done.append(f.stats.mean_goodput_bps))
        sim.run()
        # Slow start dominates a 10 MiB transfer; just confirm the flow
        # ran unimpeded by the cancelled hog (>= 100 Mbps mean).
        assert done[0] > mbps(100)


class TestConnectionCwndCache:
    def test_directions_cached_independently(self):
        sim, bell, _path = make()
        fwd = bell.network.path_between(bell.client, bell.server)
        rev = bell.network.path_between(bell.server, bell.client)
        conn = TcpConnection(sim, fwd, rev)
        established = []
        conn.establish(lambda: established.append(1))
        sim.run()

        finished = {}

        def big_down(flow):
            finished["down_cwnd"] = flow.cwnd
            conn.transfer(kib(10), "up",
                          lambda f: finished.setdefault("up_cwnd", f.cwnd))

        conn.transfer(mib(20), "down", big_down)
        sim.run()
        # Downstream warmed far past the small upstream transfer's window.
        assert finished["down_cwnd"] > finished["up_cwnd"]

    def test_setup_rtts_property(self):
        sim, bell, _path = make()
        fwd = bell.network.path_between(bell.client, bell.server)
        rev = bell.network.path_between(bell.server, bell.client)
        assert TcpConnection(sim, fwd, rev).setup_rtts == 1
        assert TcpConnection(sim, fwd, rev, tls_round_trips=2).setup_rtts == 3


class TestFlowStats:
    def test_goodput_none_before_completion(self):
        sim, _bell, path = make()
        flow = TcpFlow(sim, path, mib(50))
        assert flow.stats.mean_goodput_bps is None
        assert flow.stats.duration is None
        sim.run()
        assert flow.stats.mean_goodput_bps > 0

    def test_requested_vs_delivered(self):
        sim, _bell, path = make(loss_rate=0.05)
        flow = TcpFlow(sim, path, mib(2))
        sim.run()
        assert flow.stats.bytes_requested == mib(2)
        assert flow.stats.bytes_delivered == pytest.approx(mib(2))
        # Retransmissions are accounted separately, not double-counted.
        assert flow.stats.retransmitted_bytes > 0
