"""SLO specs, burn-rate alert lifecycle, verdicts, fault correlation."""

import json

import pytest

from repro.metrics.counters import MetricsRegistry
from repro.obs.slo import (BurnRule, RatioSli, SloMonitor, SloSpec,
                           ThresholdSli, correlate_alerts, load_slo_jsonl)
from repro.obs.timeseries import TimeSeriesDB
from repro.sim.engine import Simulator


def make_world(objective=0.9, interval=0.5):
    """A sim + TSDB scraping one service registry + a monitor on it."""
    sim = Simulator(seed=11)
    reg = MetricsRegistry(namespace="svc")
    total = reg.counter("requests", "")
    bad = reg.counter("errors", "")
    db = TimeSeriesDB(sim, interval=0.25)
    db.add_registry(reg)
    spec = SloSpec(
        name="svc-availability", service="svc", objective=objective,
        sli=RatioSli(total=("svc.requests",), bad=("svc.errors",)),
        rules=(BurnRule("fast", long_window=2.0, short_window=0.5,
                        threshold=2.0),))
    monitor = SloMonitor(sim, db, [spec], interval=interval)
    return sim, db, monitor, total, bad


class TestSlis:
    def test_ratio_sli_no_traffic_is_clean(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        sli = RatioSli(total=("t",), bad=("b",))
        assert sli.error_rate(db, 0.0, 10.0) == 0.0

    def test_ratio_sli_sums_multiple_series(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        for name, values in (("ok", [0, 8]), ("fail", [0, 2])):
            for t, v in enumerate(values):
                db._append(name, "counter", float(t), float(v))
        sim.now = 1.0
        sli = RatioSli(total=("ok", "fail"), bad=("fail",))
        assert sli.error_rate(db, 0.0, 1.0) == pytest.approx(0.2)

    def test_ratio_sli_clamped_to_one(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        db._append("t", "counter", 0.0, 0.0)
        db._append("t", "counter", 1.0, 1.0)
        db._append("b", "counter", 0.0, 0.0)
        db._append("b", "counter", 1.0, 5.0)
        sli = RatioSli(total=("t",), bad=("b",))
        assert sli.error_rate(db, 0.0, 1.0) == 1.0

    def test_threshold_sli_counts_violating_samples(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        for t, v in enumerate([0.1, 0.4, 2.0, 3.0]):
            db._append("lat_p99", "gauge", float(t), v)
        sli = ThresholdSli(metric="lat_p99", max_value=1.0)
        assert sli.error_rate(db, 0.0, 3.0) == pytest.approx(0.5)
        assert sli.error_rate(db, 0.0, 1.0) == 0.0

    def test_threshold_sli_missing_series_is_clean(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        assert ThresholdSli("nope", 1.0).error_rate(db, 0.0, 9.0) == 0.0


class TestSpec:
    def test_objective_bounds(self):
        sli = RatioSli(total=("t",), bad=("b",))
        with pytest.raises(ValueError, match="objective"):
            SloSpec("x", "svc", objective=1.0, sli=sli)
        with pytest.raises(ValueError, match="objective"):
            SloSpec("x", "svc", objective=0.0, sli=sli)

    def test_budget_and_burn_rate(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        db._append("t", "counter", 0.0, 0.0)
        db._append("t", "counter", 1.0, 10.0)
        db._append("b", "counter", 0.0, 0.0)
        db._append("b", "counter", 1.0, 2.0)
        spec = SloSpec("x", "svc", objective=0.9,
                       sli=RatioSli(total=("t",), bad=("b",)))
        assert spec.budget == pytest.approx(0.1)
        # 20% errors against a 10% budget: burning 2x.
        assert spec.burn_rate(db, window=1.0, end=1.0) == pytest.approx(2.0)


class TestMonitorLifecycle:
    def test_duplicate_names_rejected(self):
        sim = Simulator()
        db = TimeSeriesDB(sim)
        sli = RatioSli(total=("t",), bad=("b",))
        specs = [SloSpec("dup", "a", 0.9, sli), SloSpec("dup", "b", 0.9, sli)]
        with pytest.raises(ValueError, match="duplicate"):
            SloMonitor(sim, db, specs)

    def test_fires_on_burn_and_resolves_on_recovery(self):
        sim, db, monitor, total, bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            # 50% errors against a 10% budget until t=3, then clean.
            total.inc(4)
            if sim.now < 3.0:
                bad.inc(2)
            if sim.now < 8.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()

        states = [(e["state"], e["t"]) for e in monitor.events]
        assert [s for s, _t in states] == ["firing", "resolved"]
        fired_t = states[0][1]
        resolved_t = states[1][1]
        assert fired_t < 3.0  # caught while the errors flowed
        # Resolves once the short window goes clean, well before run end.
        assert resolved_t < 6.0
        assert monitor.metrics.counters["alerts_fired"].value == 1
        assert monitor.metrics.counters["alerts_resolved"].value == 1
        assert monitor.metrics.gauges["alerts_active"].read() == 0.0

    def test_firing_record_shape(self):
        sim, db, monitor, total, bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            total.inc(2)
            bad.inc(2)
            if sim.now < 2.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        firing = [e for e in monitor.events if e["state"] == "firing"]
        assert firing
        record = firing[0]
        assert record["slo"] == "svc-availability"
        assert record["service"] == "svc"
        assert record["severity"] == "fast"
        assert record["burn_long"] >= 2.0
        assert record["burn_short"] >= 2.0
        assert record["long_window"] == 2.0
        assert record["short_window"] == 0.5

    def test_alert_opens_and_closes_trace_span(self):
        sim, db, monitor, total, bad = make_world()
        tracer = sim.enable_tracing()
        db.start()
        monitor.start()

        def traffic():
            total.inc(2)
            bad.inc(2)
            if sim.now < 4.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        monitor.finish()
        alert_spans = [s for s in tracer.spans() if s.name == "slo.alert"]
        assert len(alert_spans) == 1
        span = alert_spans[0]
        assert span.attrs["slo"] == "svc-availability"
        assert span.attrs["severity"] == "fast"
        assert span.end is not None  # finish() closed it

    def test_finish_resolves_still_firing_alerts(self):
        sim, db, monitor, total, bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            total.inc(2)
            bad.inc(2)
            if sim.now < 4.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        assert len(monitor._active) == 1
        monitor.finish()
        assert monitor._active == {}
        assert monitor.events[-1]["state"] == "resolved"
        assert monitor.events[-1]["at_run_end"] is True

    def test_clean_service_never_alerts(self):
        sim, db, monitor, total, _bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            total.inc(5)
            if sim.now < 5.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        monitor.finish()
        assert monitor.events == []


class TestExemplarLinkedAlerts:
    def make_exemplar_world(self):
        sim = Simulator(seed=11)
        tracer = sim.enable_tracing()
        sampler = tracer.enable_tail_sampling(rate=0.0, decision_wait=0.0,
                                              grace=30.0)
        from repro.obs.sampling import ExemplarStore
        exemplars = ExemplarStore(sim, window=30.0)
        exemplars.sampler = sampler
        reg = MetricsRegistry(namespace="svc")
        total = reg.counter("requests", "")
        bad = reg.counter("errors", "")
        db = TimeSeriesDB(sim, interval=0.25)
        db.add_registry(reg)
        spec = SloSpec(
            name="svc-availability", service="svc", objective=0.9,
            sli=RatioSli(total=("svc.requests",), bad=("svc.errors",)),
            rules=(BurnRule("fast", long_window=2.0, short_window=0.5,
                            threshold=2.0),),
            exemplar_metric="svc.request_seconds")
        monitor = SloMonitor(sim, db, [spec], interval=0.5,
                             exemplars=exemplars)
        return sim, db, monitor, sampler, exemplars, total, bad

    def test_firing_alert_links_and_pins_worst_exemplar(self):
        (sim, db, monitor, sampler, exemplars,
         total, bad) = self.make_exemplar_world()
        tracer = sim.tracer
        db.start()
        monitor.start()
        worst = {}

        def traffic():
            # Each tick is one erroring request with a recorded
            # exemplar; the slowest one (the first, so it exists before
            # the burn rule fires) should win the alert link.
            span = tracer.start_span(f"req@{sim.now:.2f}", parent=None)
            took = 1.0 if sim.now < 0.3 else 0.1
            if took == 1.0:
                worst["trace"] = span.trace_id
            exemplars.record("svc.request_seconds", took, span.trace_id)
            span.finish()
            total.inc(2)
            bad.inc(2)
            if sim.now < 2.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()

        firing = [e for e in monitor.events if e["state"] == "firing"]
        assert firing, "burn never fired"
        record = firing[0]
        assert record["exemplar_trace"] == worst["trace"]
        assert record["exemplar_value"] == 1.0
        # The pin survived a rate-0 sampler: the exemplar trace is kept.
        monitor.finish()    # closes the still-firing alert span
        sampler.flush()
        kept_ids = {s.trace_id for s in sampler.kept_spans()}
        assert worst["trace"] in kept_ids
        assert sampler.pins_honoured >= 1
        # The alert span itself carries the link for the dashboard.
        alert_spans = [s for s in sampler.kept_spans()
                       if s.name == "slo.alert"]
        assert alert_spans
        assert alert_spans[0].attrs["exemplar_trace"] == worst["trace"]

    def test_alert_without_exemplars_has_no_link(self):
        sim, db, monitor, total, bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            total.inc(2)
            bad.inc(2)
            if sim.now < 2.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        firing = [e for e in monitor.events if e["state"] == "firing"]
        assert firing
        assert "exemplar_trace" not in firing[0]


class TestVerdictsAndExport:
    def run_burned(self, tmp_path=None):
        sim, db, monitor, total, bad = make_world()
        db.start()
        monitor.start()

        def traffic():
            total.inc(4)
            if sim.now < 3.0:
                bad.inc(2)
            if sim.now < 8.0:
                sim.schedule(0.25, traffic, label="traffic")

        sim.schedule(0.25, traffic, label="traffic")
        sim.run()
        monitor.finish()
        return monitor

    def test_verdicts_whole_run(self):
        monitor = self.run_burned()
        [verdict] = monitor.verdicts()
        assert verdict["slo"] == "svc-availability"
        assert verdict["alerts"] == 1
        assert not verdict["met"]  # ~18% errors against a 10% budget
        assert verdict["error_rate"] > 0.1
        assert verdict["budget_spent"] == 1.0

    def test_export_roundtrip_and_determinism(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.run_burned().export_jsonl(str(a))
        self.run_burned().export_jsonl(str(b))
        assert a.read_bytes() == b.read_bytes()
        events, verdicts = load_slo_jsonl(str(a))
        assert [e["state"] for e in events] == ["firing", "resolved"]
        assert len(verdicts) == 1
        assert verdicts[0]["kind"] == "verdict"


class TestCorrelation:
    def test_joins_faults_inside_lookback(self):
        alerts = [{"t": 10.0, "state": "firing", "slo": "x"},
                  {"t": 12.0, "state": "resolved", "slo": "x"}]
        faults = [{"t": 4.0, "event": "node_crash", "target": "h1"},
                  {"t": 8.0, "event": "link_flap_start", "target": "h2"},
                  {"t": 11.0, "event": "node_restart", "target": "h1"}]
        rows = correlate_alerts(alerts, faults, lookback=5.0)
        assert len(rows) == 1  # only the firing record correlates
        causes = rows[0]["causes"]
        # t=8 is in [5, 10]; t=4 too old, t=11 after the alert.
        assert [c["t"] for c in causes] == [8.0]

    def test_nearest_fault_first(self):
        alerts = [{"t": 10.0, "state": "firing", "slo": "x"}]
        faults = [{"t": 2.0, "event": "a", "target": "h"},
                  {"t": 9.0, "event": "b", "target": "h"}]
        rows = correlate_alerts(alerts, faults, lookback=10.0)
        assert [c["t"] for c in rows[0]["causes"]] == [9.0, 2.0]

    def test_no_faults_yields_empty_causes(self):
        rows = correlate_alerts([{"t": 1.0, "state": "firing", "slo": "x"}],
                                [], lookback=10.0)
        assert rows == [{"alert": {"t": 1.0, "state": "firing", "slo": "x"},
                         "causes": []}]


class TestEdgeCases:
    @staticmethod
    def drip(sim, counter, amount, start, end, step=0.25):
        """Increment ``counter`` by ``amount`` at each scrape-aligned step
        in (start, end] so the TSDB sees the growth."""
        t = start + step
        while t <= end + 1e-9:
            sim.schedule(t - sim.now, lambda c=counter: c.inc(amount),
                         label="traffic")
            t += step

    def test_resolve_and_refire_within_one_scrape_interval(self):
        """The burn can dip under threshold and spike again faster than the
        monitor's own cadence; back-to-back evaluations see both edges."""
        sim, db, monitor, total, bad = make_world()
        db.start()
        # 100% errors against a 10% budget until t=1.
        self.drip(sim, total, 1, 0.0, 1.0)
        self.drip(sim, bad, 1, 0.0, 1.0)
        sim.run_until(1.05)
        assert [e["state"] for e in monitor.evaluate()] == ["firing"]
        # A flood of clean traffic drowns both burn windows...
        self.drip(sim, total, 100, 1.0, 2.0)
        sim.run_until(2.05)
        assert [e["state"] for e in monitor.evaluate()] == ["resolved"]
        # ...and a fresh error spike re-fires 0.25s later -- less than one
        # monitor interval (0.5s) after the resolve. The spike lands
        # off-grid at t=2.1 so the t=2.25 scrape captures it.
        sim.schedule(2.1 - sim.now, lambda: bad.inc(200), label="spike")
        sim.run_until(2.3)
        assert [e["state"] for e in monitor.evaluate()] == ["firing"]
        assert [e["state"] for e in monitor.events] == [
            "firing", "resolved", "firing"]
        assert monitor.metrics.counters["alerts_fired"].value == 2
        assert monitor.metrics.counters["alerts_resolved"].value == 1
        assert monitor.metrics.gauges["alerts_active"].read() == 1.0

    def test_listener_sees_every_record_synchronously(self):
        sim, db, monitor, total, bad = make_world()
        seen = []
        monitor.add_listener(lambda record: seen.append(
            (record["state"], record["t"], sim.now)))
        db.start()
        self.drip(sim, total, 1, 0.0, 1.0)
        self.drip(sim, bad, 1, 0.0, 1.0)
        sim.run_until(1.05)
        monitor.evaluate()
        self.drip(sim, total, 100, 1.0, 2.0)
        sim.run_until(2.05)
        monitor.evaluate()
        # Each record was delivered at the moment it was appended.
        assert [(s, t) for s, t, _now in seen] == [
            ("firing", 1.05), ("resolved", 2.05)]
        assert all(t == now for _s, t, now in seen)
        assert len(seen) == len(monitor.events)

    def test_listener_registration_order(self):
        sim, db, monitor, total, bad = make_world()
        order = []
        monitor.add_listener(lambda r: order.append("first"))
        monitor.add_listener(lambda r: order.append("second"))
        db.start()
        self.drip(sim, total, 1, 0.0, 1.0)
        self.drip(sim, bad, 1, 0.0, 1.0)
        sim.run_until(1.05)
        monitor.evaluate()
        assert order == ["first", "second"]

    def test_correlate_alerts_with_empty_fault_log(self):
        """A run with no injected faults still correlates cleanly: every
        firing alert yields a row with an empty causes list."""
        alerts = [{"t": 3.0, "state": "firing", "slo": "a"},
                  {"t": 5.0, "state": "resolved", "slo": "a"},
                  {"t": 7.0, "state": "firing", "slo": "b"}]
        rows = correlate_alerts(alerts, [], lookback=5.0)
        assert len(rows) == 2
        assert [r["alert"]["slo"] for r in rows] == ["a", "b"]
        assert all(r["causes"] == [] for r in rows)
