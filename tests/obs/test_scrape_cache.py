"""The TSDB scrape path must skip untouched registries — and notice
every way a registry can change."""

import pytest

from repro.metrics.counters import MetricsRegistry
from repro.obs.timeseries import TimeSeriesDB
from repro.sim.engine import Simulator


class TestRegistryVersion:
    def test_mutations_bump_version(self):
        registry = MetricsRegistry(namespace="svc")
        v0 = registry.version
        counter = registry.counter("reqs")
        assert registry.version > v0
        v1 = registry.version
        counter.inc()
        assert registry.version > v1
        v2 = registry.version
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        assert registry.version > v2
        v3 = registry.version
        registry.histogram("lat").observe(0.25)
        assert registry.version > v3

    def test_reads_do_not_bump_version(self):
        registry = MetricsRegistry(namespace="svc")
        registry.counter("reqs").inc(5)
        registry.histogram("lat").observe(1.0)
        version = registry.version
        registry.snapshot((0.5,))
        registry.snapshot_series((0.5,))
        registry.render()
        registry.expose()
        registry.value("reqs")
        assert registry.version == version

    def test_fn_gauges_are_counted(self):
        registry = MetricsRegistry(namespace="svc")
        assert registry.fn_gauges == 0
        gauge = registry.gauge("depth")
        gauge.set_function(lambda: 4.0)
        assert registry.fn_gauges == 1
        gauge.set_function(lambda: 5.0)  # replacing fn does not re-count
        assert registry.fn_gauges == 1


class TestScrapeSkip:
    def test_untouched_registry_not_rewalked(self, monkeypatch):
        sim = Simulator(seed=1)
        registry = MetricsRegistry(namespace="svc")
        registry.counter("reqs").inc(3)
        tsdb = TimeSeriesDB(sim, interval=1.0)
        tsdb.add_registry(registry, source="h0")

        calls = {"n": 0}
        real = registry.snapshot_series

        def counting(quantiles=()):
            calls["n"] += 1
            return real(quantiles)

        monkeypatch.setattr(registry, "snapshot_series", counting)
        tsdb.scrape()
        tsdb.scrape()
        tsdb.scrape()
        assert calls["n"] == 1  # idle registry walked once, then cached

    def test_dirty_registry_rescraped(self, monkeypatch):
        sim = Simulator(seed=1)
        registry = MetricsRegistry(namespace="svc")
        counter = registry.counter("reqs")
        tsdb = TimeSeriesDB(sim, interval=1.0)
        tsdb.add_registry(registry)
        tsdb.scrape()
        counter.inc()
        tsdb.scrape()
        points = tsdb.get("svc.reqs").points
        assert [v for _t, v in points] == [0.0, 1.0]

    def test_fn_gauge_registry_always_fresh(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry(namespace="svc")
        state = {"v": 1.0}
        registry.gauge("depth").set_function(lambda: state["v"])
        tsdb = TimeSeriesDB(sim, interval=1.0)
        tsdb.add_registry(registry)
        tsdb.scrape()
        state["v"] = 2.0  # no version bump anywhere
        tsdb.scrape()
        assert [v for _t, v in tsdb.get("svc.depth").points] == [1.0, 2.0]

    def test_cached_rows_still_append_points(self):
        """Skipping the registry walk must not skip the time dimension:
        an idle counter still gets one (flat) point per scrape, so
        exports are byte-identical with the uncached behaviour."""
        sim = Simulator(seed=1)
        registry = MetricsRegistry(namespace="svc")
        registry.counter("reqs").inc(7)
        tsdb = TimeSeriesDB(sim, interval=1.0)
        tsdb.add_registry(registry)
        for _ in range(4):
            tsdb.scrape()
        points = tsdb.get("svc.reqs").points
        assert len(points) == 4
        assert all(v == 7.0 for _t, v in points)

    def test_cached_export_matches_uncached(self, tmp_path):
        def run(defeat_cache):
            sim = Simulator(seed=4)
            registry = MetricsRegistry(namespace="svc")
            counter = registry.counter("reqs")
            registry.histogram("lat").observe(0.5)
            tsdb = TimeSeriesDB(sim, interval=1.0)
            tsdb.add_registry(registry, source="h0")
            for i in range(6):
                if i in (2, 4):
                    counter.inc()
                if defeat_cache:
                    tsdb._scrape_cache.clear()
                sim.run_until(float(i))
                tsdb.scrape()
            path = tmp_path / f"cache{defeat_cache}.jsonl"
            tsdb.export_jsonl(str(path))
            return path.read_bytes()

        assert run(False) == run(True)
