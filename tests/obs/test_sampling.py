"""Tail-based sampling: deterministic decisions, forced keeps, limbo."""

import pytest

from repro.obs.sampling import (
    ExemplarStore,
    SamplingPolicy,
    TailSampler,
    trace_hash,
)
from repro.sim.engine import Simulator


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


class FakeSpan:
    """Just the attributes the sampler and policy read."""

    def __init__(self, trace_id, name="work", kind="span", attrs=None,
                 start=0.0, end=0.0, parent_id=None):
        self.trace_id = trace_id
        self.name = name
        self.kind = kind
        self.attrs = attrs or {}
        self.start = start
        self.end = end
        self.parent_id = parent_id


def make_sampler(**policy_kw):
    clock = FakeClock()
    policy_kw.setdefault("decision_wait", 0.0)
    sampler = TailSampler(clock, SamplingPolicy(**policy_kw))
    return clock, sampler


def feed(sampler, span):
    sampler.span_opened(span)
    sampler.span_finished(span)


class TestTraceHash:
    def test_pure_function_of_id_and_salt(self):
        assert trace_hash(12345) == trace_hash(12345)
        assert trace_hash(12345, salt=1) != trace_hash(12345, salt=2)
        assert trace_hash(1) != trace_hash(2)

    def test_uniform_enough_for_rate_control(self):
        """~rate of sequential ids land under the hash limit."""
        policy = SamplingPolicy(rate=0.25)
        kept = sum(1 for tid in range(4000) if policy.hash_keep(tid))
        assert 800 < kept < 1200

    def test_rate_bounds(self):
        keep_all = SamplingPolicy(rate=1.0)
        keep_none = SamplingPolicy(rate=0.0)
        for tid in range(100):
            assert keep_all.hash_keep(tid)
            assert not keep_none.hash_keep(tid)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(decision_wait=-1.0)


class TestFlagReason:
    def test_keep_prefix_flags(self):
        policy = SamplingPolicy()
        assert policy.flag_reason(FakeSpan(1, name="fault.link_flap")) \
            == "flagged"
        assert policy.flag_reason(FakeSpan(1, name="slo.alert")) == "flagged"
        assert policy.flag_reason(FakeSpan(1, name="http.request")) is None

    def test_error_attr_flags(self):
        policy = SamplingPolicy()
        assert policy.flag_reason(
            FakeSpan(1, attrs={"error": "timed out"})) == "error"
        assert policy.flag_reason(FakeSpan(1, attrs={"error": ""})) is None

    def test_slow_span_flags(self):
        policy = SamplingPolicy(slow_threshold=2.0)
        assert policy.flag_reason(FakeSpan(1, start=0.0, end=2.5)) == "slow"
        assert policy.flag_reason(FakeSpan(1, start=0.0, end=1.0)) is None
        off = SamplingPolicy(slow_threshold=0.0)
        assert off.flag_reason(FakeSpan(1, start=0.0, end=99.0)) is None


class TestDecisions:
    def test_error_trace_always_kept_at_rate_zero(self):
        _clock, sampler = make_sampler(rate=0.0)
        feed(sampler, FakeSpan(7, attrs={"error": "boom"}))
        assert sampler.traces_kept == 1
        assert sampler.kept_by_reason == {"error": 1}
        assert [s.trace_id for s in sampler.kept_spans()] == [7]

    def test_normal_trace_dropped_at_rate_zero(self):
        _clock, sampler = make_sampler(rate=0.0, grace=10.0)
        feed(sampler, FakeSpan(7))
        assert sampler.traces_kept == 0
        assert sampler.traces_dropped == 1
        assert sampler.kept_spans() == []

    def test_multi_span_trace_decided_as_a_unit(self):
        _clock, sampler = make_sampler(rate=0.0)
        root = FakeSpan(9, name="request")
        child = FakeSpan(9, name="http.request", attrs={"error": "x"})
        sampler.span_opened(root)
        sampler.span_opened(child)
        sampler.span_finished(child)
        # Not decided while the root is still open.
        assert sampler.traces_kept == 0
        sampler.span_finished(root)
        assert sampler.traces_kept == 1
        assert len(sampler.kept_spans()) == 2

    def test_decision_wait_delays_until_quiet(self):
        clock, sampler = make_sampler(rate=0.0, decision_wait=1.0)
        feed(sampler, FakeSpan(5, attrs={"error": "x"}))
        assert sampler.traces_kept == 0          # still inside the wait
        clock.now = 2.0
        feed(sampler, FakeSpan(6))               # any activity sweeps
        assert sampler.traces_kept == 1

    def test_flush_decides_everything_now(self):
        _clock, sampler = make_sampler(rate=1.0, decision_wait=5.0)
        feed(sampler, FakeSpan(3))
        open_span = FakeSpan(4)
        sampler.span_opened(open_span)           # never finishes
        sampler.flush()
        assert sampler.traces_kept >= 1
        assert sampler.stats_record()["pending"] == 0

    def test_kept_spans_in_record_order(self):
        _clock, sampler = make_sampler(rate=1.0)
        for tid in (11, 12, 13):
            feed(sampler, FakeSpan(tid))
        sampler.flush()
        assert [s.trace_id for s in sampler.kept_spans()] == [11, 12, 13]


class TestLimboAndPins:
    def test_pin_resurrects_from_limbo(self):
        clock, sampler = make_sampler(rate=0.0, grace=10.0)
        feed(sampler, FakeSpan(21))
        assert sampler.traces_dropped == 1
        assert sampler.pin(21) is True
        assert sampler.traces_dropped == 0
        assert sampler.kept_by_reason == {"pinned": 1}
        assert [s.trace_id for s in sampler.kept_spans()] == [21]

    def test_pin_after_grace_is_missed_loudly(self):
        clock, sampler = make_sampler(rate=0.0, grace=1.0)
        feed(sampler, FakeSpan(22))
        clock.now = 5.0
        feed(sampler, FakeSpan(23))              # sweep ages out limbo
        assert sampler.pin(22) is False
        assert sampler.pins_missed == 1

    def test_pin_pending_trace(self):
        _clock, sampler = make_sampler(rate=0.0)
        span = FakeSpan(24)
        sampler.span_opened(span)
        assert sampler.pin(24) is True
        sampler.span_finished(span)
        assert sampler.kept_by_reason == {"pinned": 1}

    def test_pin_none_is_false(self):
        _clock, sampler = make_sampler()
        assert sampler.pin(None) is False

    def test_late_flagged_mark_resurrects(self):
        clock, sampler = make_sampler(rate=0.0, grace=10.0)
        feed(sampler, FakeSpan(31))
        assert sampler.traces_dropped == 1
        late = FakeSpan(31, name="fault.loss_burst", kind="mark",
                        parent_id=31)
        sampler.span_finished(late)
        assert sampler.traces_kept == 1
        assert len(sampler.kept_spans()) == 2

    def test_late_span_into_kept_trace_is_kept(self):
        _clock, sampler = make_sampler(rate=1.0)
        feed(sampler, FakeSpan(41))
        sampler.flush()
        late = FakeSpan(41, kind="mark", parent_id=41)
        sampler.span_finished(late)
        assert sampler.late_spans_kept == 1
        assert len(sampler.kept_spans()) == 2


class TestStatsRecord:
    def test_deterministic_shape(self):
        _clock, sampler = make_sampler(rate=0.0, grace=0.0)
        feed(sampler, FakeSpan(1, attrs={"error": "x"}))
        feed(sampler, FakeSpan(2))
        record = sampler.stats_record()
        assert record["kind"] == "sampling"
        assert record["traces_seen"] == 2
        assert record["traces_kept"] == 1
        assert record["traces_dropped"] == 1
        assert list(record["kept_by_reason"]) == ["error"]


class TestTracerIntegration:
    def run_traced(self, tmp_path, name):
        sim = Simulator(seed=5)
        tracer = sim.enable_tracing()
        tracer.enable_tail_sampling(rate=0.0, decision_wait=0.0)

        def work(label, fail):
            span = tracer.start_span(label, parent=None)
            span.finish(error="boom" if fail else None)

        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: work(f"job{i}", i == 4))
        sim.run()
        path = tmp_path / f"{name}.jsonl"
        tracer.export_jsonl(str(path))
        return path.read_bytes()

    def test_export_flushes_and_is_deterministic(self, tmp_path):
        a = self.run_traced(tmp_path, "a")
        b = self.run_traced(tmp_path, "b")
        assert a == b
        text = a.decode()
        assert '"kind": "sampling"' in text.replace('"kind":"sampling"',
                                                    '"kind": "sampling"')
        assert "job4" in text          # the error trace survived rate=0
        assert "job3" not in text      # a normal trace did not


class TestExemplarStore:
    def test_worst_in_window_with_deterministic_ties(self):
        clock = FakeClock()
        store = ExemplarStore(clock, window=100.0)
        clock.now = 1.0
        store.record("m", 3.0, 101)
        clock.now = 2.0
        store.record("m", 5.0, 102)
        clock.now = 3.0
        store.record("m", 5.0, 103)   # tie: earlier time wins
        assert store.worst("m", 0.0, 10.0) == (2.0, 5.0, 102)
        assert store.worst("m", 2.5, 10.0) == (3.0, 5.0, 103)
        assert store.worst("m", 8.0, 10.0) is None
        assert store.worst("absent", 0.0, 10.0) is None

    def test_window_purge(self):
        clock = FakeClock()
        store = ExemplarStore(clock, window=5.0)
        store.record("m", 1.0, 7)
        clock.now = 100.0
        store.record("m", 0.5, 8)     # purges the t=0 entry
        assert store.worst("m", 0.0, 100.0) == (100.0, 0.5, 8)

    def test_none_trace_id_ignored(self):
        store = ExemplarStore(FakeClock())
        store.record("m", 1.0, None)
        assert store.recorded == 0

    def test_pin_passthrough(self):
        clock = FakeClock()
        store = ExemplarStore(clock)
        assert store.pin(5) is True            # sampling off: vacuous keep
        assert store.pin(None) is False
        sampler = TailSampler(clock, SamplingPolicy(rate=0.0,
                                                    decision_wait=0.0))
        store.sampler = sampler
        feed(sampler, FakeSpan(5))
        assert store.pin(5) is True
        assert sampler.kept_by_reason == {"pinned": 1}
