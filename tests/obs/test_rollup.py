"""Cardinality governor: space-saving sketch and cohort rollup folds."""

import pytest

from repro.metrics.counters import MetricsRegistry
from repro.obs.rollup import RollupCohort, SpaceSaving


def make_member(name, reqs=0, depth=None):
    registry = MetricsRegistry(namespace=name)
    counter = registry.counter("reqs")
    if reqs:
        counter.inc(reqs)
    gauge = registry.gauge("depth")
    if depth is not None:
        gauge.set(depth)
    return registry


def rows_by_name(cohort):
    return {name: value for name, _kind, value in cohort.scrape_rows()}


class TestSpaceSaving:
    def test_tracks_at_most_k(self):
        sketch = SpaceSaving(2)
        for key in ("a", "b", "c", "d"):
            sketch.offer(key)
        assert len(sketch) == 2

    def test_eviction_inherits_floor_as_error(self):
        sketch = SpaceSaving(2)
        sketch.offer("a", 10.0)
        sketch.offer("b", 3.0)
        sketch.offer("c", 1.0)           # evicts b (min), inherits 3
        top = sketch.top()
        assert top[0] == ("a", 10.0, 0.0)
        assert top[1] == ("c", 4.0, 3.0)
        assert "b" not in sketch

    def test_tie_evicts_lexicographically_smallest(self):
        sketch = SpaceSaving(2)
        sketch.offer("beta", 5.0)
        sketch.offer("alpha", 5.0)
        sketch.offer("gamma", 1.0)
        assert "alpha" not in sketch
        assert "beta" in sketch and "gamma" in sketch

    def test_top_sorted_by_count_then_key(self):
        sketch = SpaceSaving(3)
        sketch.offer("x", 2.0)
        sketch.offer("y", 7.0)
        sketch.offer("z", 2.0)
        assert [key for key, _c, _e in sketch.top()] == ["y", "x", "z"]

    def test_nonpositive_weight_ignored(self):
        sketch = SpaceSaving(2)
        sketch.offer("a", 0.0)
        sketch.offer("b", -1.0)
        assert len(sketch) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)


class TestRollupFold:
    def test_counters_sum_gauges_average(self):
        cohort = RollupCohort("nbhd0", k=2)
        cohort.add_member("h0", make_member("home", reqs=4, depth=2.0))
        cohort.add_member("h1", make_member("home", reqs=6, depth=4.0))
        rows = rows_by_name(cohort)
        assert rows["cohort:nbhd0/home.reqs"] == 10.0
        assert rows["cohort:nbhd0/home.depth"] == 3.0
        assert rows["cohort:nbhd0/rollup.members"] == 2.0

    def test_quiet_members_not_rescanned(self):
        cohort = RollupCohort("n", k=2)
        a = make_member("home", reqs=1)
        cohort.add_member("h0", a)
        cohort.add_member("h1", make_member("home", reqs=1))
        cohort.scrape_rows()                 # first fold walks everyone
        assert cohort.members_rescanned == 2
        a.counters["reqs"].inc()
        cohort.scrape_rows()                 # only the mutated member
        assert cohort.members_rescanned == 3

    def test_first_fold_is_setup_not_loudness(self):
        cohort = RollupCohort("n", k=1)
        cohort.add_member("h0", make_member("home", reqs=100))
        cohort.scrape_rows()
        assert len(cohort.sketch) == 0       # registration never offered

    def test_loudest_member_gets_per_home_series(self):
        cohort = RollupCohort("n", k=1)
        quiet = make_member("home", reqs=1)
        loud = make_member("home", reqs=1)
        cohort.add_member("h-quiet", quiet)
        cohort.add_member("h-loud", loud)
        cohort.scrape_rows()
        for _ in range(10):
            loud.counters["reqs"].inc()
        quiet.counters["reqs"].inc()
        rows = rows_by_name(cohort)
        assert "h-loud/home.reqs" in rows
        assert rows["h-loud/home.reqs"] == 11.0
        assert "h-quiet/home.reqs" not in rows

    def test_rollup_changed_row_counts_rescans(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home")
        cohort.add_member("h0", a)
        cohort.add_member("h1", make_member("home"))
        rows = rows_by_name(cohort)
        assert rows["cohort:n/rollup.changed"] == 2.0
        a.counters["reqs"].inc()
        rows = rows_by_name(cohort)
        assert rows["cohort:n/rollup.changed"] == 1.0

    def test_duplicate_and_empty_member_names_rejected(self):
        cohort = RollupCohort("n")
        cohort.add_member("h0", make_member("home"))
        with pytest.raises(ValueError):
            cohort.add_member("h0", make_member("home"))
        with pytest.raises(ValueError):
            cohort.add_member("", make_member("home"))


class TestDifferentialFastPath:
    """Plain counter/gauge members fold value deltas, no snapshot."""

    def test_deltas_match_full_rescan(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=3, depth=1.0)
        b = make_member("home", reqs=5, depth=3.0)
        cohort.add_member("h0", a)
        cohort.add_member("h1", b)
        cohort.scrape_rows()                     # builds the fast caches
        a.counters["reqs"].inc(7)
        a.gauges["depth"].set(9.0)
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.reqs"] == 15.0
        assert rows["cohort:n/home.depth"] == 6.0

    def test_metric_set_change_falls_back_to_full_rescan(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=2)
        cohort.add_member("h0", a)
        cohort.scrape_rows()
        a.counter("retries").inc(4)              # new metric after fold
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.retries"] == 4.0
        assert rows["cohort:n/home.reqs"] == 2.0

    def test_histogram_member_stays_on_snapshot_path(self):
        cohort = RollupCohort("n", k=1)
        registry = MetricsRegistry(namespace="home")
        hist = registry.histogram("lat")
        hist.observe(0.5)
        cohort.add_member("h0", registry)
        cohort.scrape_rows()
        hist.observe(1.5)
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.lat_count"] == 2.0
        assert rows["cohort:n/home.lat_sum"] == 2.0

    def test_top_k_rows_served_from_fast_cache_are_fresh(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=1)
        cohort.add_member("h0", a)
        cohort.scrape_rows()
        a.counters["reqs"].inc(41)
        rows = rows_by_name(cohort)
        assert rows["h0/home.reqs"] == 42.0      # not the stale snapshot


class TestTouchMode:
    def test_untouched_mutation_not_picked_up(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=1)
        cohort.add_member("h0", a)
        cohort.enable_touch()
        cohort.scrape_rows()                     # add_member pre-touched
        a.counters["reqs"].inc(5)                # mutate without touch
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.reqs"] == 1.0
        cohort.touch("h0")
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.reqs"] == 6.0

    def test_enable_touch_returns_live_dirty_set(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=1)
        cohort.add_member("h0", a)
        dirty = cohort.enable_touch()
        cohort.scrape_rows()
        a.counters["reqs"].inc()
        dirty.add(0)                             # hot-loop style notify
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.reqs"] == 2.0
        # Folds clear the set in place; the alias stays valid.
        assert len(dirty) == 0

    def test_fn_gauge_member_always_rescanned_in_touch_mode(self):
        cohort = RollupCohort("n", k=1)
        registry = MetricsRegistry(namespace="home")
        state = {"v": 1.0}
        registry.gauge("depth").set_function(lambda: state["v"])
        cohort.add_member("h0", registry)
        cohort.enable_touch()
        cohort.scrape_rows()
        state["v"] = 7.0                         # no touch, no version bump
        rows = rows_by_name(cohort)
        assert rows["cohort:n/home.depth"] == 7.0

    def test_touch_index_addressing(self):
        cohort = RollupCohort("n", k=1)
        a = make_member("home", reqs=1)
        cohort.add_member("h0", a)
        cohort.enable_touch()
        cohort.scrape_rows()
        a.counters["reqs"].inc()
        cohort.touch_index(0)
        assert rows_by_name(cohort)["cohort:n/home.reqs"] == 2.0

    def test_every_validation(self):
        with pytest.raises(ValueError):
            RollupCohort("n", every=0)
