"""Sim-time TSDB: series semantics, scraping, downsampling, export."""

import json

import pytest

from repro.metrics.counters import MetricsRegistry
from repro.obs.timeseries import Series, TimeSeriesDB, load_jsonl
from repro.sim.engine import Simulator


class TestSeries:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Series("x", "histogram")

    def test_window_inclusive_both_ends(self):
        s = Series("x", "gauge")
        for t in range(10):
            s.append(float(t), float(t), max_points=64)
        assert s.window(2.0, 5.0) == [(2.0, 2.0), (3.0, 3.0),
                                      (4.0, 4.0), (5.0, 5.0)]
        assert s.window(20.0, 30.0) == []
        assert s.window(5.0, 2.0) == []

    def test_value_at_step_interpolation(self):
        s = Series("x", "gauge")
        s.append(1.0, 10.0, 64)
        s.append(3.0, 30.0, 64)
        assert s.value_at(0.5) is None
        assert s.value_at(1.0) == 10.0
        assert s.value_at(2.9) == 10.0
        assert s.value_at(3.0) == 30.0
        assert s.value_at(99.0) == 30.0

    def test_counter_delta_uses_pre_window_baseline(self):
        s = Series("c", "counter")
        s.append(0.0, 5.0, 64)
        s.append(1.0, 8.0, 64)
        s.append(2.0, 9.0, 64)
        # Baseline is the value at the window start, so the increment
        # that landed just inside the window still counts.
        assert s.delta(0.0, 2.0) == 4.0
        assert s.delta(0.5, 2.0) == 4.0
        assert s.delta(1.5, 2.0) == 1.0
        assert s.delta(5.0, 9.0) == 0.0

    def test_delta_without_baseline_uses_first_point(self):
        s = Series("c", "counter")
        s.append(10.0, 3.0, 64)
        s.append(11.0, 7.0, 64)
        assert s.delta(9.0, 12.0) == 4.0

    def test_delta_on_gauge_rejected(self):
        s = Series("g", "gauge")
        with pytest.raises(ValueError, match="delta"):
            s.delta(0.0, 1.0)

    def test_rate(self):
        s = Series("c", "counter")
        s.append(0.0, 0.0, 64)
        s.append(10.0, 40.0, 64)
        assert s.rate(0.0, 10.0) == pytest.approx(4.0)
        assert s.rate(5.0, 5.0) == 0.0

    def test_downsample_counter_keeps_later_value(self):
        s = Series("c", "counter")
        for t in range(5):
            s.append(float(t), float(t * 10), max_points=4)
        # Overflow at the 5th append collapsed the first two pairs.
        assert s.points == [(1.0, 10.0), (3.0, 30.0), (4.0, 40.0)]
        assert s.resolution == 2

    def test_downsample_gauge_averages_pairs(self):
        s = Series("g", "gauge")
        for t, v in enumerate([2.0, 4.0, 10.0, 20.0, 7.0]):
            s.append(float(t), v, max_points=4)
        assert s.points == [(1.0, 3.0), (3.0, 15.0), (4.0, 7.0)]
        assert s.resolution == 2

    def test_bounded_forever(self):
        s = Series("g", "gauge")
        for t in range(10_000):
            s.append(float(t), float(t % 7), max_points=16)
        assert len(s.points) <= 16
        assert s.resolution > 1
        # The series still spans the whole run.
        assert s.points[-1][0] == 9999.0


class TestTimeSeriesDB:
    def make_db(self, interval=1.0, **kwargs):
        sim = Simulator(seed=3)
        db = TimeSeriesDB(sim, interval=interval, **kwargs)
        return sim, db

    def test_rejects_bad_config(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesDB(sim, interval=0.0)
        with pytest.raises(ValueError, match="max_points"):
            TimeSeriesDB(sim, max_points=2)
        with pytest.raises(ValueError, match="kind"):
            TimeSeriesDB(sim).add_callback("x", lambda: 0.0, kind="nope")

    def test_scrapes_registry_with_source_prefix(self):
        sim, db = self.make_db()
        reg = MetricsRegistry(namespace="svc")
        reg.counter("requests", "").inc(5)
        reg.gauge("depth", "").set(2.0)
        db.add_registry(reg, source="h0")
        db.scrape()
        assert db.latest("h0/svc.requests") == 5.0
        assert db.get("h0/svc.requests").kind == "counter"
        assert db.get("h0/svc.depth").kind == "gauge"

    def test_histogram_becomes_count_sum_and_quantiles(self):
        sim, db = self.make_db()
        reg = MetricsRegistry(namespace="svc")
        hist = reg.histogram("lat_seconds", "")
        for v in (0.1, 0.2, 0.9):
            hist.observe(v)
        db.add_registry(reg)
        db.scrape()
        assert db.latest("svc.lat_seconds_count") == 3.0
        assert db.latest("svc.lat_seconds_sum") == pytest.approx(1.2)
        assert db.get("svc.lat_seconds_p50").kind == "gauge"
        assert db.latest("svc.lat_seconds_p50") == pytest.approx(0.2)
        assert db.latest("svc.lat_seconds_p99") == pytest.approx(0.886)

    def test_weak_scrape_cadence_does_not_block_quiescence(self):
        sim, db = self.make_db(interval=0.5)
        reg = MetricsRegistry(namespace="n")
        counter = reg.counter("ticks", "")
        db.add_registry(reg).start()
        # Strong work for 3 sim-seconds; scrapes ride along weakly.
        for i in range(6):
            sim.schedule(0.5 * (i + 1), counter.inc, label="work")
        sim.run()
        assert sim.now == pytest.approx(3.0)  # run() reached quiescence
        assert db.scrapes >= 6
        # The weak scrape tied with the *last* strong event never fires
        # (quiescence wins), so the final sample trails by one tick.
        assert db.latest("n.ticks") == 5.0

    def test_stop_halts_scraping(self):
        sim, db = self.make_db(interval=0.5)
        db.add_callback("v", lambda: 1.0).start()
        sim.schedule(5.0, lambda: db.stop(), label="stopper")
        sim.schedule(10.0, lambda: None, label="late")
        sim.run()
        assert db.get("v").points[-1][0] <= 5.0

    def test_get_unknown_raises_keyerror(self):
        _sim, db = self.make_db()
        with pytest.raises(KeyError, match="no series"):
            db.get("nope")

    def test_names_filter_and_sum_delta(self):
        sim, db = self.make_db()
        a = MetricsRegistry(namespace="a")
        b = MetricsRegistry(namespace="b")
        ca, cb = a.counter("errs", ""), b.counter("errs", "")
        db.add_registry(a).add_registry(b)
        db.scrape()
        sim.now = 1.0
        ca.inc(2)
        cb.inc(3)
        db.scrape()
        assert db.names("errs") == ["a.errs", "b.errs"]
        assert db.sum_delta(["a.errs", "b.errs", "missing"], 1.0) == 5.0

    def test_export_sorted_and_deterministic(self, tmp_path):
        def one_run(path):
            sim, db = self.make_db(interval=0.25)
            reg = MetricsRegistry(namespace="m")
            counter = reg.counter("events", "")
            db.add_registry(reg, source="s").start()
            for i in range(8):
                sim.schedule(0.3 * (i + 1), counter.inc, label="work")
            sim.run()
            db.export_jsonl(str(path))

        one_run(tmp_path / "a.jsonl")
        one_run(tmp_path / "b.jsonl")
        blob = (tmp_path / "a.jsonl").read_bytes()
        assert blob == (tmp_path / "b.jsonl").read_bytes()
        names = [json.loads(line)["name"]
                 for line in blob.decode().splitlines()]
        assert names == sorted(names)

    def test_load_jsonl_roundtrip(self, tmp_path):
        sim, db = self.make_db()
        db.add_callback("depth", lambda: sim.now * 2, kind="gauge")
        for t in (0.0, 1.0, 2.0):
            sim.now = t
            db.scrape()
        path = tmp_path / "tsdb.jsonl"
        db.export_jsonl(str(path))
        loaded = load_jsonl(str(path))
        assert set(loaded) == {"depth"}
        assert loaded["depth"].kind == "gauge"
        assert loaded["depth"].points == db.get("depth").points
