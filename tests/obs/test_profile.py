"""Event-loop profiler: attribution, derived ratios, flamegraph export."""

import pytest

from repro.obs.profile import LabelStat, LoopProfiler
from repro.sim.engine import Simulator


class FakeEvent:
    def __init__(self, label, callback, time=0.0):
        self.label = label
        self.callback = callback
        self.time = time


def named_callback():
    pass


class TestRecording:
    def test_attributes_wall_time_to_label_and_callback(self):
        sim = Simulator()
        prof = LoopProfiler(sim)
        prof.record(FakeEvent("net.deliver", named_callback, 1.0), 0.002)
        prof.record(FakeEvent("net.deliver", named_callback, 2.0), 0.004)
        prof.record(FakeEvent("attic.repair", named_callback, 3.0), 0.010)

        assert prof.events == 3
        assert prof.wall_seconds == pytest.approx(0.016)
        stat = prof.stats["net.deliver"]
        assert stat.count == 2
        assert stat.wall_seconds == pytest.approx(0.006)
        assert stat.mean_us == pytest.approx(3000.0)
        assert stat.callbacks["named_callback"] == [2, pytest.approx(0.006)]

    def test_anonymous_callables_get_placeholder(self):
        sim = Simulator()
        prof = LoopProfiler(sim)

        class CallableThing:
            def __call__(self):
                pass

        prof.record(FakeEvent("x", CallableThing(), 1.0), 0.001)
        assert "<callable>" in prof.stats["x"].callbacks

    def test_empty_label_stat(self):
        assert LabelStat("x").mean_us == 0.0


class TestDerived:
    def test_wall_sim_ratio_tracks_event_times(self):
        sim = Simulator()
        sim.now = 5.0
        prof = LoopProfiler(sim)  # sim time starts counting at 5.0
        prof.record(FakeEvent("a", named_callback, 7.0), 0.5)
        prof.record(FakeEvent("a", named_callback, 15.0), 0.5)
        assert prof.sim_seconds == pytest.approx(10.0)
        assert prof.wall_sim_ratio == pytest.approx(0.1)

    def test_zero_sim_time_safe(self):
        prof = LoopProfiler(Simulator())
        assert prof.wall_sim_ratio == 0.0
        assert prof.events_per_second == 0.0
        prof.record(FakeEvent("a", named_callback, 0.0), 0.25)
        assert prof.wall_sim_ratio == 0.0  # same-timestamp burst
        assert prof.events_per_second == pytest.approx(4.0)

    def test_top_ranks_by_wall_time(self):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("cheap", named_callback, 1.0), 0.001)
        prof.record(FakeEvent("dear", named_callback, 2.0), 0.100)
        assert [s.label for s in prof.top(5)] == ["dear", "cheap"]
        assert [s.label for s in prof.top(1)] == ["dear"]

    def test_render_mentions_hot_label(self):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("hot.path", named_callback, 1.0), 0.05)
        text = prof.render()
        assert "hot.path" in text
        assert "wall/sim ratio" in text


class TestFlamegraphExport:
    def test_collapsed_stack_format(self):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("attic.repair.shard", named_callback, 1.0),
                    0.0025)
        [line] = prof.collapsed_stacks()
        stack, value = line.rsplit(" ", 1)
        assert stack == "sim;attic;repair;shard;named_callback"
        assert value == "2500"  # integer microseconds

    def test_tiny_samples_round_up_to_one(self):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("x", named_callback, 1.0), 1e-9)
        [line] = prof.collapsed_stacks()
        assert line.endswith(" 1")

    def test_export_file(self, tmp_path):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("a.b", named_callback, 1.0), 0.001)
        prof.record(FakeEvent("c", named_callback, 2.0), 0.002)
        path = tmp_path / "prof.collapsed"
        assert prof.export_collapsed(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("sim;") for line in lines)

    def test_to_dict_summary(self):
        prof = LoopProfiler(Simulator())
        prof.record(FakeEvent("a", named_callback, 1.0), 0.001)
        d = prof.to_dict()
        assert d["events"] == 1
        assert d["labels"]["a"]["count"] == 1
        assert set(d) >= {"wall_seconds", "sim_seconds", "wall_sim_ratio",
                          "events_per_second"}


class TestEngineIntegration:
    def test_enable_profiling_observes_run(self):
        sim = Simulator(seed=1)
        prof = sim.enable_profiling()
        assert sim.profiler is prof
        assert sim.enable_profiling() is prof  # idempotent
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: None, label="tick")
        sim.run()
        assert prof.events == 10
        assert prof.stats["tick"].count == 10
        assert prof.sim_seconds == pytest.approx(1.0)
        assert prof.wall_seconds > 0

    def test_disable_detaches_but_keeps_stats(self):
        sim = Simulator(seed=1)
        prof = sim.enable_profiling()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        sim.disable_profiling()
        assert sim.profiler is None
        assert prof.events == 1  # readable after detach
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert prof.events == 1  # no longer recording

    def test_profiler_composes_with_tracer(self):
        sim = Simulator(seed=1)
        tracer = sim.enable_tracing()
        prof = sim.enable_profiling()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        assert prof.events == 1
        assert tracer.events_traced == 1
