"""Tracer core semantics: spans, context propagation, export."""

import json

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer, iter_jsonl
from repro.sim.engine import Simulator


def traced_sim(seed=0, **kwargs):
    sim = Simulator(seed=seed)
    tracer = sim.enable_tracing(**kwargs)
    return sim, tracer


class TestNullTracer:
    def test_disabled_by_default(self):
        sim = Simulator()
        assert sim.tracer is NULL_TRACER
        assert not sim.tracer.enabled

    def test_null_span_everywhere(self):
        span = NULL_TRACER.start_span("x", a=1)
        assert span is NULL_SPAN
        span.set(b=2)
        span.finish(c=3)
        assert NULL_TRACER.spans() == []
        with NULL_TRACER.trace("y") as inner:
            assert inner is NULL_SPAN
        assert NULL_TRACER.current is None

    def test_disable_tracing_returns_to_null(self):
        sim, tracer = traced_sim()
        assert sim.tracer is tracer
        sim.disable_tracing()
        assert sim.tracer is NULL_TRACER

    def test_enable_is_idempotent(self):
        sim, tracer = traced_sim()
        assert sim.enable_tracing() is tracer


class TestSpans:
    def test_trace_context_records_duration(self):
        sim, tracer = traced_sim()
        with tracer.trace("op", key="v") as span:
            sim.now = 2.5  # clock moves inside the operation
        assert span.end == 2.5
        [rec] = tracer.spans()
        assert rec.name == "op"
        assert rec.duration == 2.5
        assert rec.attrs == {"key": "v"}

    def test_nested_spans_get_parents(self):
        sim, tracer = traced_sim()
        with tracer.trace("outer") as outer:
            with tracer.trace("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current is None

    def test_finish_is_idempotent(self):
        sim, tracer = traced_sim()
        span = tracer.start_span("once")
        span.finish()
        span.finish()
        assert len(tracer.spans()) == 1

    def test_unfinished_span_not_recorded(self):
        sim, tracer = traced_sim()
        tracer.start_span("open-forever")
        assert tracer.spans() == []

    def test_explicit_parent_overrides_current(self):
        sim, tracer = traced_sim()
        root = tracer.start_span("root")
        with tracer.trace("ambient"):
            child = tracer.start_span("child", parent=root)
        assert child.parent_id == root.span_id

    def test_parent_none_forces_root(self):
        sim, tracer = traced_sim()
        with tracer.trace("ambient"):
            orphan = tracer.start_span("orphan", parent=None)
        assert orphan.parent_id is None


class TestEventPropagation:
    def test_event_inherits_scheduling_context(self):
        sim, tracer = traced_sim()
        seen = []
        with tracer.trace("request") as span:
            sim.schedule(1.0, lambda: seen.append(tracer.current.parent_id),
                         label="work")
        sim.run()
        # The event mark's parent is the request span.
        assert seen == [span.span_id]
        marks = [s for s in tracer.spans() if s.kind == "event"]
        assert len(marks) == 1
        assert marks[0].parent_id == span.span_id

    def test_chained_events_keep_causality(self):
        sim, tracer = traced_sim()

        def first():
            sim.schedule(1.0, second, label="second")

        def second():
            pass

        with tracer.trace("root") as root:
            sim.schedule(1.0, first, label="first")
        sim.run()
        marks = {s.name: s for s in tracer.spans() if s.kind == "event"}
        assert marks["first"].parent_id == root.span_id
        assert marks["second"].parent_id == marks["first"].span_id

    def test_span_finished_in_later_event(self):
        sim, tracer = traced_sim()
        span = tracer.start_span("async-op")
        sim.schedule(3.0, lambda: span.finish(), label="completion")
        sim.run()
        [rec] = [s for s in tracer.spans() if s.kind == "span"]
        assert rec.start == 0.0 and rec.end == 3.0

    def test_event_marks_can_be_disabled(self):
        sim, tracer = traced_sim(trace_events=False)
        with tracer.trace("root") as root:
            sim.schedule(1.0, lambda: tracer.start_span("child").finish(),
                         label="work")
        sim.run()
        kinds = {s.kind for s in tracer.spans()}
        assert kinds == {"span"}
        child = [s for s in tracer.spans() if s.name == "child"][0]
        # Without marks, the child chains directly to the scheduling span.
        assert child.parent_id == root.span_id

    def test_current_cleared_between_events(self):
        sim, tracer = traced_sim()
        sim.schedule(1.0, lambda: None, label="a")
        sim.run()
        assert tracer.current is None


class TestLiteMode:
    """trace_events=False, profile_events=False: the engine inlines the
    per-event hook to context propagation only — both in step() and in
    the batched run()/run_until() loops."""

    def test_lite_flag(self):
        _sim, tracer = traced_sim(trace_events=False, profile_events=False)
        assert tracer.lite
        _sim2, full = traced_sim()
        assert not full.lite

    def test_context_propagates_through_run(self):
        sim, tracer = traced_sim(trace_events=False, profile_events=False)
        with tracer.trace("root") as root:
            sim.schedule(1.0, lambda: tracer.start_span("child").finish(),
                         label="work")
        sim.run()
        child = [s for s in tracer.spans() if s.name == "child"][0]
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_context_propagates_through_run_until(self):
        sim, tracer = traced_sim(trace_events=False, profile_events=False)

        def chain():
            tracer.start_span("hop1").finish()
            sim.schedule(1.0, lambda: tracer.start_span("hop2").finish(),
                         label="later")

        with tracer.trace("root") as root:
            sim.schedule(1.0, chain, label="work")
        sim.run_until(10.0)
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["hop1"].trace_id == root.trace_id
        assert by_name["hop2"].trace_id == root.trace_id

    def test_current_cleared_and_events_counted(self):
        sim, tracer = traced_sim(trace_events=False, profile_events=False)
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None, label="a")
        sim.run()
        assert tracer.current is None
        assert tracer.events_traced == 5

    def test_no_marks_and_no_profile(self):
        sim, tracer = traced_sim(trace_events=False, profile_events=False)
        with tracer.trace("root"):
            sim.schedule(1.0, lambda: None, label="work")
        sim.run()
        assert all(s.kind == "span" for s in tracer.spans())
        assert tracer.profile == {}

    def test_lite_matches_full_span_tree(self):
        """The same seeded workload yields the same span parentage in
        lite and full mode — lite drops marks, not causality."""
        def run(**kwargs):
            sim = Simulator(seed=3)
            tracer = sim.enable_tracing(**kwargs)

            def work(i):
                span = tracer.start_span(f"job{i}")
                sim.schedule(0.5, lambda: span.finish(), label="done")

            with tracer.trace("root"):
                for i in range(3):
                    sim.schedule(float(i + 1), lambda i=i: work(i),
                                 label="work")
            sim.run()
            return {(s.name, s.trace_id) for s in tracer.spans()
                    if s.kind == "span"}

        full = run()
        lite = run(trace_events=False, profile_events=False)
        assert lite == full


class TestRingBuffer:
    def test_capacity_bounds_and_counts_drops(self):
        sim, tracer = traced_sim(capacity=4)
        for i in range(10):
            tracer.start_span(f"s{i}").finish()
        assert len(tracer.spans()) == 4
        assert tracer.dropped == 6
        assert [s.name for s in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_bad_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.enable_tracing(capacity=0)


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        sim, tracer = traced_sim()
        with tracer.trace("op", n=3):
            sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        path = str(tmp_path / "t.jsonl")
        written = tracer.export_jsonl(path)
        records = list(iter_jsonl(path))
        assert written == len(records) == len(tracer.spans())
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "event"}
        op = [r for r in records if r["name"] == "op"][0]
        assert op["attrs"] == {"n": 3}

    def test_profile_records_only_when_asked(self, tmp_path):
        sim, tracer = traced_sim()
        sim.schedule(1.0, lambda: None, label="tick")
        sim.run()
        bare = str(tmp_path / "bare.jsonl")
        full = str(tmp_path / "full.jsonl")
        tracer.export_jsonl(bare)
        tracer.export_jsonl(full, include_profile=True)
        bare_kinds = {r["kind"] for r in iter_jsonl(bare)}
        full_kinds = {r["kind"] for r in iter_jsonl(full)}
        assert "profile" not in bare_kinds and "meta" not in bare_kinds
        assert {"profile", "meta"} <= full_kinds

    def test_same_seed_exports_identical(self, tmp_path):
        def run(path):
            sim, tracer = traced_sim(seed=42)

            def work():
                with tracer.trace("inner", t=sim.now):
                    pass

            with tracer.trace("outer"):
                for i in range(5):
                    sim.schedule(0.5 * (i + 1), work, label=f"w{i}")
            sim.run()
            tracer.export_jsonl(path)

        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        run(a)
        run(b)
        assert open(a, "rb").read() == open(b, "rb").read()


class TestProfile:
    def test_wall_clock_profile_by_label(self):
        sim, tracer = traced_sim()
        sim.schedule(1.0, lambda: None, label="alpha")
        sim.schedule(2.0, lambda: None, label="alpha")
        sim.schedule(3.0, lambda: None, label="beta")
        sim.run()
        assert tracer.profile["alpha"][0] == 2
        assert tracer.profile["beta"][0] == 1
        assert tracer.events_traced == 3
        assert tracer.wall_seconds > 0
        assert tracer.events_per_second > 0


class TestSpansDropped:
    def test_counter_and_back_compat_alias(self):
        sim, tracer = traced_sim(capacity=2)
        for i in range(5):
            tracer.start_span(f"s{i}").finish()
        assert tracer.spans_dropped == 3
        assert tracer.dropped == 3  # legacy alias reads the same counter

    def test_complete_trace_exports_no_dropped_record(self, tmp_path):
        sim, tracer = traced_sim()
        tracer.start_span("only").finish()
        path = str(tmp_path / "t.jsonl")
        tracer.export_jsonl(path)
        assert all(r["kind"] != "dropped" for r in iter_jsonl(path))

    def test_wrapped_trace_exports_dropped_record(self, tmp_path):
        sim, tracer = traced_sim(capacity=3)
        for i in range(8):
            tracer.start_span(f"s{i}").finish()
        path = str(tmp_path / "t.jsonl")
        tracer.export_jsonl(path)
        [record] = [r for r in iter_jsonl(path) if r["kind"] == "dropped"]
        assert record["spans_dropped"] == 5
        assert record["capacity"] == 3

    def test_dropped_record_is_deterministic(self, tmp_path):
        def run(path):
            sim, tracer = traced_sim(seed=9, capacity=2)
            for i in range(6):
                with tracer.trace(f"s{i}"):
                    sim.now += 0.5
            tracer.export_jsonl(path)

        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        run(a)
        run(b)
        assert open(a, "rb").read() == open(b, "rb").read()
