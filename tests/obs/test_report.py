"""Trace analysis: latency tables, critical path, hotspots, rendering."""

from repro.obs.report import (critical_path, hotspots, load_trace,
                              render_report, slowest_span, span_table)
from repro.sim.engine import Simulator


def build_trace(tmp_path, include_profile=False):
    """A three-level async trace: request -> subop -> leaf events."""
    sim = Simulator(seed=1)
    tracer = sim.enable_tracing()

    request = tracer.start_span("request")

    def do_subop():
        sub = tracer.start_span("subop", parent=request)

        def leaf():
            sub.finish()
            request.finish()

        with tracer.activate(sub):
            sim.schedule(2.0, leaf, label="leaf")

    with tracer.activate(request):
        sim.schedule(1.0, do_subop, label="start-subop")
    # An unrelated fast root span, to exercise table ordering.
    with tracer.trace("fast"):
        pass
    sim.run()
    path = str(tmp_path / "trace.jsonl")
    tracer.export_jsonl(path, include_profile=include_profile)
    return load_trace(path)


class TestLoading:
    def test_load_counts(self, tmp_path):
        trace = build_trace(tmp_path)
        assert len(trace.spans()) == 3
        assert len(trace.events()) == 2
        assert trace.profile == {}

    def test_load_profile(self, tmp_path):
        trace = build_trace(tmp_path, include_profile=True)
        assert set(trace.profile) == {"start-subop", "leaf"}
        assert trace.meta["events"] == 2


class TestSpanTable:
    def test_rows_and_ordering(self, tmp_path):
        trace = build_trace(tmp_path)
        rows = span_table(trace)
        names = [r[0] for r in rows]
        # request (3.0s total) before subop (2.0s) before fast (0s)
        assert names == ["request", "subop", "fast"]
        request_row = rows[0]
        assert request_row[1] == 1
        assert request_row[2] == request_row[3] == request_row[4] == 3.0


class TestCriticalPath:
    def test_follows_ancestors_and_descendants(self, tmp_path):
        trace = build_trace(tmp_path)
        target = slowest_span(trace)
        assert target.name == "request"
        names = [r.name for r in critical_path(trace, target)]
        assert names[0] == "request"
        assert "subop" in names
        assert "leaf" in names

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        trace = load_trace(path)
        assert slowest_span(trace) is None
        assert critical_path(trace) == []


class TestHotspots:
    def test_event_count_fallback(self, tmp_path):
        trace = build_trace(tmp_path)
        rows = hotspots(trace)
        assert {r[0] for r in rows} == {"start-subop", "leaf"}
        assert all(r[2] == 0.0 for r in rows)  # no wall profile

    def test_profile_based(self, tmp_path):
        trace = build_trace(tmp_path, include_profile=True)
        rows = hotspots(trace)
        assert {r[0] for r in rows} == {"start-subop", "leaf"}
        assert abs(sum(r[3] for r in rows) - 1.0) < 1e-9


class TestRender:
    def test_all_sections_present(self, tmp_path):
        trace = build_trace(tmp_path, include_profile=True)
        report = render_report(trace)
        assert "== span latency (simulated time) ==" in report
        assert "== critical path of slowest span: request" in report
        assert "== hotspots by event label ==" in report
        assert "meta:" in report

    def test_render_empty(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        report = render_report(load_trace(path))
        assert "(no spans recorded)" in report
        assert "(no events recorded)" in report


class TestDroppedSpans:
    def build_wrapped(self, tmp_path):
        sim = Simulator(seed=1)
        tracer = sim.enable_tracing(capacity=2, trace_events=False)
        for i in range(7):
            with tracer.trace(f"op{i}"):
                sim.now += 1.0
        path = str(tmp_path / "wrapped.jsonl")
        tracer.export_jsonl(path)
        return load_trace(path)

    def test_loader_surfaces_drop_count(self, tmp_path):
        trace = self.build_wrapped(tmp_path)
        assert trace.dropped == 5
        assert len(trace.spans()) == 2

    def test_render_warns_on_truncation(self, tmp_path):
        report = render_report(self.build_wrapped(tmp_path))
        assert report.startswith("WARNING: 5 spans dropped")
        assert "truncated" in report

    def test_complete_trace_has_no_warning(self, tmp_path):
        report = render_report(build_trace(tmp_path))
        assert "WARNING" not in report


class TestReportJson:
    def test_schema(self, tmp_path):
        from repro.obs.report import report_json

        doc = report_json(build_trace(tmp_path, include_profile=True))
        assert doc["spans"] == 3
        assert doc["events"] == 2
        assert doc["dropped"] == 0
        names = [row["name"] for row in doc["span_table"]]
        assert names == ["request", "subop", "fast"]
        assert doc["span_table"][0]["mean_s"] == 3.0
        assert doc["critical_path"][0]["name"] == "request"
        assert {h["label"] for h in doc["hotspots"]} \
            == {"start-subop", "leaf"}
        assert doc["meta"]["events"] == 2

    def test_dropped_visible_in_json(self, tmp_path):
        from repro.obs.report import report_json

        trace = TestDroppedSpans().build_wrapped(tmp_path)
        assert report_json(trace)["dropped"] == 5

    def test_json_serializable(self, tmp_path):
        import json

        from repro.obs.report import report_json

        doc = report_json(build_trace(tmp_path, include_profile=True))
        json.dumps(doc, sort_keys=True)
