"""Dashboard rendering from exported artifacts, plus the sparkline."""

import json

import pytest

from repro.metrics.counters import MetricsRegistry
from repro.obs.dashboard import (RunArtifacts, build_html, build_markdown,
                                 sparkline)
from repro.obs.slo import RatioSli, SloMonitor, SloSpec, BurnRule
from repro.obs.timeseries import TimeSeriesDB
from repro.sim.engine import Simulator


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flatline_is_lowest_block(self):
        out = sparkline([(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)])
        assert set(out) == {"▁"}

    def test_peak_maps_to_highest_block(self):
        out = sparkline([(float(t), v)
                         for t, v in enumerate([0, 1, 9, 1, 0])], width=5)
        assert "█" in out
        assert out[0] == "▁"

    def test_bucketed_to_width(self):
        points = [(float(t), float(t % 3)) for t in range(200)]
        assert len(sparkline(points, width=30)) == 30

    def test_burst_survives_bucketing(self):
        # One spike among many flat points must still render as the max.
        points = [(float(t), 100.0 if t == 57 else 1.0) for t in range(100)]
        assert "█" in sparkline(points, width=10)


def fixture_artifacts(tmp_path):
    """Run a tiny instrumented sim and load its exports as RunArtifacts."""
    sim = Simulator(seed=5)
    tracer = sim.enable_tracing()
    reg = MetricsRegistry(namespace="svc")
    total = reg.counter("requests", "")
    bad = reg.counter("errors", "")
    db = TimeSeriesDB(sim, interval=0.25)
    db.add_registry(reg, source="client")
    spec = SloSpec(
        "svc-availability", "svc", 0.9,
        RatioSli(total=("client/svc.requests",), bad=("client/svc.errors",)),
        rules=(BurnRule("fast", 2.0, 0.5, 2.0),))
    monitor = SloMonitor(sim, db, [spec], interval=0.5)
    db.start()
    monitor.start()

    def traffic():
        with tracer.trace("svc.request"):
            total.inc(2)
            if sim.now < 3.0:
                bad.inc(1)
        if sim.now < 6.0:
            sim.schedule(0.25, traffic, label="svc.tick")

    sim.schedule(0.25, traffic, label="svc.tick")
    sim.run()
    monitor.finish()

    trace_path = tmp_path / "trace.jsonl"
    tsdb_path = tmp_path / "tsdb.jsonl"
    slo_path = tmp_path / "slo.jsonl"
    faults_path = tmp_path / "faults.jsonl"
    profile_path = tmp_path / "profile.json"
    tracer.export_jsonl(str(trace_path))
    db.export_jsonl(str(tsdb_path))
    monitor.export_jsonl(str(slo_path))
    faults_path.write_text(json.dumps(
        {"t": 0.5, "event": "link_flap_start", "target": "hpop-x"}) + "\n")
    profile_path.write_text(json.dumps({
        "events": 42, "wall_seconds": 0.01, "sim_seconds": 6.0,
        "wall_sim_ratio": 0.0017, "events_per_second": 4200.0,
        "labels": {"svc.tick": {"count": 24, "wall_s": 0.008}}}))

    return RunArtifacts.load(
        trace_path=str(trace_path), tsdb_path=str(tsdb_path),
        faults_path=str(faults_path), slo_path=str(slo_path),
        profile_path=str(profile_path), title="unit fixture")


class TestRunArtifacts:
    def test_load_all(self, tmp_path):
        art = fixture_artifacts(tmp_path)
        assert art.trace is not None and art.trace.records
        assert art.tsdb
        assert art.faults[0]["event"] == "link_flap_start"
        assert [e["state"] for e in art.slo_events if "state" in e]
        assert len(art.slo_verdicts) == 1
        assert art.profile["events"] == 42

    def test_partial_load(self, tmp_path):
        art = fixture_artifacts(tmp_path)
        partial = RunArtifacts.load(tsdb_path=None, trace_path=None)
        assert partial.trace is None
        assert partial.tsdb == {}
        # Rendering a near-empty artifact set must not raise.
        assert "Run dashboard" in build_markdown(partial)
        assert "<html>" in build_html(partial)
        del art

    def test_correlations(self, tmp_path):
        art = fixture_artifacts(tmp_path)
        rows = art.correlations(lookback=10.0)
        assert rows  # the alert fired
        assert rows[0]["causes"][0]["event"] == "link_flap_start"


class TestMarkdown:
    def test_sections_present(self, tmp_path):
        md = build_markdown(fixture_artifacts(tmp_path))
        assert md.startswith("# Run dashboard — unit fixture")
        assert "## SLO verdicts" in md
        assert "## Burn-rate alerts and correlated faults" in md
        assert "likely cause: t=0.50 link_flap_start on hpop-x" in md
        assert "## Fault timeline" in md
        assert "## Key time series" in md
        assert "## Span latency" in md
        assert "## Event-loop profile" in md
        assert "VIOLATED" in md  # 50% errors against a 10% budget

    def test_alert_line_shows_burn(self, tmp_path):
        md = build_markdown(fixture_artifacts(tmp_path))
        assert "`svc-availability`" in md
        assert "burn " in md


class TestHtml:
    def test_self_contained_page(self, tmp_path):
        html = build_html(fixture_artifacts(tmp_path))
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "src=" not in html  # no external assets
        assert "unit fixture" in html
        assert 'class="violated"' in html
        assert "link_flap_start" in html

    def test_escapes_artifact_strings(self, tmp_path):
        art = fixture_artifacts(tmp_path)
        art.title = "<script>alert(1)</script>"
        html = build_html(art)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html


def control_fixture(tmp_path):
    """fixture_artifacts plus a control decision log joined in."""
    art = fixture_artifacts(tmp_path)
    firing = next(e for e in art.slo_events if e.get("state") == "firing")
    control_path = tmp_path / "control.jsonl"
    records = [
        {"t": firing["t"], "event": "decision", "action": "nocdn.quarantine",
         "target": "peer-x", "trigger": f"alert:{firing['slo']}",
         "outcome": "executed"},
        {"t": firing["t"], "event": "decision", "action": "attic.probe",
         "target": "peer-x", "trigger": f"alert:{firing['slo']}",
         "outcome": "cooldown"},
        {"t": firing["t"] + 2.0, "event": "converged", "slo": firing["slo"],
         "fired_t": firing["t"], "convergence_s": 2.0, "decisions": 1},
    ]
    control_path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records))
    art.control = list(map(json.loads,
                           control_path.read_text().splitlines()))
    return art


class TestControlSection:
    def test_alert_shows_remediation_and_convergence(self, tmp_path):
        art = control_fixture(tmp_path)
        md = build_markdown(art)
        assert "## Remediation decisions" in md
        assert "remediation: nocdn.quarantine on peer-x (executed)" in md
        assert "converged in 2.00s" in md
        assert "1 remediation actions" in md  # cooldown not counted
        html = build_html(art)
        assert "Remediation decisions" in html
        assert "nocdn.quarantine" in html
        assert "converged in 2.00s" in html

    def test_unconverged_alert_is_flagged(self, tmp_path):
        art = control_fixture(tmp_path)
        art.control = [r for r in art.control if r["event"] == "decision"]
        md = build_markdown(art)
        assert "not converged by run end" in md

    def test_dashboard_json_control_block(self, tmp_path):
        from repro.obs.dashboard import dashboard_json

        art = control_fixture(tmp_path)
        payload = dashboard_json(art)
        assert payload["control"]["decisions"] == 2
        assert payload["control"]["executed"] == 1
        assert payload["control"]["by_action"] == {"nocdn.quarantine": 1}
        assert payload["control"]["convergences"][0]["convergence_s"] == 2.0
        alert = payload["alerts"][0]
        assert alert["decisions"] == 2
        assert alert["convergence_s"] == 2.0

    def test_load_control_artifact(self, tmp_path):
        art = control_fixture(tmp_path)
        reloaded = RunArtifacts.load(
            control_path=str(tmp_path / "control.jsonl"))
        assert reloaded.control == art.control
        assert len(reloaded.control_decisions()) == 2
        assert len(reloaded.control_convergences()) == 1

    def test_no_control_log_means_no_section(self, tmp_path):
        md = build_markdown(fixture_artifacts(tmp_path))
        assert "Remediation decisions" not in md
        assert "not converged" not in md
