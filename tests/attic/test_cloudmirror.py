"""Encrypted-cloud-mirror tests: escrowed keys, breach accounting."""

import pytest

from repro.attic.cloudmirror import (
    KEY_ROUTE,
    EncryptedCloudStore,
    KeyEscrowService,
)
from repro.hpop.core import Household, Hpop, User
from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=18)
    city = build_city(sim, homes_per_neighborhood=2,
                      server_sites={"cloud": 1, "saas": 1})
    home = city.neighborhoods[0].homes[0]
    hpop = Hpop(home.hpop_host, city.network,
                Household(name="h", users=[User("ann", "pw")]))
    escrow = hpop.install(KeyEscrowService(release_ttl=100.0))
    hpop.start()
    cloud = EncryptedCloudStore(city.server_sites["cloud"].servers[0])
    saas_host = city.server_sites["saas"].servers[0]
    return sim, city, hpop, escrow, cloud, saas_host


class TestEscrow:
    def test_create_and_authorize(self):
        _sim, _city, _hpop, escrow, _cloud, _saas = build()
        key_id = escrow.create_key("photo.jpg")
        escrow.authorize("editor-app", key_id)
        with pytest.raises(KeyError):
            escrow.authorize("app", "nonexistent-key")

    def test_authorized_app_gets_key_over_http(self):
        sim, city, hpop, escrow, _cloud, saas = build()
        key_id = escrow.create_key("photo.jpg")
        escrow.authorize("editor-app", key_id)
        client = HttpClient(saas, city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("POST", KEY_ROUTE,
                                   body={"application": "editor-app",
                                         "key_id": key_id},
                                   body_size=150),
                       lambda resp, stats: results.append(resp), port=443)
        sim.run()
        assert results[0].ok
        assert "key" in results[0].body
        assert len(escrow.release_log) == 1
        assert escrow.release_log[0].application == "editor-app"

    def test_unauthorized_app_denied(self):
        sim, city, hpop, escrow, _cloud, saas = build()
        key_id = escrow.create_key("photo.jpg")
        client = HttpClient(saas, city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("POST", KEY_ROUTE,
                                   body={"application": "mallory-app",
                                         "key_id": key_id},
                                   body_size=150),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [403]
        assert escrow.release_log == []

    def test_revocation(self):
        sim, city, hpop, escrow, _cloud, saas = build()
        key_id = escrow.create_key("f")
        escrow.authorize("app", key_id)
        escrow.revoke("app", key_id)
        client = HttpClient(saas, city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("POST", KEY_ROUTE,
                                   body={"application": "app",
                                         "key_id": key_id}, body_size=150),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [403]


class TestCloudStore:
    def test_store_and_fetch_ciphertext(self):
        sim, city, _hpop, escrow, cloud, saas = build()
        key_id = escrow.create_key("f")
        cloud.store("ann", "f", 10_000, key_id)
        client = HttpClient(saas, city.network)
        results = []
        client.request(cloud.host,
                       HttpRequest("GET", "/blob",
                                   body={"owner": "ann", "name": "f"}),
                       lambda resp, stats: results.append(resp), port=80)
        sim.run()
        assert results[0].ok
        assert results[0].body.key_id == key_id

    def test_breach_alone_exposes_nothing(self):
        """The paper's point: encrypted cloud + home-held keys means a
        cloud breach yields ciphertext only."""
        _sim, _city, _hpop, escrow, cloud, _saas = build()
        for i in range(5):
            key_id = escrow.create_key(f"f{i}")
            cloud.store("ann", f"f{i}", 1000, key_id)
        blobs = cloud.breach()
        exposed, total = escrow.exposure_after_cloud_breach(blobs)
        assert (exposed, total) == (0, 5)

    def test_key_retaining_app_is_the_exposure(self):
        """...and the residual risk is exactly the trust assumption the
        paper flags: an app that keeps keys past the immediate use."""
        sim, city, hpop, escrow, cloud, saas = build()
        key_ids = []
        for i in range(5):
            key_id = escrow.create_key(f"f{i}")
            key_ids.append(key_id)
            cloud.store("ann", f"f{i}", 1000, key_id)
        # The user authorized a sloppy app for two files; it fetched keys.
        for key_id in key_ids[:2]:
            escrow.authorize("sloppy-app", key_id)
        client = HttpClient(saas, city.network)
        for key_id in key_ids[:2]:
            client.request(hpop.host,
                           HttpRequest("POST", KEY_ROUTE,
                                       body={"application": "sloppy-app",
                                             "key_id": key_id},
                                       body_size=150),
                           lambda resp, stats: None, port=443)
        sim.run()
        blobs = cloud.breach()
        exposed, total = escrow.exposure_after_cloud_breach(
            blobs, applications_retaining_keys={"sloppy-app"})
        assert (exposed, total) == (2, 5)
        # An honest app's releases expose nothing.
        exposed_honest, _ = escrow.exposure_after_cloud_breach(
            blobs, applications_retaining_keys={"other-app"})
        assert exposed_honest == 0
