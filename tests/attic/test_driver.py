"""Attic open/close interposition driver tests."""

import pytest

from repro.attic.driver import AtticDriver, DriverError
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=9)
    city = build_city(sim, homes_per_neighborhood=2,
                      server_sites={"saas": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="h", users=[User("ann", "pw", [home.devices[0]])])
    hpop = Hpop(home.hpop_host, city.network, household)
    attic = hpop.install(DataAtticService())
    hpop.start()
    grant = attic.issue_grant("ann", "saas", sub_path="docs")
    qr = attic.qr_for(grant)
    saas_host = city.server_sites["saas"].servers[0]
    driver = AtticDriver(saas_host, city.network, qr)
    return sim, city, attic, driver


class TestOpenClose:
    def test_open_creates_missing_file_in_write_mode(self):
        sim, _city, attic, driver = build()
        opened = []
        driver.open("report.doc", "w", opened.append,
                    create_size=1000, create_payload="draft")
        sim.run()
        assert len(opened) == 1
        file = opened[0]
        assert file.dirty  # newly created needs writeback
        closed = []
        driver.close(file, lambda: closed.append(1))
        sim.run()
        assert closed == [1]
        assert attic.dav.tree.lookup("/ann/docs/report.doc").content.size == 1000
        assert driver.writebacks == 1

    def test_open_missing_read_mode_errors(self):
        sim, _city, _attic, driver = build()
        errors = []
        driver.open("ghost.doc", "r", lambda f: None, on_error=errors.append)
        sim.run()
        assert len(errors) == 1

    def test_read_modify_writeback_cycle(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=500, payload="v1")
        opened = []
        driver.open("f", "w", opened.append)
        sim.run()
        file = opened[0]
        assert file.read() == "v1"
        assert not file.dirty
        file.write(800, "v2")
        driver.close(file, lambda: None)
        sim.run()
        node = attic.dav.tree.lookup("/ann/docs/f")
        assert node.content.size == 800
        assert node.content.payload == "v2"
        assert node.content.version == 2

    def test_clean_close_skips_writeback(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100, payload="x")
        opened = []
        driver.open("f", "r", opened.append)
        sim.run()
        driver.close(opened[0], lambda: None)
        sim.run()
        assert driver.writebacks == 0
        assert attic.dav.tree.lookup("/ann/docs/f").content.version == 1

    def test_write_in_read_mode_rejected(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100)
        opened = []
        driver.open("f", "r", opened.append)
        sim.run()
        with pytest.raises(DriverError):
            opened[0].write(10, "nope")

    def test_double_open_same_path_rejected(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100)
        opened, errors = [], []
        driver.open("f", "r", opened.append)
        sim.run()
        driver.open("f", "r", opened.append, on_error=errors.append)
        sim.run()
        assert len(opened) == 1 and len(errors) == 1
        assert driver.open_count == 1

    def test_double_close_errors(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100)
        opened = []
        driver.open("f", "r", opened.append)
        sim.run()
        driver.close(opened[0], lambda: None)
        sim.run()
        errors = []
        driver.close(opened[0], lambda: None, on_error=errors.append)
        sim.run()
        assert len(errors) == 1

    def test_closed_file_rejects_io(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100)
        opened = []
        driver.open("f", "r", opened.append)
        sim.run()
        driver.close(opened[0], lambda: None)
        sim.run()
        with pytest.raises(DriverError):
            opened[0].read()

    def test_invalid_mode(self):
        _sim, _city, _attic, driver = build()
        with pytest.raises(ValueError):
            driver.open("f", "a", lambda f: None)


class TestExclusiveOpens:
    def test_exclusive_open_blocks_second_writer(self):
        """SIV-A: multiple applications mediated onto one source file."""
        sim, city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100, payload="v1")
        # A second application on another host, same grant.
        saas2 = city.server_sites["saas"].gateway  # routers are not hosts;
        # use another device instead:
        other_device = city.neighborhoods[0].homes[1].devices[0]
        driver2 = AtticDriver(other_device, city.network, driver.grant)

        opened1, opened2, errors2 = [], [], []
        driver.open("f", "w", opened1.append, exclusive=True)
        sim.run()
        assert len(opened1) == 1
        driver2.open("f", "w", opened2.append, on_error=errors2.append,
                     exclusive=True)
        sim.run()
        assert opened2 == [] and len(errors2) == 1

        # After close, the second writer succeeds.
        driver.close(opened1[0], lambda: None)
        sim.run()
        driver2.open("f", "w", opened2.append, exclusive=True)
        sim.run()
        assert len(opened2) == 1

    def test_exclusive_writeback_releases_lock(self):
        sim, _city, attic, driver = build()
        attic.dav.tree.put("/ann/docs/f", size=100, payload="v1")
        opened = []
        driver.open("f", "w", opened.append, exclusive=True)
        sim.run()
        opened[0].write(200, "v2")
        driver.close(opened[0], lambda: None)
        sim.run()
        assert attic.dav.locks.active_count(sim.now) == 0
        assert attic.dav.tree.lookup("/ann/docs/f").content.payload == "v2"
