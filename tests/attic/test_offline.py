"""Offline-mode device tests: checkout, disconnected edits, reconciliation."""

import pytest

from repro.attic.offline import OfflineDevice, version_from_etag
from repro.attic.reconcile import SyncAction
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=25)
    city = build_city(sim, homes_per_neighborhood=2,
                      server_sites={"away": 1})
    home = city.neighborhoods[0].homes[0]
    hpop = Hpop(home.hpop_host, city.network,
                Household(name="h", users=[User("ann", "pw")]))
    attic = hpop.install(DataAtticService())
    hpop.start()
    grant = attic.issue_grant("ann", "laptop", sub_path="docs")
    attic.dav.tree.put("/ann/docs/thesis.tex", size=100_000, payload="v1")
    laptop = city.server_sites["away"].servers[0]
    device = OfflineDevice(laptop, city.network, attic.qr_for(grant))
    return sim, city, attic, device


def checkout(sim, device, name="thesis.tex"):
    done = []
    device.checkout(name, done.append)
    sim.run()
    assert done == [True]


class TestVersionParsing:
    def test_parses(self):
        assert version_from_etag('"thesis.tex-v3"') == 3
        assert version_from_etag('"a-v10"') == 10

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            version_from_etag("not-an-etag")
        with pytest.raises(ValueError):
            version_from_etag("")


class TestCheckout:
    def test_checkout_captures_version(self):
        sim, _city, _attic, device = build()
        checkout(sim, device)
        state = device.workspace.state_of("thesis.tex")
        assert state.base_version == 1
        assert state.size == 100_000
        assert state.payload == "v1"

    def test_checkout_missing_file_fails(self):
        sim, _city, _attic, device = build()
        done = []
        device.checkout("nope.txt", done.append)
        sim.run()
        assert done == [False]

    def test_offline_checkout_blocked(self):
        sim, _city, _attic, device = build()
        device.go_offline()
        done = []
        device.checkout("thesis.tex", done.append)
        sim.run()
        assert done == [False]


class TestReconcile:
    def test_push_offline_edits(self):
        sim, _city, attic, device = build()
        checkout(sim, device)
        device.go_offline()
        device.edit("thesis.tex", size=120_000, payload="v2-local")
        device.go_online()
        results = []
        device.reconcile_all(results.append)
        sim.run()
        assert [r.action for r in results[0]] == [SyncAction.PUSH]
        node = attic.dav.tree.lookup("/ann/docs/thesis.tex")
        assert node.content.size == 120_000
        assert node.content.payload == "v2-local"
        assert node.content.version == 2

    def test_pull_remote_changes(self):
        sim, _city, attic, device = build()
        checkout(sim, device)
        device.go_offline()
        # Someone at home edits while the laptop is away.
        attic.dav.tree.put("/ann/docs/thesis.tex", size=130_000,
                           payload="v2-home")
        device.go_online()
        results = []
        device.reconcile_all(results.append)
        sim.run()
        assert [r.action for r in results[0]] == [SyncAction.PULL]
        state = device.workspace.state_of("thesis.tex")
        assert state.payload == "v2-home"
        assert state.base_version == 2

    def test_conflict_preserves_both_sides_in_attic(self):
        sim, _city, attic, device = build()
        checkout(sim, device)
        device.go_offline()
        device.edit("thesis.tex", size=111_000, payload="laptop-edit")
        attic.dav.tree.put("/ann/docs/thesis.tex", size=222_000,
                           payload="home-edit")
        device.go_online()
        results = []
        device.reconcile_all(results.append)
        sim.run()
        result = results[0][0]
        assert result.action is SyncAction.CONFLICT
        # The attic keeps the home edit at the original name...
        main = attic.dav.tree.lookup("/ann/docs/thesis.tex")
        assert main.content.payload == "home-edit"
        # ...and gains a conflict copy carrying the laptop's work.
        conflict_node = attic.dav.tree.lookup(
            f"/ann/docs/{result.conflict_copy}")
        assert conflict_node.content.payload == "laptop-edit"
        assert conflict_node.content.size == 111_000
        # The device adopted the attic version.
        assert device.workspace.state_of("thesis.tex").payload == "home-edit"

    def test_noop_when_nothing_changed(self):
        sim, _city, _attic, device = build()
        checkout(sim, device)
        results = []
        device.reconcile_all(results.append)
        sim.run()
        assert [r.action for r in results[0]] == [SyncAction.NOOP]

    def test_multiple_files_mixed_outcomes(self):
        sim, _city, attic, device = build()
        attic.dav.tree.put("/ann/docs/notes.md", size=5_000, payload="n1")
        checkout(sim, device, "thesis.tex")
        checkout(sim, device, "notes.md")
        device.go_offline()
        device.edit("notes.md", size=6_000, payload="n2-local")
        attic.dav.tree.put("/ann/docs/thesis.tex", size=140_000,
                           payload="v2-home")
        device.go_online()
        results = []
        device.reconcile_all(results.append)
        sim.run()
        by_name = {r.name: r.action for r in results[0]}
        assert by_name == {"notes.md": SyncAction.PUSH,
                           "thesis.tex": SyncAction.PULL}

    def test_reconcile_while_offline_raises(self):
        sim, _city, _attic, device = build()
        checkout(sim, device)
        device.go_offline()
        with pytest.raises(RuntimeError):
            device.reconcile_all(lambda results: None)

    def test_empty_workspace_reconciles_trivially(self):
        sim, _city, _attic, device = build()
        results = []
        device.reconcile_all(results.append)
        sim.run()
        assert results == [[]]
