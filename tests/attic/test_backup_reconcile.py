"""Backup strategy and offline-reconciliation tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attic.backup import (
    ColdCloudBackup,
    ErasureCodedBackup,
    FailureState,
    LocalDiskBackup,
    NoBackup,
    PeerReplication,
    analytic_availability,
    repair_placement,
    shards_lost,
    simulate_availability,
)
from repro.attic.reconcile import OfflineWorkspace, SyncAction

PEERS = [f"home-{i}" for i in range(10)]


class TestStrategies:
    def test_no_backup_follows_home(self):
        strategy = NoBackup()
        placement = strategy.place("me", PEERS)
        assert strategy.available(placement, FailureState())
        assert not strategy.available(placement,
                                      FailureState(down_homes=frozenset({"me"})))
        assert strategy.storage_overhead() == 1.0

    def test_local_disk_recoverable_but_not_available(self):
        strategy = LocalDiskBackup()
        placement = strategy.place("me", PEERS)
        down = FailureState(down_homes=frozenset({"me"}))
        assert not strategy.available(placement, down)
        assert strategy.recoverable(placement, down)

    def test_cold_cloud_recovery_survives_home_loss(self):
        strategy = ColdCloudBackup()
        placement = strategy.place("me", PEERS)
        down = FailureState(down_homes=frozenset({"me"}))
        assert strategy.recoverable(placement, down)
        assert not strategy.recoverable(
            placement, FailureState(down_homes=frozenset({"me"}), cloud_down=True))

    def test_peer_replication_survives_owner_loss(self):
        strategy = PeerReplication(replicas=2)
        placement = strategy.place("me", PEERS)
        assert len(placement.replica_homes) == 2
        down_owner = FailureState(down_homes=frozenset({"me"}))
        assert strategy.available(placement, down_owner)
        all_down = FailureState(
            down_homes=frozenset({"me", *placement.replica_homes}))
        assert not strategy.available(placement, all_down)

    def test_peer_replication_needs_enough_peers(self):
        with pytest.raises(ValueError):
            PeerReplication(replicas=3).place("me", ["me", "a"])
        with pytest.raises(ValueError):
            PeerReplication(replicas=0)

    def test_erasure_needs_k_shards(self):
        strategy = ErasureCodedBackup(k=3, m=2)
        placement = strategy.place("me", PEERS)
        assert len(placement.shard_homes) == 5
        # Owner down, 2 shard homes down: 3 remain = k -> available.
        state = FailureState(down_homes=frozenset(
            {"me", *placement.shard_homes[:2]}))
        assert strategy.available(placement, state)
        # 3 shard homes down: only 2 remain < k -> unavailable.
        state = FailureState(down_homes=frozenset(
            {"me", *placement.shard_homes[:3]}))
        assert not strategy.available(placement, state)

    def test_repair_placement_swaps_dead_shard_homes(self):
        strategy = ErasureCodedBackup(k=3, m=2)
        placement = strategy.place("me", PEERS)
        dead = frozenset(placement.shard_homes[:2])
        state = FailureState(down_homes=dead)
        assert set(shards_lost(placement, state)) == dead
        repaired, count = repair_placement(placement, state, PEERS)
        assert count == 2
        assert not shards_lost(repaired, state)
        # Healthy homes keep their shards; replacements are fresh peers.
        assert repaired.shard_homes[2:] == placement.shard_homes[2:]
        assert not set(repaired.shard_homes) & dead
        assert len(set(repaired.shard_homes)) == len(repaired.shard_homes)
        # After repair the strategy is back to full m-loss tolerance.
        state2 = FailureState(down_homes=frozenset(
            {"me", *repaired.shard_homes[:2]}))
        assert strategy.available(repaired, state2)

    def test_repair_placement_partial_when_peers_scarce(self):
        strategy = ErasureCodedBackup(k=3, m=2)
        peers = PEERS[:6]  # 5 shard homes + 1 spare
        placement = strategy.place("me", peers)
        state = FailureState(down_homes=frozenset(placement.shard_homes[:2]))
        repaired, count = repair_placement(placement, state, peers)
        assert count == 1  # only one healthy unused peer existed
        assert len(shards_lost(repaired, state)) == 1

    def test_erasure_cheaper_than_equivalent_replication(self):
        """The classic trade: 4+2 erasure tolerates 2 losses at 2.5x
        storage; 2-replica replication tolerates 2 losses at 3x."""
        erasure = ErasureCodedBackup(k=4, m=2)
        replication = PeerReplication(replicas=2)
        assert erasure.storage_overhead() < replication.storage_overhead()


class TestAvailabilityMath:
    def test_simulated_matches_analytic(self):
        rng = random.Random(42)
        p_up = 0.9
        for strategy in (NoBackup(), PeerReplication(replicas=2),
                         ErasureCodedBackup(k=3, m=2)):
            simulated = simulate_availability(
                strategy, "me", PEERS, p_up, trials=4000, rng=rng)
            analytic = analytic_availability(strategy, p_up)
            assert simulated == pytest.approx(analytic, abs=0.03)

    def test_replication_beats_no_backup(self):
        rng = random.Random(1)
        base = simulate_availability(NoBackup(), "me", PEERS, 0.9, 2000, rng)
        replicated = simulate_availability(
            PeerReplication(2), "me", PEERS, 0.9, 2000, rng)
        assert replicated > base

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            simulate_availability(NoBackup(), "me", PEERS, 1.5, 10,
                                  random.Random(0))

    @settings(max_examples=20, deadline=None)
    @given(p=st.floats(min_value=0.5, max_value=0.999))
    def test_property_analytic_ordering(self, p):
        """More redundancy never hurts availability."""
        none = analytic_availability(NoBackup(), p)
        rep1 = analytic_availability(PeerReplication(1), p)
        rep2 = analytic_availability(PeerReplication(2), p)
        assert none <= rep1 <= rep2


class TestReconciliation:
    def test_noop(self):
        ws = OfflineWorkspace()
        ws.checkout("f", attic_version=3, size=10)
        result = ws.reconcile("f", attic_version=3, attic_size=10)
        assert result.action is SyncAction.NOOP

    def test_push_local_changes(self):
        ws = OfflineWorkspace()
        ws.checkout("f", attic_version=3, size=10)
        ws.edit("f", size=20, payload="local")
        result = ws.reconcile("f", attic_version=3, attic_size=10)
        assert result.action is SyncAction.PUSH
        assert result.new_base_version == 4
        # After push, another reconcile against v4 is a no-op.
        assert ws.reconcile("f", 4, 20).action is SyncAction.NOOP

    def test_pull_remote_changes(self):
        ws = OfflineWorkspace()
        ws.checkout("f", attic_version=3, size=10, payload="old")
        result = ws.reconcile("f", attic_version=5, attic_size=30,
                              attic_payload="newer")
        assert result.action is SyncAction.PULL
        assert ws.state_of("f").payload == "newer"
        assert ws.state_of("f").base_version == 5

    def test_conflict_preserves_both(self):
        ws = OfflineWorkspace()
        ws.checkout("f", attic_version=3, size=10, payload="base")
        ws.edit("f", size=15, payload="mine")
        result = ws.reconcile("f", attic_version=4, attic_size=12,
                              attic_payload="theirs")
        assert result.action is SyncAction.CONFLICT
        assert result.conflict_copy in ws.conflict_copies
        assert ws.conflict_copies[result.conflict_copy].payload == "mine"
        assert ws.state_of("f").payload == "theirs"

    def test_edit_requires_checkout(self):
        ws = OfflineWorkspace()
        with pytest.raises(KeyError):
            ws.edit("ghost", size=1)

    def test_files_listing(self):
        ws = OfflineWorkspace()
        ws.checkout("b", 1, 1)
        ws.checkout("a", 1, 1)
        assert ws.files() == ["a", "b"]
