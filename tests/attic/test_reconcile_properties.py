"""Property-based tests for the offline reconciliation state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attic.reconcile import OfflineWorkspace, SyncAction

# An operation stream: local edits, remote (attic-side) edits, reconciles.
OPS = st.lists(st.sampled_from(["local", "remote", "sync"]),
               min_size=1, max_size=40)


@settings(max_examples=100, deadline=None)
@given(ops=OPS)
def test_property_no_work_is_ever_silently_lost(ops):
    """Whatever interleaving of edits and syncs occurs, every local edit
    either reaches the attic (PUSH) or survives as a conflict copy."""
    ws = OfflineWorkspace()
    attic_version = 1
    attic_payload = "attic-0"
    ws.checkout("f", attic_version, size=10, payload=attic_payload)
    local_edit_counter = 0
    remote_edit_counter = 0
    pushed_payloads = set()
    pending_local = None  # the as-yet-unsynced local payload, if any
    synced = True         # no un-reconciled divergence right now

    for op in ops:
        if op == "local":
            local_edit_counter += 1
            pending_local = f"local-{local_edit_counter}"
            ws.edit("f", size=10, payload=pending_local)
            synced = False
        elif op == "remote":
            remote_edit_counter += 1
            attic_version += 1
            attic_payload = f"remote-{remote_edit_counter}"
            synced = False
        else:  # sync
            result = ws.reconcile("f", attic_version, attic_size=10,
                                  attic_payload=attic_payload)
            if result.action is SyncAction.PUSH:
                # The attic now holds the local payload.
                attic_version = result.new_base_version
                attic_payload = pending_local
                pushed_payloads.add(pending_local)
                pending_local = None
            elif result.action is SyncAction.CONFLICT:
                copy = ws.conflict_copies[result.conflict_copy]
                assert copy.payload == pending_local
                pending_local = None
            elif result.action is SyncAction.PULL:
                assert ws.state_of("f").payload == attic_payload
            synced = True

    # Invariants at the end of any run:
    state = ws.state_of("f")
    if synced:
        # Everything reconciled: local view matches the attic.
        assert not state.locally_modified
        assert state.base_version == attic_version
        assert pending_local is None
    # Every conflict copy preserved a distinct local edit.
    conflict_payloads = {c.payload for c in ws.conflict_copies.values()}
    assert all(p.startswith("local-") for p in conflict_payloads)
    # A payload cannot be both pushed and conflict-copied.
    assert not (pushed_payloads & conflict_payloads)


@settings(max_examples=60, deadline=None)
@given(rounds=st.integers(min_value=1, max_value=20))
def test_property_sync_is_idempotent(rounds):
    """Reconciling repeatedly with no intervening changes is a no-op."""
    ws = OfflineWorkspace()
    ws.checkout("f", 3, size=5, payload="x")
    for _ in range(rounds):
        result = ws.reconcile("f", 3, attic_size=5, attic_payload="x")
        assert result.action is SyncAction.NOOP
    assert ws.conflict_copies == {}
