"""Peer-backup service tests: shard placement and restore over the network."""

import pytest

from repro.attic.backup_service import PeerBackupService, file_backup_bytes
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator
from repro.util.units import kib


def build(num_friends=6, k=3, m=2, seed=17):
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=num_friends + 2)
    services = []
    for i in range(num_friends + 1):  # index 0 is the owner
        home = city.neighborhoods[0].homes[i]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name=f"h{i}", users=[User("u", "p")]))
        hpop.install(DataAtticService())
        svc = hpop.install(PeerBackupService(k=k, m=m))
        hpop.start()
        services.append(svc)
    owner = services[0]
    for friend in services[1:]:
        owner.add_friend(friend)
    return sim, city, owner, services


def put_file(owner, path, size):
    attic = owner.hpop.service("attic")
    parent = "/".join(path.split("/")[:-1]) or "/"
    attic.dav.tree.mkcol_recursive(parent)
    attic.dav.tree.put(path, size=size, payload="original")


class TestBackup:
    def test_backup_spreads_shards(self):
        sim, _city, owner, services = build()
        put_file(owner, "/u0/photos.tar", kib(200))
        done = []
        owner.backup_file("/u0/photos.tar", done.append)
        sim.run()
        assert done == [True]
        assert "/u0/photos.tar" in owner.manifest
        holders = [s for s in services[1:] if s.held_shards]
        assert len(holders) == 5  # k + m friends hold one shard each
        assert owner.shards_sent == 5

    def test_backup_needs_enough_friends(self):
        sim, _city, owner, _services = build(num_friends=3, k=3, m=2)
        put_file(owner, "/u0/f", 1000)
        with pytest.raises(ValueError):
            owner.backup_file("/u0/f", lambda ok: None)

    def test_backup_collection_rejected(self):
        sim, _city, owner, _services = build()
        owner.hpop.service("attic").dav.tree.mkcol("/dir")
        with pytest.raises(ValueError):
            owner.backup_file("/dir", lambda ok: None)

    def test_backup_all(self):
        sim, _city, owner, _services = build()
        put_file(owner, "/u0/a", 1000)
        put_file(owner, "/u0/b", 2000)
        results = []
        owner.backup_all(lambda ok, total: results.append((ok, total)))
        sim.run()
        assert results == [(2, 2)]
        assert owner.backed_up_bytes() == 3000

    def test_backup_all_empty(self):
        sim, _city, owner, _services = build()
        # Remove the user's auto-created (empty) collection content.
        results = []
        owner.backup_all(lambda ok, total: results.append((ok, total)))
        sim.run()
        assert results == [(0, 0)]

    def test_storage_overhead(self):
        _sim, _city, owner, _services = build(k=4, m=2)
        assert owner.storage_overhead() == pytest.approx(1.5)


class TestRestore:
    def backed_up_world(self):
        sim, city, owner, services = build()
        put_file(owner, "/u0/docs/tax.pdf", kib(120))
        done = []
        owner.backup_file("/u0/docs/tax.pdf", done.append)
        sim.run()
        assert done == [True]
        return sim, city, owner, services

    def test_restore_after_local_deletion(self):
        sim, _city, owner, _services = self.backed_up_world()
        attic = owner.hpop.service("attic")
        attic.dav.tree.delete("/u0/docs/tax.pdf")
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [True]
        node = attic.dav.tree.lookup("/u0/docs/tax.pdf")
        assert node.content.size == kib(120)

    def test_restore_tolerates_m_dead_friends(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = [s for s in services[1:] if s.held_shards]
        # Kill m=2 of the 5 shard holders.
        for dead in holders[:2]:
            dead.hpop.shutdown()
        attic = owner.hpop.service("attic")
        attic.dav.tree.delete("/u0/docs/tax.pdf")
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [True]

    def test_restore_fails_below_k_shards(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = [s for s in services[1:] if s.held_shards]
        for dead in holders[:3]:  # only 2 of 5 survive < k=3
            dead.hpop.shutdown()
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [False]

    def test_restore_onto_replacement_appliance(self):
        """The whole-home-loss scenario: a new HPoP gets the data back."""
        sim, city, owner, services = self.backed_up_world()
        owner.hpop.shutdown()  # the house burned down
        # A replacement appliance in a new home, same friends.
        home = city.neighborhoods[0].homes[len(services)]
        new_hpop = Hpop(home.hpop_host, city.network,
                        Household(name="new", users=[User("u", "p")]))
        new_attic = new_hpop.install(DataAtticService())
        replacement = new_hpop.install(PeerBackupService(k=3, m=2))
        new_hpop.start()
        for friend in services[1:]:
            replacement.add_friend(friend)
        # The manifest survives (e.g. printed QR / cloud-noted); copy it.
        replacement.manifest = dict(owner.manifest)
        restored = []
        replacement.restore_file("/u0/docs/tax.pdf", restored.append,
                                 target_attic=new_attic)
        sim.run()
        assert restored == [True]
        assert new_attic.dav.tree.exists("/u0/docs/tax.pdf")

    def test_restore_unknown_path(self):
        sim, _city, owner, _services = build()
        with pytest.raises(KeyError):
            owner.restore_file("/never/backed/up", lambda ok: None)

    def test_friend_accounting(self):
        sim, _city, owner, services = self.backed_up_world()
        total_stored = sum(s.bytes_stored_for_friends for s in services[1:])
        # k=3 data shards of ~40 KiB each + 2 parity = ~5/3 of the file.
        assert total_stored >= kib(120)
        assert all(s.shards_received <= 1 for s in services[1:])

    def test_cannot_befriend_self(self):
        _sim, _city, owner, _services = build()
        with pytest.raises(ValueError):
            owner.add_friend(owner)


class TestCanonicalBytes:
    def test_deterministic_and_version_sensitive(self):
        a = file_backup_bytes("/f", 1, 100)
        b = file_backup_bytes("/f", 1, 100)
        c = file_backup_bytes("/f", 2, 100)
        assert a == b and a != c and len(a) == 100
