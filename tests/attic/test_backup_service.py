"""Peer-backup service tests: shard placement and restore over the network."""

import pytest

from repro.attic.backup_service import PeerBackupService, file_backup_bytes
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator
from repro.util.units import kib


def build(num_friends=6, k=3, m=2, seed=17):
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=num_friends + 2)
    services = []
    for i in range(num_friends + 1):  # index 0 is the owner
        home = city.neighborhoods[0].homes[i]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name=f"h{i}", users=[User("u", "p")]))
        hpop.install(DataAtticService())
        svc = hpop.install(PeerBackupService(k=k, m=m))
        hpop.start()
        services.append(svc)
    owner = services[0]
    for friend in services[1:]:
        owner.add_friend(friend)
    return sim, city, owner, services


def put_file(owner, path, size):
    attic = owner.hpop.service("attic")
    parent = "/".join(path.split("/")[:-1]) or "/"
    attic.dav.tree.mkcol_recursive(parent)
    attic.dav.tree.put(path, size=size, payload="original")


class TestBackup:
    def test_backup_spreads_shards(self):
        sim, _city, owner, services = build()
        put_file(owner, "/u0/photos.tar", kib(200))
        done = []
        owner.backup_file("/u0/photos.tar", done.append)
        sim.run()
        assert done == [True]
        assert "/u0/photos.tar" in owner.manifest
        holders = [s for s in services[1:] if s.held_shards]
        assert len(holders) == 5  # k + m friends hold one shard each
        assert owner.shards_sent == 5

    def test_backup_needs_enough_friends(self):
        sim, _city, owner, _services = build(num_friends=3, k=3, m=2)
        put_file(owner, "/u0/f", 1000)
        with pytest.raises(ValueError):
            owner.backup_file("/u0/f", lambda ok: None)

    def test_backup_collection_rejected(self):
        sim, _city, owner, _services = build()
        owner.hpop.service("attic").dav.tree.mkcol("/dir")
        with pytest.raises(ValueError):
            owner.backup_file("/dir", lambda ok: None)

    def test_backup_all(self):
        sim, _city, owner, _services = build()
        put_file(owner, "/u0/a", 1000)
        put_file(owner, "/u0/b", 2000)
        results = []
        owner.backup_all(lambda ok, total: results.append((ok, total)))
        sim.run()
        assert results == [(2, 2)]
        assert owner.backed_up_bytes() == 3000

    def test_backup_all_empty(self):
        sim, _city, owner, _services = build()
        # Remove the user's auto-created (empty) collection content.
        results = []
        owner.backup_all(lambda ok, total: results.append((ok, total)))
        sim.run()
        assert results == [(0, 0)]

    def test_storage_overhead(self):
        _sim, _city, owner, _services = build(k=4, m=2)
        assert owner.storage_overhead() == pytest.approx(1.5)


class TestRestore:
    def backed_up_world(self):
        sim, city, owner, services = build()
        put_file(owner, "/u0/docs/tax.pdf", kib(120))
        done = []
        owner.backup_file("/u0/docs/tax.pdf", done.append)
        sim.run()
        assert done == [True]
        return sim, city, owner, services

    def test_restore_after_local_deletion(self):
        sim, _city, owner, _services = self.backed_up_world()
        attic = owner.hpop.service("attic")
        attic.dav.tree.delete("/u0/docs/tax.pdf")
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [True]
        node = attic.dav.tree.lookup("/u0/docs/tax.pdf")
        assert node.content.size == kib(120)

    def test_restore_tolerates_m_dead_friends(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = [s for s in services[1:] if s.held_shards]
        # Kill m=2 of the 5 shard holders.
        for dead in holders[:2]:
            dead.hpop.shutdown()
        attic = owner.hpop.service("attic")
        attic.dav.tree.delete("/u0/docs/tax.pdf")
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [True]

    def test_restore_fails_below_k_shards(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = [s for s in services[1:] if s.held_shards]
        for dead in holders[:3]:  # only 2 of 5 survive < k=3
            dead.hpop.shutdown()
        restored = []
        owner.restore_file("/u0/docs/tax.pdf", restored.append)
        sim.run()
        assert restored == [False]

    def test_restore_onto_replacement_appliance(self):
        """The whole-home-loss scenario: a new HPoP gets the data back."""
        sim, city, owner, services = self.backed_up_world()
        owner.hpop.shutdown()  # the house burned down
        # A replacement appliance in a new home, same friends.
        home = city.neighborhoods[0].homes[len(services)]
        new_hpop = Hpop(home.hpop_host, city.network,
                        Household(name="new", users=[User("u", "p")]))
        new_attic = new_hpop.install(DataAtticService())
        replacement = new_hpop.install(PeerBackupService(k=3, m=2))
        new_hpop.start()
        for friend in services[1:]:
            replacement.add_friend(friend)
        # The manifest survives (e.g. printed QR / cloud-noted); copy it.
        replacement.manifest = dict(owner.manifest)
        restored = []
        replacement.restore_file("/u0/docs/tax.pdf", restored.append,
                                 target_attic=new_attic)
        sim.run()
        assert restored == [True]
        assert new_attic.dav.tree.exists("/u0/docs/tax.pdf")

    def test_restore_unknown_path(self):
        sim, _city, owner, _services = build()
        with pytest.raises(KeyError):
            owner.restore_file("/never/backed/up", lambda ok: None)

    def test_friend_accounting(self):
        sim, _city, owner, services = self.backed_up_world()
        total_stored = sum(s.bytes_stored_for_friends for s in services[1:])
        # k=3 data shards of ~40 KiB each + 2 parity = ~5/3 of the file.
        assert total_stored >= kib(120)
        assert all(s.shards_received <= 1 for s in services[1:])

    def test_cannot_befriend_self(self):
        _sim, _city, owner, _services = build()
        with pytest.raises(ValueError):
            owner.add_friend(owner)


class TestRepair:
    """Peer failure injection: lost shards are rebuilt and re-placed."""

    def backed_up_world(self, num_friends=8, k=3, m=2):
        sim, city, owner, services = build(num_friends=num_friends, k=k, m=m)
        put_file(owner, "/u0/docs/tax.pdf", kib(120))
        done = []
        owner.backup_file("/u0/docs/tax.pdf", done.append)
        sim.run()
        assert done == [True]
        return sim, city, owner, services

    def holders_of(self, owner, services, path="/u0/docs/tax.pdf"):
        names = set(owner.manifest[path].shard_holders)
        return [s for s in services[1:] if s.owner_name in names]

    def test_repair_replaces_dead_holders(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = self.holders_of(owner, services)
        dead = holders[:2]
        for svc in dead:
            svc.hpop.shutdown()
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append((ok, n)))
        sim.run()
        assert results == [(True, 2)]
        entry = owner.manifest["/u0/docs/tax.pdf"]
        dead_names = {d.owner_name for d in dead}
        # Dead peers are out of the manifest; replacements are alive and
        # actually hold the shard index they were assigned.
        assert not dead_names & set(entry.shard_holders)
        by_name = {s.owner_name: s for s in services[1:]}
        for index, holder_name in enumerate(entry.shard_holders):
            holder = by_name[holder_name]
            assert holder.hpop.running
            key = (owner.owner_name, "/u0/docs/tax.pdf", index)
            assert key in holder.held_shards
        assert owner.metrics.value("shards_repaired") == 2
        assert owner.metrics.value("repair_bytes") > 0

    def test_payload_stays_decodable_through_successive_failures(self):
        # Kill peers mid-simulation in waves; repair between waves; the
        # file must remain restorable the whole time.
        sim, _city, owner, services = self.backed_up_world(num_friends=10)
        attic = owner.hpop.service("attic")
        for wave in range(3):
            victim_name = owner.manifest["/u0/docs/tax.pdf"].shard_holders[0]
            victim = next(s for s in services[1:]
                          if s.owner_name == victim_name)
            victim.hpop.shutdown()
            repaired = []
            owner.repair_file("/u0/docs/tax.pdf",
                              lambda ok, n: repaired.append((ok, n)))
            sim.run()
            assert repaired == [(True, 1)], f"wave {wave}"
            attic.dav.tree.delete("/u0/docs/tax.pdf")
            restored = []
            owner.restore_file("/u0/docs/tax.pdf", restored.append)
            sim.run()
            assert restored == [True], f"wave {wave}"
        assert owner.metrics.value("shards_repaired") == 3
        assert owner.metrics.value("repairs_succeeded") == 3

    def test_repair_noop_when_all_holders_alive(self):
        sim, _city, owner, _services = self.backed_up_world()
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append((ok, n)))
        sim.run()
        assert results == [(True, 0)]
        assert owner.metrics.value("shards_repaired") == 0

    def test_repair_fails_below_k_survivors(self):
        sim, _city, owner, services = self.backed_up_world()
        holders = self.holders_of(owner, services)
        for svc in holders[:3]:  # 2 of 5 survive < k=3
            svc.hpop.shutdown()
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append((ok, n)))
        sim.run()
        assert results == [(False, 0)]
        assert owner.metrics.value("repairs_failed") == 1

    def test_repair_all(self):
        sim, _city, owner, services = self.backed_up_world()
        put_file(owner, "/u0/more.bin", kib(40))
        done = []
        owner.backup_file("/u0/more.bin", done.append)
        sim.run()
        assert done == [True]
        victim = self.holders_of(owner, services)[0]
        victim.hpop.shutdown()
        results = []
        owner.repair_all(lambda ok, total, shards:
                         results.append((ok, total, shards)))
        sim.run()
        (ok, total, shards), = results
        assert ok == total == 2
        assert shards >= 1  # the victim held a shard of at least one file

    def test_repair_retries_transient_store_failure(self):
        from repro.attic.backup_service import SHARD_ROUTE
        from repro.http.messages import HttpResponse

        sim, _city, owner, services = self.backed_up_world()
        victim = self.holders_of(owner, services)[0]
        victim.hpop.shutdown()
        # Inject one transient failure: the first repair "store" anywhere
        # in the fleet gets a 503, the retry goes through untouched.
        flaky = {"left": 1}
        for svc in services[1:]:
            if not svc.hpop.running:
                continue
            for route in svc.hpop.http._routes[""]:
                if route.prefix != SHARD_ROUTE:
                    continue
                real = route.handler

                def wrapper(request, real=real):
                    body = request.body if isinstance(request.body, dict) else {}
                    if body.get("action") == "store" and flaky["left"] > 0:
                        flaky["left"] -= 1
                        return HttpResponse(503, body_size=20, body="busy")
                    return real(request)

                route.handler = wrapper
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append((ok, n)))
        sim.run()
        assert results == [(True, 1)]
        assert flaky["left"] == 0
        assert owner.metrics.value("repair_retries") == 1
        assert owner.metrics.value("shards_repaired") == 1

    def test_repair_gives_up_after_max_attempts(self):
        from repro.attic.backup_service import SHARD_ROUTE
        from repro.http.messages import HttpResponse

        sim, _city, owner, services = self.backed_up_world()
        victim = self.holders_of(owner, services)[0]
        victim.hpop.shutdown()
        # Every store in the fleet fails: the repair must exhaust its
        # retries and report failure rather than loop forever.
        for svc in services[1:]:
            if not svc.hpop.running:
                continue
            for route in svc.hpop.http._routes[""]:
                if route.prefix != SHARD_ROUTE:
                    continue
                real = route.handler

                def wrapper(request, real=real):
                    body = request.body if isinstance(request.body, dict) else {}
                    if body.get("action") == "store":
                        return HttpResponse(503, body_size=20, body="busy")
                    return real(request)

                route.handler = wrapper
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append((ok, n)),
                          max_attempts=2)
        sim.run()
        assert results == [(False, 0)]
        assert owner.metrics.value("repair_retries") == 1  # attempts-1
        assert owner.metrics.value("repairs_failed") == 1

    def test_repair_unknown_path(self):
        _sim, _city, owner, _services = build()
        with pytest.raises(KeyError):
            owner.repair_file("/never/backed/up", lambda ok, n: None)

    def test_decode_cache_hit_rate_gauge(self):
        sim, _city, owner, services = self.backed_up_world()
        victim = self.holders_of(owner, services)[0]
        victim.hpop.shutdown()
        results = []
        owner.repair_file("/u0/docs/tax.pdf",
                          lambda ok, n: results.append(ok))
        sim.run()
        assert results == [True]
        # The gauge is wired through to the codec's cache stats.
        assert (owner.metrics.value("decode_cache_hit_rate")
                == owner.codec.decode_cache_stats.hit_rate)


class TestCanonicalBytes:
    def test_deterministic_and_version_sensitive(self):
        a = file_backup_bytes("/f", 1, 100)
        b = file_backup_bytes("/f", 1, 100)
        c = file_backup_bytes("/f", 2, 100)
        assert a == b and a != c and len(a) == 100


class TestControlPrimitives:
    """The remediation hooks the control plane drives: immediate repair,
    holder evacuation, and targeted liveness probes."""

    def backed_up_world(self, num_friends=8, k=3, m=2):
        # Like build(), but the owner runs the heartbeat monitor the
        # control plane's probes and verdicts go through.
        sim = Simulator(seed=17)
        city = build_city(sim, homes_per_neighborhood=num_friends + 2)
        services = []
        for i in range(num_friends + 1):
            home = city.neighborhoods[0].homes[i]
            hpop = Hpop(home.hpop_host, city.network,
                        Household(name=f"h{i}", users=[User("u", "p")]))
            hpop.install(DataAtticService())
            svc = hpop.install(PeerBackupService(
                k=k, m=m, heartbeat_interval=1.0))
            hpop.start()
            services.append(svc)
        owner = services[0]
        for friend in services[1:]:
            owner.add_friend(friend)
        put_file(owner, "/u0/docs/tax.pdf", kib(120))
        done = []
        owner.backup_file("/u0/docs/tax.pdf", done.append)
        sim.run_until(sim.now + 5.0)
        assert done == [True]
        return sim, city, owner, services

    def test_repair_now_sweeps_immediately(self):
        sim, _city, owner, services = self.backed_up_world()
        victim = next(s for s in services[1:]
                      if s.owner_name in owner.manifest[
                          "/u0/docs/tax.pdf"].shard_holders)
        victim.hpop.shutdown()
        owner.monitor.declare_dead(victim.owner_name)
        assert owner.repair_now() is True
        sim.run()
        entry = owner.manifest["/u0/docs/tax.pdf"]
        assert victim.owner_name not in entry.shard_holders
        assert owner.metrics.value("shards_repaired") >= 1

    def test_repair_now_without_manifest_is_noop(self):
        sim, _city, owner, _services = build()
        assert owner.repair_now() is False

    def test_evacuate_holder_moves_shards_off_live_peer(self):
        sim, _city, owner, services = self.backed_up_world()
        entry = owner.manifest["/u0/docs/tax.pdf"]
        target = entry.shard_holders[0]
        moved = owner.evacuate_holder(target)
        assert moved == 1  # one manifest entry listed it
        sim.run()
        entry = owner.manifest["/u0/docs/tax.pdf"]
        assert target not in entry.shard_holders
        # The file is still fully redundant on the survivors.
        by_name = {s.owner_name: s for s in services[1:]}
        for index, holder_name in enumerate(entry.shard_holders):
            key = (owner.owner_name, "/u0/docs/tax.pdf", index)
            assert key in by_name[holder_name].held_shards
        assert owner.metrics.value("holders_evacuated") == 1

    def test_evacuate_holder_without_shards_is_noop(self):
        sim, _city, owner, _services = self.backed_up_world()
        assert owner.evacuate_holder("nobody-holds-anything") == 0

    def test_probe_friend_beats_monitor_when_alive(self):
        sim, _city, owner, services = self.backed_up_world()
        friend = services[1]
        verdicts = []
        owner.probe_friend(friend.owner_name, on_verdict=verdicts.append)
        sim.run()
        assert verdicts == [True]
        assert owner.monitor.is_alive(friend.owner_name)
        assert owner.metrics.value("probes_sent") == 1
        assert owner.metrics.value("probe_deaths") == 0

    def test_probe_friend_declares_dead_on_timeout(self):
        sim, _city, owner, services = self.backed_up_world()
        friend = services[1]
        friend.hpop.shutdown()
        verdicts = []
        owner.probe_friend(friend.owner_name, on_verdict=verdicts.append)
        sim.run()
        assert verdicts == [False]
        assert not owner.monitor.is_alive(friend.owner_name)
        assert owner.metrics.value("probe_deaths") == 1
