"""Degradation paths for the health-records driver.

The duplicating storage driver must never lose clinical data: when the
patient's attic is unreachable (partitioned link or crashed HPoP) the
local regulatory copy is still written, the failure is counted, and
pushes resume once the attic comes back.
"""

import math

import pytest

from repro.faults import FaultInjector, FaultPlan, LinkFlap, NodeCrash
from repro.webdav.resources import NotFoundError

from tests.attic.test_health import build, onboard

HPOP_LINK = "hpop-n0h0"  # the patient home's access link in build()
HPOP_NODE = "nbhd0-home0-hpop"


def build_with_injector():
    sim, city, hpop, attic, clinic, hospital = build()
    injector = FaultInjector(sim, city.network, hpops=[hpop])
    return sim, city, hpop, attic, clinic, hospital, injector


def push_record(sim, clinic, kind="lab", until=None):
    done = []
    clinic.new_record("ann", kind, 20_000,
                      on_done=lambda _rec, pushed: done.append(pushed))
    if until is None:
        sim.run()
    else:
        sim.run_until(until)
    assert len(done) == 1
    return done[0]


class TestPartitionedAttic:
    def test_push_fails_but_local_copy_survives(self):
        sim, _city, _hpop, attic, clinic, _hospital, injector = \
            build_with_injector()
        link, _grant = onboard(attic, clinic)
        injector.apply(FaultPlan([
            LinkFlap(HPOP_LINK, at=sim.now, duration=math.inf)]))
        sim.run_until(sim.now + 1.0)
        assert push_record(sim, clinic, until=sim.now + 60.0) is False
        assert link.push_failures == 1
        assert link.records_pushed == 0
        # The regulatory local copy is intact; the attic never saw it.
        assert clinic.local_record_count("ann") == 1
        with pytest.raises(NotFoundError):
            attic.dav.tree.lookup("/ann/health/records")

    def test_pushes_resume_after_flap_heals(self):
        sim, _city, _hpop, attic, clinic, _hospital, injector = \
            build_with_injector()
        link, _grant = onboard(attic, clinic)
        injector.apply(FaultPlan([
            LinkFlap(HPOP_LINK, at=sim.now + 1.0, duration=5.0)]))
        sim.run_until(sim.now + 2.0)  # inside the outage window
        assert push_record(sim, clinic, "xray", until=sim.now + 60.0) is False
        sim.run_until(sim.now + 60.0)  # well past restoration
        assert push_record(sim, clinic, "lab") is True
        assert link.push_failures == 1
        assert link.records_pushed == 1
        # Both records kept locally; only the post-outage one made it out.
        assert clinic.local_record_count("ann") == 2
        listing = attic.dav.tree.list_children("/ann/health/records")
        assert len(listing) == 1

    def test_history_fetch_fails_loudly_during_outage(self):
        sim, _city, _hpop, attic, clinic, _hospital, injector = \
            build_with_injector()
        onboard(attic, clinic)
        assert push_record(sim, clinic) is True
        injector.apply(FaultPlan([
            LinkFlap(HPOP_LINK, at=sim.now, duration=math.inf)]))
        sim.run_until(sim.now + 1.0)
        history, errors = [], []
        clinic.fetch_history("ann", history.append, errors.append)
        sim.run_until(sim.now + 60.0)
        assert history == []
        assert len(errors) == 1


class TestCrashedAttic:
    def test_records_survive_an_hpop_crash(self):
        sim, _city, _hpop, attic, clinic, hospital, injector = \
            build_with_injector()
        onboard(attic, clinic)
        assert push_record(sim, clinic, "visit") is True
        injector.apply(FaultPlan([
            NodeCrash(HPOP_NODE, at=sim.now + 1.0, downtime=5.0)]))
        sim.run_until(sim.now + 2.0)  # node is down
        assert push_record(sim, clinic, "lab", until=sim.now + 60.0) is False
        sim.run_until(sim.now + 60.0)  # node restarted
        # The attic tree is durable storage: the pre-crash record is
        # still there for a brand-new provider to pull.
        onboard(attic, hospital)
        history = []
        hospital.fetch_history("ann", history.append)
        sim.run()
        assert [r.kind for r in history[0]] == ["visit"]
        assert injector.metrics.counters["node_restarts"].value == 1
