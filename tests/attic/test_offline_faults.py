"""Degradation paths for offline-mode devices.

A network partition between the away device and the home attic must
behave exactly like the device's own offline mode: operations fail
cleanly, nothing in the workspace is lost, and the next reconcile after
the partition heals lands every local edit.
"""

import math

from repro.attic.reconcile import SyncAction
from repro.faults import FaultInjector, FaultPlan, LinkFlap, NodeCrash

from tests.attic.test_offline import build, checkout

HPOP_LINK = "hpop-n0h0"  # the attic home's access link in build()
HPOP_NODE = "nbhd0-home0-hpop"


def build_with_injector():
    sim, city, attic, device = build()
    injector = FaultInjector(sim, city.network, hpops=[attic.hpop])
    return sim, city, attic, device, injector


class TestPartitionedReconcile:
    def test_checkout_fails_cleanly_during_partition(self):
        sim, _city, _attic, device, injector = build_with_injector()
        injector.apply(FaultPlan([
            LinkFlap(HPOP_LINK, at=sim.now, duration=math.inf)]))
        sim.run_until(sim.now + 1.0)
        done = []
        device.checkout("thesis.tex", done.append)
        sim.run_until(sim.now + 60.0)
        assert done == [False]
        assert device.workspace.files() == []

    def test_reconcile_during_partition_loses_nothing(self):
        sim, _city, attic, device, injector = build_with_injector()
        checkout(sim, device)
        device.go_offline()
        device.edit("thesis.tex", size=120_000, payload="laptop-edit")
        device.go_online()
        # The device thinks it is online, but the path home is cut.
        injector.apply(FaultPlan([
            LinkFlap(HPOP_LINK, at=sim.now, duration=30.0)]))
        sim.run_until(sim.now + 1.0)
        results = []
        device.reconcile_all(results.append)
        sim.run_until(sim.now + 60.0)  # partition heals mid-wait
        # The unreachable file is skipped, not synced and not dropped.
        assert results[0] == []
        state = device.workspace.state_of("thesis.tex")
        assert state.payload == "laptop-edit"
        assert attic.dav.tree.lookup("/ann/docs/thesis.tex").content.version == 1
        # After the partition heals the same reconcile succeeds.
        device.reconcile_all(results.append)
        sim.run()
        assert [r.action for r in results[1]] == [SyncAction.PUSH]
        node = attic.dav.tree.lookup("/ann/docs/thesis.tex")
        assert node.content.payload == "laptop-edit"
        assert node.content.version == 2

    def test_attic_crash_behaves_like_partition(self):
        sim, _city, attic, device, injector = build_with_injector()
        checkout(sim, device)
        device.go_offline()
        device.edit("thesis.tex", size=120_000, payload="laptop-edit")
        injector.apply(FaultPlan([
            NodeCrash(HPOP_NODE, at=sim.now + 1.0, downtime=5.0)]))
        sim.run_until(sim.now + 2.0)  # attic is down
        device.go_online()
        results = []
        device.reconcile_all(results.append)
        sim.run_until(sim.now + 60.0)  # attic restarted
        assert results[0] == []
        # The attic tree survived the crash; reconcile now pushes.
        device.reconcile_all(results.append)
        sim.run()
        assert [r.action for r in results[1]] == [SyncAction.PUSH]
        assert attic.dav.tree.lookup(
            "/ann/docs/thesis.tex").content.payload == "laptop-edit"
