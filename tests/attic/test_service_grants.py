"""Data-attic service and grant tests."""

import pytest

from repro.attic.grants import GrantError, QrPayload
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.net.address import Address
from repro.net.topology import build_city
from repro.sim.engine import Simulator
from repro.webdav.server import READ, basic_auth


def build():
    sim = Simulator(seed=8)
    city = build_city(sim, homes_per_neighborhood=2,
                      server_sites={"clinic": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smith", users=[
        User(name="ann", password="pw1", devices=[home.devices[0]]),
    ])
    hpop = Hpop(home.hpop_host, city.network, household)
    attic = hpop.install(DataAtticService())
    hpop.start()
    return sim, city, home, hpop, attic


class TestQrPayload:
    def test_encode_decode_round_trip(self):
        payload = QrPayload(Address.parse("100.64.0.7"), 443,
                            "provider-x", "secret", "/ann/health")
        decoded = QrPayload.decode(payload.encode())
        assert decoded == payload

    def test_decode_rejects_garbage(self):
        with pytest.raises(GrantError):
            QrPayload.decode("not-a-grant")
        with pytest.raises(GrantError):
            QrPayload.decode("atticgrant-v1|bad-addr|443|u|p|/x")
        with pytest.raises(GrantError):
            QrPayload.decode("atticgrant-v1|1.2.3.4|443|u|p|relative")


class TestAtticSetup:
    def test_household_users_get_spaces(self):
        _sim, _city, _home, _hpop, attic = build()
        assert attic.dav.tree.exists("/ann")

    def test_user_path_rejects_strangers(self):
        _sim, _city, _home, _hpop, attic = build()
        with pytest.raises(KeyError):
            attic.user_path("mallory")

    def test_owner_can_put_and_get(self):
        sim, city, home, hpop, attic = build()
        client = HttpClient(home.devices[0], city.network)
        results = []
        headers = basic_auth("ann", "pw1")
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/ann/notes.txt",
                                   headers=headers, body="n", body_size=400),
                       lambda resp, stats: results.append(resp), port=443)
        sim.run()
        assert results[0].status == 201
        client.request(hpop.host,
                       HttpRequest("GET", "/attic/ann/notes.txt", headers=headers),
                       lambda resp, stats: results.append(resp), port=443)
        sim.run()
        assert results[1].ok and results[1].body_size == 400


class TestGrants:
    def test_issue_grant_creates_scoped_credentials(self):
        _sim, _city, _home, _hpop, attic = build()
        grant = attic.issue_grant("ann", "clinic", sub_path="health")
        assert grant.base_path == "/ann/health"
        assert attic.dav.tree.exists("/ann/health")
        assert len(attic.grants) == 1

    def test_qr_payload_carries_endpoint(self):
        _sim, _city, _home, hpop, attic = build()
        grant = attic.issue_grant("ann", "clinic", sub_path="health")
        qr = attic.qr_for(grant)
        assert qr.attic_address == hpop.host.address
        assert qr.attic_port == 443
        assert qr.base_path == "/ann/health"

    def test_provider_can_write_only_its_slice(self):
        sim, city, _home, hpop, attic = build()
        grant = attic.issue_grant("ann", "clinic", sub_path="health")
        clinic_host = city.server_sites["clinic"].servers[0]
        client = HttpClient(clinic_host, city.network)
        headers = basic_auth(grant.username, grant.password)
        results = []
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/ann/health/visit1",
                                   headers=headers, body_size=1000),
                       lambda resp, stats: results.append(resp.status), port=443)
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/ann/private.txt",
                                   headers=headers, body_size=10),
                       lambda resp, stats: results.append(resp.status), port=443)
        sim.run()
        assert 201 in results  # inside the slice
        assert 403 in results  # outside the slice

    def test_read_only_grant(self):
        sim, city, _home, hpop, attic = build()
        grant = attic.issue_grant("ann", "auditor", sub_path="health",
                                  rights={READ})
        clinic_host = city.server_sites["clinic"].servers[0]
        client = HttpClient(clinic_host, city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/ann/health/x",
                                   headers=basic_auth(grant.username,
                                                      grant.password),
                                   body_size=10),
                       lambda resp, stats: results.append(resp.status), port=443)
        sim.run()
        assert results == [403]

    def test_revoked_grant_denied(self):
        sim, city, _home, hpop, attic = build()
        grant = attic.issue_grant("ann", "clinic", sub_path="health")
        attic.revoke_grant(grant.grant_id)
        clinic_host = city.server_sites["clinic"].servers[0]
        client = HttpClient(clinic_host, city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("GET", "/attic/ann/health",
                                   headers=basic_auth(grant.username,
                                                      grant.password)),
                       lambda resp, stats: results.append(resp.status), port=443)
        sim.run()
        assert results == [401]
        assert attic.grants.active() == []

    def test_distinct_grants_distinct_credentials(self):
        _sim, _city, _home, _hpop, attic = build()
        g1 = attic.issue_grant("ann", "clinic", sub_path="health")
        g2 = attic.issue_grant("ann", "lab", sub_path="health")
        assert g1.username != g2.username
        assert g1.password != g2.password

    def test_stored_bytes(self):
        _sim, _city, _home, _hpop, attic = build()
        attic.dav.tree.put("/ann/a", size=100)
        attic.dav.tree.put("/ann/b", size=50)
        assert attic.stored_bytes("ann") == 150
        assert attic.stored_bytes() == 150


class TestHouseholdIsolation:
    """Members of the same household cannot read each other's spaces."""

    def build_two_user_attic(self):
        sim = Simulator(seed=81)
        city = build_city(sim, homes_per_neighborhood=2)
        home = city.neighborhoods[0].homes[0]
        household = Household(name="smith", users=[
            User(name="ann", password="pw1", devices=[home.devices[0]]),
            User(name="bo", password="pw2", devices=[home.devices[1]]),
        ])
        hpop = Hpop(home.hpop_host, city.network, household)
        attic = hpop.install(DataAtticService())
        hpop.start()
        return sim, city, home, hpop, attic

    def test_cross_user_read_denied(self):
        sim, city, home, hpop, attic = self.build_two_user_attic()
        attic.dav.tree.put("/ann/diary.txt", size=1000)
        client = HttpClient(home.devices[1], city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("GET", "/attic/ann/diary.txt",
                                   headers=basic_auth("bo", "pw2")),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [403]

    def test_cross_user_write_denied(self):
        sim, city, home, hpop, attic = self.build_two_user_attic()
        client = HttpClient(home.devices[1], city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/ann/planted.txt",
                                   headers=basic_auth("bo", "pw2"),
                                   body_size=10),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [403]

    def test_each_user_owns_their_space(self):
        sim, city, home, hpop, attic = self.build_two_user_attic()
        client = HttpClient(home.devices[1], city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/bo/notes.txt",
                                   headers=basic_auth("bo", "pw2"),
                                   body_size=10),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [201]

    def test_provider_grant_scoped_to_one_user(self):
        """A provider granted ann's slice cannot touch bo's space."""
        sim, city, home, hpop, attic = self.build_two_user_attic()
        grant = attic.issue_grant("ann", "clinic", sub_path="health")
        client = HttpClient(home.devices[0], city.network)
        results = []
        client.request(hpop.host,
                       HttpRequest("PUT", "/attic/bo/sneaky",
                                   headers=basic_auth(grant.username,
                                                      grant.password),
                                   body_size=10),
                       lambda resp, stats: results.append(resp.status),
                       port=443)
        sim.run()
        assert results == [403]
