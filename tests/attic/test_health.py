"""Health-records case study tests (paper SIV-A1)."""

import pytest

from repro.attic.health import MedicalProvider
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=10)
    city = build_city(sim, homes_per_neighborhood=2,
                      server_sites={"clinic": 1, "hospital": 1})
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smith", users=[
        User("ann", "pw", [home.devices[0]]),
    ])
    hpop = Hpop(home.hpop_host, city.network, household)
    attic = hpop.install(DataAtticService())
    hpop.start()
    clinic = MedicalProvider("clinic", city.server_sites["clinic"].servers[0],
                             city.network)
    hospital = MedicalProvider(
        "hospital", city.server_sites["hospital"].servers[0], city.network)
    return sim, city, hpop, attic, clinic, hospital


def onboard(attic, provider, patient="ann"):
    grant = attic.issue_grant(patient, provider.name, sub_path="health")
    qr_text = attic.qr_for(grant).encode()
    return provider.link_patient(patient, qr_text), grant


class TestOnboarding:
    def test_qr_bootstrap(self):
        _sim, _city, _hpop, attic, clinic, _hospital = build()
        link, grant = onboard(attic, clinic)
        assert link.grant.base_path == "/ann/health"
        assert link.grant.username == grant.username

    def test_unlinked_patient_local_only(self):
        sim, _city, _hpop, _attic, clinic, _hospital = build()
        done = []
        clinic.new_record("walkin", "xray", 50_000,
                          on_done=lambda rec, pushed: done.append(pushed))
        sim.run()
        assert done == [False]
        assert clinic.local_record_count("walkin") == 1


class TestDuplicatedWrites:
    def test_record_lands_locally_and_in_attic(self):
        sim, _city, _hpop, attic, clinic, _hospital = build()
        link, _grant = onboard(attic, clinic)
        done = []
        record = clinic.new_record("ann", "lab", 20_000, summary="CBC panel",
                                   on_done=lambda rec, pushed: done.append(pushed))
        sim.run()
        assert done == [True]
        assert clinic.local_record_count("ann") == 1
        assert link.records_pushed == 1
        node = attic.dav.tree.lookup(f"/ann/health/records/{record.file_name()}")
        assert node.content.size == 20_000
        assert node.content.payload is record

    def test_multiple_records_accumulate(self):
        sim, _city, _hpop, attic, clinic, _hospital = build()
        onboard(attic, clinic)
        for kind in ("visit", "lab", "imaging"):
            clinic.new_record("ann", kind, 10_000)
        sim.run()
        listing = attic.dav.tree.list_children("/ann/health/records")
        assert len(listing) == 3

    def test_attic_down_record_still_kept_locally(self):
        sim, _city, hpop, attic, clinic, _hospital = build()
        link, _grant = onboard(attic, clinic)
        hpop.shutdown()
        done = []
        clinic.new_record("ann", "lab", 10_000,
                          on_done=lambda rec, pushed: done.append(pushed))
        sim.run()
        assert done == [False]
        assert clinic.local_record_count("ann") == 1
        assert link.push_failures >= 1


class TestEmergencyAccess:
    def test_new_provider_reads_full_history(self):
        """The ER scenario: hospital sees clinic's records via the attic."""
        sim, _city, _hpop, attic, clinic, hospital = build()
        onboard(attic, clinic)
        clinic.new_record("ann", "visit", 15_000, summary="annual physical")
        clinic.new_record("ann", "lab", 8_000, summary="lipid panel")
        sim.run()

        onboard(attic, hospital)
        histories = []
        hospital.fetch_history("ann", histories.append)
        sim.run()
        assert len(histories) == 1
        records = histories[0]
        assert len(records) == 2
        assert {r.provider for r in records} == {"clinic"}
        assert [r.kind for r in records] == ["visit", "lab"]  # time order

    def test_history_empty_before_any_records(self):
        sim, _city, _hpop, attic, _clinic, hospital = build()
        onboard(attic, hospital)
        histories = []
        hospital.fetch_history("ann", histories.append)
        sim.run()
        assert histories == [[]]

    def test_fetch_without_link_raises(self):
        _sim, _city, _hpop, _attic, _clinic, hospital = build()
        with pytest.raises(Exception):
            hospital.fetch_history("ann", lambda h: None)

    def test_provider_switch_revocation(self):
        """Provider independence: revoking the old provider's grant cuts
        it off while the data stays in the attic."""
        sim, city, hpop, attic, clinic, hospital = build()
        _link, grant = onboard(attic, clinic)
        clinic.new_record("ann", "visit", 5_000)
        sim.run()
        attic.revoke_grant(grant.grant_id)
        done = []
        clinic.new_record("ann", "visit", 5_000,
                          on_done=lambda rec, pushed: done.append(pushed))
        sim.run()
        assert done == [False]
        # Data written before revocation is still there for the new provider.
        onboard(attic, hospital)
        histories = []
        hospital.fetch_history("ann", histories.append)
        sim.run()
        assert len(histories[0]) == 1
