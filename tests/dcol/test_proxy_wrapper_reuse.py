"""Extension-feature tests: MPTCP proxy mode and NoCDN wrapper reuse."""

import pytest

from repro.dcol.collective import DetourCollective, WaypointService
from repro.dcol.manager import DetourManager
from repro.dcol.proxy import MptcpProxy
from repro.hpop.core import Household, Hpop, User
from repro.net.address import Address
from repro.net.topology import build_detour_testbed
from repro.sim.engine import Simulator
from repro.util.units import gbps, mib, ms


def build_proxy_world(seed=19):
    sim = Simulator(seed=seed)
    bed = build_detour_testbed(sim, num_waypoints=2)
    # A proxy host in the server's vicinity, on a short fat leg.
    proxy_host = bed.network.add_host("mptcp-proxy")
    proxy_host.add_interface(Address.parse("198.18.0.9"))
    server_gw = bed.network.nodes["server-gw"]
    bed.network.connect(proxy_host, server_gw, gbps(10), ms(0.5),
                        name="proxy-leg")
    proxy = MptcpProxy(host=proxy_host, network=bed.network)
    collective = DetourCollective()
    services = []
    for wp in bed.waypoints:
        hpop = Hpop(wp, bed.network,
                    Household(name=wp.name, users=[User("u", "p")]))
        service = hpop.install(WaypointService())
        hpop.start()
        collective.join(service)
        services.append(service)
    manager = DetourManager(bed.client, bed.network, collective)
    return sim, bed, proxy, services, manager


class TestMptcpProxy:
    def test_paths_include_proxy_leg(self):
        sim, bed, proxy, services, manager = build_proxy_world()
        transfer = manager.start_transfer(bed.server, mib(1), proxy=proxy)
        direct = transfer._data_path()
        assert direct.dest is bed.client  # download direction
        # The proxy leg's hops are part of the path.
        names = {d.link.name for d in direct.directions}
        assert "proxy-leg" in names

    def test_transfer_completes_via_proxy(self):
        sim, bed, proxy, services, manager = build_proxy_world()
        done = []
        transfer = manager.start_transfer(bed.server, mib(10), proxy=proxy,
                                          on_complete=lambda t: done.append(1))
        sim.run()
        assert done == [1]

    def test_detour_benefit_survives_proxy_mode(self):
        """SIV-C: DCol works against non-MPTCP servers via the proxy."""
        def run(with_detour):
            sim, bed, proxy, services, manager = build_proxy_world()
            done = []
            transfer = manager.start_transfer(
                bed.server, mib(15), proxy=proxy,
                on_complete=lambda t: done.append(sim.now))
            if with_detour:
                transfer.add_detour(services[0])
            sim.run()
            return done[0]

        t_direct = run(False)
        t_detour = run(True)
        assert t_detour < t_direct * 0.6

    def test_nat_tunnel_targets_proxy(self):
        sim, bed, proxy, services, manager = build_proxy_world()
        transfer = manager.start_transfer(bed.server, mib(5), proxy=proxy)
        transfer.add_detour(services[0], mechanism="nat")
        sim.run()
        # The waypoint's forwarding rule points at the proxy.
        rules = services[0].nat.rules
        assert any(dest == proxy.host.address
                   for (_client, dest, _port) in rules)

    def test_rtt_penalty_is_the_local_leg(self):
        sim, bed, proxy, _services, _manager = build_proxy_world()
        penalty = proxy.rtt_penalty(bed.server)
        assert penalty == pytest.approx(
            bed.network.path_between(proxy.host, bed.server).rtt)
        assert penalty < ms(10)


class TestWrapperReuse:
    def build_world(self, ttl):
        from tests.nocdn.harness import NoCdnWorld
        return NoCdnWorld(num_peers=2, seed=20, wrapper_reuse_ttl=ttl)

    def test_wrapper_reused_within_ttl(self):
        world = self.build_world(ttl=60.0)
        world.load_page()
        generated_first = world.provider.wrappers_issued
        world.load_page()
        world.load_page()
        assert world.provider.wrappers_issued == generated_first
        assert world.provider.wrappers_reused == 2

    def test_reuse_expires(self):
        world = self.build_world(ttl=5.0)
        world.load_page()
        world.sim.run_until(world.sim.now + 10.0)
        world.load_page()
        assert world.provider.wrappers_issued == 2

    def test_reused_wrapper_pages_verify_and_account(self):
        """Clients sharing one wrapper still verify hashes and their
        usage records all clear the (extended) caps."""
        world = self.build_world(ttl=60.0)
        for _ in range(4):
            result = world.load_page()
            assert result.corrupted == []
        for peer in world.peers:
            peer.flush_usage()
        world.sim.run()
        audit = world.provider.audit
        assert audit.rejected_over_cap == 0
        assert audit.rejected_replay == 0
        assert audit.accepted_records > 0

    def test_dead_peer_invalidates_cached_wrapper(self):
        world = self.build_world(ttl=600.0)
        world.load_page()
        # One assigned peer dies; the cached wrapper must not be reused.
        world.hpops[0].host.power_off()
        issued_before = world.provider.wrappers_issued
        world.load_page()
        assert world.provider.wrappers_issued == issued_before + 1
