"""Detour manager tests: TLS-first, exploration, policing, steering."""

import pytest

from repro.dcol.collective import DetourCollective, WaypointService
from repro.dcol.manager import DetourManager
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_detour_testbed
from repro.sim.engine import Simulator
from repro.util.units import mib, ms


def build(num_waypoints=3, seed=15, **bed_kwargs):
    sim = Simulator(seed=seed)
    bed = build_detour_testbed(sim, num_waypoints=num_waypoints, **bed_kwargs)
    collective = DetourCollective()
    services = []
    for wp in bed.waypoints:
        hpop = Hpop(wp, bed.network,
                    Household(name=wp.name, users=[User("u", "p")]))
        service = hpop.install(WaypointService())
        hpop.start()
        collective.join(service)
        services.append(service)
    manager = DetourManager(bed.client, bed.network, collective)
    return sim, bed, collective, services, manager


class TestTlsFirstPolicy:
    def test_detour_engages_only_after_handshake(self):
        sim, bed, _c, services, manager = build()
        transfer = manager.start_transfer(bed.server, mib(5))
        engaged = []
        transfer.add_detour(services[0], on_ready=lambda h: engaged.append(sim.now))
        direct_rtt = bed.network.path_between(bed.client, bed.server).rtt
        handshake_time = 3 * direct_rtt  # TCP + 2 TLS round trips
        sim.run()
        assert transfer.done
        assert len(engaged) == 1
        # Tunnel setup starts only after the handshake completes.
        assert engaged[0] >= handshake_time

    def test_no_tls_handshake_is_one_rtt(self):
        sim, bed, _c, services, manager = build()
        transfer = manager.start_transfer(bed.server, mib(1), tls=False)
        engaged = []
        transfer.add_detour(services[0], on_ready=lambda h: engaged.append(sim.now))
        direct_rtt = bed.network.path_between(bed.client, bed.server).rtt
        sim.run()
        assert engaged[0] >= direct_rtt
        assert engaged[0] < 3 * direct_rtt


class TestDetourBenefit:
    def run_transfer(self, with_detour, size=mib(20), mechanism="vpn"):
        sim, bed, _c, services, manager = build()
        done = []
        transfer = manager.start_transfer(
            bed.server, size, on_complete=lambda t: done.append(sim.now))
        if with_detour:
            transfer.add_detour(services[0], mechanism=mechanism)
        sim.run()
        assert done
        return done[0], transfer

    def test_detour_speeds_up_transfer(self):
        """SIV-C: the lossy, slow native route is beaten by a detour."""
        t_direct, _ = self.run_transfer(with_detour=False)
        t_detour, transfer = self.run_transfer(with_detour=True)
        assert t_detour < t_direct * 0.6
        assert transfer.detours[0].subflow.stats.bytes_delivered > 0

    def test_nat_detour_slightly_faster_than_vpn(self):
        """Zero per-packet overhead (NAT) vs 36 B/packet (VPN)."""
        t_vpn, _ = self.run_transfer(with_detour=True, mechanism="vpn")
        t_nat, _ = self.run_transfer(with_detour=True, mechanism="nat")
        assert t_nat <= t_vpn

    def test_upload_direction(self):
        sim, bed, _c, services, manager = build()
        done = []
        transfer = manager.start_transfer(
            bed.server, mib(10), direction="up",
            on_complete=lambda t: done.append(1))
        transfer.add_detour(services[0])
        sim.run()
        assert done == [1]
        assert transfer.connection.stats.bytes_delivered >= mib(10) * 0.999


class TestExploration:
    def test_explore_keeps_best_waypoint(self):
        sim, bed, _c, services, manager = build(num_waypoints=3)
        transfer = manager.start_transfer(bed.server, mib(100))
        kept = []
        transfer.explore(services, probe_time=1.5, keep=1,
                         on_done=lambda handles: kept.extend(handles))
        sim.run()
        assert transfer.done
        assert len(kept) == 1
        # Waypoint 0 has the best legs (lowest delay, no loss).
        assert kept[0].waypoint is services[0]

    def test_explore_withdrawal_recovers_bytes(self):
        sim, bed, _c, services, manager = build(num_waypoints=3)
        done = []
        transfer = manager.start_transfer(
            bed.server, mib(30), on_complete=lambda t: done.append(1))
        transfer.explore(services, probe_time=1.0, keep=1)
        sim.run()
        assert done == [1]
        assert transfer.connection.stats.bytes_delivered >= mib(30) * 0.999

    def test_candidate_waypoints_from_collective(self):
        _sim, _bed, _c, services, manager = build(num_waypoints=2)
        candidates = manager.candidate_waypoints()
        assert set(candidates) == set(services)


class TestPolicing:
    def test_lossy_waypoint_withdrawn_and_reported(self):
        sim, bed, collective, services, manager = build(num_waypoints=3)
        transfer = manager.start_transfer(bed.server, mib(200))
        # Engage the deliberately lossy waypoint (last one) and a good one.
        transfer.add_detour(services[0])
        transfer.add_detour(services[-1])
        sim.run_until(3.0)
        expelled = transfer.police_waypoints(loss_event_threshold=3)
        assert any(h.waypoint is services[-1] for h in expelled)
        assert all(h.waypoint is not services[0]
                   for h in expelled)
        lossy_name = services[-1].host.name
        assert collective.member_for(lossy_name).misbehavior_reports >= 1
        sim.run()
        assert transfer.done  # transparent recovery

    def test_repeated_reports_expel_from_collective(self):
        _sim, _bed, collective, services, _manager = build()
        name = services[-1].host.name
        for _ in range(collective.expel_after_reports):
            collective.report_misbehavior(name)
        assert services[-1] not in collective.available_waypoints()


class TestSteering:
    def test_throttle_reduces_detour_share(self):
        def detour_share(throttle):
            sim, bed, _c, services, manager = build(direct_loss=0.0)
            transfer = manager.start_transfer(bed.server, mib(30))
            handles = []
            transfer.add_detour(services[0], on_ready=handles.append)
            if throttle:
                def apply_throttle():
                    if handles:
                        transfer.throttle_detour(handles[0], ms(300))
                sim.schedule(0.5, apply_throttle, weak=True)
            sim.run()
            handle = handles[0]
            return transfer.connection.share_of(handle.subflow)

        assert detour_share(True) < detour_share(False)


class TestValidation:
    def test_bad_direction(self):
        _sim, bed, _c, _services, manager = build()
        with pytest.raises(ValueError):
            manager.start_transfer(bed.server, 1000, direction="sideways")

    def test_withdraw_unknown_handle(self):
        sim, bed, _c, services, manager = build()
        t1 = manager.start_transfer(bed.server, mib(1))
        t2 = manager.start_transfer(bed.server, mib(1))
        handles = []
        t1.add_detour(services[0], on_ready=handles.append)
        sim.run_until(1.0)
        with pytest.raises(ValueError):
            t2.withdraw_detour(handles[0])
        sim.run()

    def test_negative_keep(self):
        _sim, bed, _c, services, manager = build()
        transfer = manager.start_transfer(bed.server, mib(1))
        with pytest.raises(ValueError):
            transfer.explore(services, probe_time=1.0, keep=-1)


class TestRotation:
    """rotate_worst: the control plane's RTT-regression remediation."""

    def test_swaps_slowest_detour_for_fresh_candidate(self):
        sim, bed, _c, services, manager = build(num_waypoints=3)
        transfer = manager.start_transfer(bed.server, mib(30))
        transfer.add_detour(services[0])
        transfer.add_detour(services[1])
        # Let traffic flow so goodput is measurable, then rotate.
        sim.run_until(3.0)
        names = {h.waypoint.host.name for h in transfer.detours}
        worst = min(transfer.detours, key=lambda h: h.goodput_bps)
        result = transfer.rotate_worst(manager.candidate_waypoints())
        assert result["withdrawn"] == worst.waypoint.host.name
        fresh = services[2].host.name
        assert result["engaged"] == fresh
        after = {h.waypoint.host.name for h in transfer.detours}
        assert result["withdrawn"] not in after
        # The survivors are the old best plus the fresh engage (which may
        # still be mid-handshake, hence <= 2).
        assert after <= (names - {result["withdrawn"]}) | {fresh}
        sim.run()
        assert transfer.done

    def test_rotate_with_no_detours_engages_first_candidate(self):
        sim, bed, _c, services, manager = build(num_waypoints=2)
        transfer = manager.start_transfer(bed.server, mib(5))
        sim.run_until(1.0)
        result = transfer.rotate_worst(manager.candidate_waypoints())
        assert result["withdrawn"] is None
        assert result["engaged"] == services[0].host.name
        sim.run()
        assert transfer.done

    def test_rotate_with_no_candidates_just_sheds_worst(self):
        sim, bed, _c, services, manager = build(num_waypoints=1)
        transfer = manager.start_transfer(bed.server, mib(5))
        transfer.add_detour(services[0])
        sim.run_until(2.0)
        result = transfer.rotate_worst(manager.candidate_waypoints())
        assert result["withdrawn"] == services[0].host.name
        assert result["engaged"] is None  # sole candidate was just withdrawn
        assert transfer.detours == []
        sim.run()
        assert transfer.done
