"""DCol tunnel and collective tests."""

import pytest

from repro.dcol.collective import CollectiveError, DetourCollective, WaypointService
from repro.dcol.tunnels import (
    NAT_OVERHEAD_BYTES,
    VPN_OVERHEAD_BYTES,
    NatTunnelServer,
    TunnelError,
    TunnelFactory,
    VpnTunnelServer,
)
from repro.hpop.core import Household, Hpop, User
from repro.net.address import Address, Prefix
from repro.net.topology import build_detour_testbed
from repro.sim.engine import Simulator


def build(num_waypoints=2):
    sim = Simulator(seed=14)
    bed = build_detour_testbed(sim, num_waypoints=num_waypoints)
    collective = DetourCollective()
    services = []
    for wp in bed.waypoints:
        hpop = Hpop(wp, bed.network, Household(name=wp.name, users=[User("u", "p")]))
        service = hpop.install(WaypointService())
        hpop.start()
        collective.join(service)
        services.append(service)
    return sim, bed, collective, services


class TestVpnTunnelServer:
    def test_lease_allocation_and_reuse(self):
        sim, bed, _c, services = build()
        vpn = services[0].vpn
        lease1 = vpn.join(bed.client)
        lease2 = vpn.join(bed.client)
        assert lease1 is lease2
        assert vpn.active_clients == 1

    def test_capacity_is_64(self):
        """SIV-C: a /26 serves 64 clients."""
        _sim, _bed, _c, services = build()
        assert services[0].vpn.capacity == 64

    def test_leave_releases_address(self):
        sim, bed, _c, services = build()
        vpn = services[0].vpn
        lease = vpn.join(bed.client)
        vpn.leave(bed.client)
        assert vpn.active_clients == 0
        again = vpn.join(bed.client)
        assert again.address == lease.address  # recycled

    def test_exhaustion(self):
        _sim, bed, _c, _services = build()
        vpn = VpnTunnelServer(bed.waypoints[0], Prefix.parse("10.0.0.0/30"))
        fake_clients = [bed.client, bed.server]
        for client in fake_clients:
            vpn.join(client)
        third = bed.waypoints[1]
        with pytest.raises(TunnelError):
            vpn.join(third)


class TestNatTunnelServer:
    def test_rule_per_destination(self):
        _sim, bed, _c, services = build()
        nat = services[0].nat
        p1 = nat.negotiate(bed.client, bed.server.address, 443)
        p2 = nat.negotiate(bed.client, bed.server.address, 80)
        p3 = nat.negotiate(bed.client, bed.server.address, 443)
        assert p1 != p2
        assert p1 == p3  # reused for the same destination
        assert nat.rule_count == 2

    def test_remove_rule(self):
        _sim, bed, _c, services = build()
        nat = services[0].nat
        nat.negotiate(bed.client, bed.server.address, 443)
        nat.remove(bed.client, bed.server.address, 443)
        assert nat.rule_count == 0


class TestTunnelFactory:
    def test_vpn_setup_costs_two_round_trips(self):
        sim, bed, _c, services = build()
        factory = TunnelFactory(bed.network)
        rtt = bed.network.path_between(bed.client, services[0].host).rtt
        tunnels = []
        factory.open_vpn(services[0].vpn, bed.client, tunnels.append)
        sim.run()
        assert len(tunnels) == 1
        assert tunnels[0].setup_time == pytest.approx(2 * rtt)
        assert tunnels[0].overhead_per_packet == VPN_OVERHEAD_BYTES
        assert sim.now == pytest.approx(2 * rtt)

    def test_nat_setup_costs_one_round_trip(self):
        sim, bed, _c, services = build()
        factory = TunnelFactory(bed.network)
        rtt = bed.network.path_between(bed.client, services[0].host).rtt
        tunnels = []
        factory.open_nat(services[0].nat, bed.client, bed.server.address, 443,
                         tunnels.append)
        sim.run()
        assert tunnels[0].setup_time == pytest.approx(rtt)
        assert tunnels[0].overhead_per_packet == NAT_OVERHEAD_BYTES

    def test_vpn_tunnel_usable_for_any_destination(self):
        sim, bed, _c, services = build()
        factory = TunnelFactory(bed.network)
        tunnels = []
        factory.open_vpn(services[0].vpn, bed.client, tunnels.append)
        sim.run()
        assert tunnels[0].usable_for(bed.server.address, 443)
        assert tunnels[0].usable_for(Address.parse("198.18.0.99"), 80)

    def test_nat_tunnel_bound_to_destination(self):
        sim, bed, _c, services = build()
        factory = TunnelFactory(bed.network)
        tunnels = []
        factory.open_nat(services[0].nat, bed.client, bed.server.address, 443,
                         tunnels.append)
        sim.run()
        assert tunnels[0].usable_for(bed.server.address, 443)
        assert not tunnels[0].usable_for(bed.server.address, 80)

    def test_dead_waypoint_errors(self):
        sim, bed, _c, services = build()
        services[0].host.power_off()
        factory = TunnelFactory(bed.network)
        errors = []
        factory.open_vpn(services[0].vpn, bed.client, lambda t: None,
                         errors.append)
        sim.run()
        assert len(errors) == 1

    def test_subflow_path_via_waypoint(self):
        sim, bed, _c, services = build()
        factory = TunnelFactory(bed.network)
        tunnels = []
        factory.open_vpn(services[0].vpn, bed.client, tunnels.append)
        sim.run()
        path = tunnels[0].subflow_path(bed.network, bed.server)
        direct = bed.network.path_between(bed.client, bed.server)
        assert path.hop_count > direct.hop_count
        assert path.dest is bed.server


class TestCollective:
    def test_members_get_disjoint_subnets(self):
        _sim, _bed, collective, services = build(num_waypoints=2)
        subnets = [collective.member_for(s.host.name).subnet for s in services]
        assert not subnets[0].overlaps(subnets[1])
        assert all(s.length == 26 for s in subnets)

    def test_capacity_is_256k(self):
        _sim, _bed, collective, _services = build()
        assert collective.capacity == 262_144

    def test_double_join_rejected(self):
        _sim, _bed, collective, services = build()
        with pytest.raises(CollectiveError):
            collective.join(services[0])

    def test_leave_releases_subnet(self):
        _sim, _bed, collective, services = build(num_waypoints=2)
        name = services[0].host.name
        collective.leave(name)
        assert collective.member_for(name) is None
        assert collective.member_count == 1
        with pytest.raises(CollectiveError):
            collective.leave(name)

    def test_misbehavior_reports_lead_to_expulsion(self):
        _sim, _bed, collective, services = build()
        name = services[0].host.name
        for _ in range(3):
            collective.report_misbehavior(name)
        assert collective.member_for(name).expelled
        assert services[0] not in collective.available_waypoints()

    def test_available_excludes_down_hosts(self):
        _sim, _bed, collective, services = build(num_waypoints=2)
        services[0].host.power_off()
        available = collective.available_waypoints()
        assert services[0] not in available
        assert services[1] in available

    def test_available_excludes_self(self):
        _sim, _bed, collective, services = build(num_waypoints=2)
        available = collective.available_waypoints(exclude=services[0].host)
        assert services[0] not in available
