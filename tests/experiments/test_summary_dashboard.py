"""End-to-end: toy study -> summary bytes -> study dashboard."""

import json

import pytest

from repro.experiments import (
    StudySpec,
    build_summary,
    load_summary,
    run_study,
    summary_bytes,
    write_summary,
)
from repro.obs.dashboard import (
    StudyArtifacts,
    build_study_html,
    build_study_markdown,
)

TOY = "tests.experiments.toy:scenario"


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("study")
    spec = StudySpec.build(TOY, seeds=[1, 2, 3], workers=1)
    result = run_study(spec, path, progress=None)
    assert result.ok
    write_summary(path)
    return path


class TestSummary:
    def test_summary_sections(self, study_dir):
        summary = load_summary(study_dir)
        assert summary["study"]["cells_ok"] == 3
        assert [c["cell"] for c in summary["cells"]] \
            == ["seed1", "seed2", "seed3"]
        assert summary["slo"]["pass_rates"][0]["slo"] == "toy-availability"
        assert set(summary["slo"]["matrix"]) == {"seed1", "seed2", "seed3"}
        assert summary["faults"]["seed1"] == {"toy_fault": 3}

    def test_bands_cover_every_run(self, study_dir):
        summary = load_summary(study_dir)
        assert summary["series"], "no aligned series"
        for band in summary["series"].values():
            assert band["runs"] == ["seed1", "seed2", "seed3"]
            assert len(band["mean"]) == len(band["grid"])
            assert all(lo <= hi + 1e-12 for lo, hi
                       in zip(band["ci_lo"], band["ci_hi"]))

    def test_rebuild_is_byte_identical(self, study_dir):
        assert summary_bytes(build_summary(study_dir)) \
            == summary_bytes(build_summary(study_dir))

    def test_no_wall_clock_fields_in_summary(self, study_dir):
        text = (study_dir / "summary.json").read_text()
        assert "wall_s" not in text

    def test_scenario_results_embedded(self, study_dir):
        summary = load_summary(study_dir)
        for cell in summary["cells"]:
            assert cell["result"]["reqs"] > 0


class TestStudyDashboard:
    def test_markdown_sections(self, study_dir):
        study = StudyArtifacts.load(str(study_dir))
        md = build_study_markdown(study)
        assert "Per-seed verdict matrix" in md
        assert "Cross-run series bands" in md
        assert "Cross-run SLO pass rates" in md
        assert "toy-availability" in md
        assert "s1" in md and "s3" in md      # per-seed columns
        assert "Slowest run" in md            # wall times from manifests

    def test_html_renders_matrix_and_bands(self, study_dir):
        study = StudyArtifacts.load(str(study_dir))
        html = build_study_html(study)
        assert html.startswith("<!DOCTYPE html>")
        assert "verdict matrix" in html
        assert "toy-availability" in html

    def test_wall_times_loaded_from_manifests(self, study_dir):
        study = StudyArtifacts.load(str(study_dir))
        assert set(study.wall_by_cell) == {"seed1", "seed2", "seed3"}
        assert study.slowest_cell in study.wall_by_cell

    def test_title_defaults_to_study_name(self, study_dir):
        study = StudyArtifacts.load(str(study_dir))
        assert "tests.experiments.toy:scenario" in study.title \
            or "study" in study.title


class TestDashboardJson:
    def test_per_run_machine_readable_summary(self, study_dir):
        from repro.obs.dashboard import RunArtifacts, dashboard_json
        cell = study_dir / "cells" / "seed1"
        art = RunArtifacts.load(tsdb_path=str(cell / "tsdb.jsonl"),
                                slo_path=str(cell / "slo.jsonl"),
                                faults_path=str(cell / "faults.jsonl"))
        payload = dashboard_json(art)
        assert payload["slo_verdicts"][0]["slo"] == "toy-availability"
        assert payload["faults"]["toy_fault"]["count"] == 3
        assert "svc/app.reqs_total" in payload["series"]
        json.dumps(payload)   # JSON-able end to end
