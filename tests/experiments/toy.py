"""A miniature study scenario for the runner/merge/summary tests.

Deterministic per seed, fast (well under 100 ms per cell), and
self-contained: a seeded request generator feeding a metrics registry,
scraped into a TSDB, with one ratio SLO evaluated over it and a small
synthetic fault log — every artifact kind the study machinery merges,
without dragging in the full chaos world. Addressed from specs as
``tests.experiments.toy:scenario`` (the ``module:callable`` path).
"""

import json
import pathlib

from repro.metrics.counters import MetricsRegistry
from repro.obs.slo import RatioSli, SloMonitor, SloSpec
from repro.obs.timeseries import TimeSeriesDB
from repro.sim.engine import Simulator

SIM_SECONDS = 20.0
TICK = 0.1


def scenario(seed, params, out_dir):
    out_dir = pathlib.Path(out_dir)
    fail_bias = float(params.get("fail_bias", 0.1))
    sim = Simulator(seed=seed)
    rng = sim.rng.stream("toy.requests")
    registry = MetricsRegistry(namespace="app")
    reqs = registry.counter("reqs_total", "requests served")
    fails = registry.counter("reqs_failed", "requests failed")

    def tick():
        reqs.inc()
        if rng.random() < fail_bias:
            fails.inc()
        if sim.now + TICK <= SIM_SECONDS:
            sim.schedule(TICK, tick, label="toy.tick")

    sim.schedule(TICK, tick, label="toy.tick")

    tsdb = TimeSeriesDB(sim, interval=0.5)
    tsdb.add_registry(registry, source="svc")
    monitor = SloMonitor(sim, tsdb, [SloSpec(
        name="toy-availability", service="toy", objective=0.75,
        sli=RatioSli(total=("svc/app.reqs_total",),
                     bad=("svc/app.reqs_failed",)))], interval=1.0)
    tsdb.start()
    monitor.start()
    sim.run_until(SIM_SECONDS)
    monitor.finish()

    tsdb.export_jsonl(str(out_dir / "tsdb.jsonl"))
    monitor.export_jsonl(str(out_dir / "slo.jsonl"))
    fault_rng = sim.rng.stream("toy.faults")
    with open(out_dir / "faults.jsonl", "w", encoding="utf-8") as fh:
        for i in range(3):
            record = {"t": round(2.0 + 5.0 * i + fault_rng.random(), 9),
                      "event": "toy_fault", "target": f"node{i}"}
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return {"reqs": int(reqs.value), "failed": int(fails.value)}


def broken_scenario(seed, params, out_dir):
    """Always raises — exercises the error-manifest path."""
    raise RuntimeError(f"scenario exploded for seed {seed}")
