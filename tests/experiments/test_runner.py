"""The study runner: pool execution, journaling, resume, failure paths."""

import json

import pytest

from repro.experiments import StudySpec, load_journal, run_study
from repro.experiments.manifest import load_manifest
from repro.experiments.runner import cell_dir

TOY = "tests.experiments.toy:scenario"
BROKEN = "tests.experiments.toy:broken_scenario"


def toy_spec(seeds=(1, 2), workers=1, **kwargs):
    return StudySpec.build(TOY, seeds=seeds, workers=workers, **kwargs)


class TestRun:
    def test_inline_run_completes_all_cells(self, tmp_path):
        result = run_study(toy_spec(), tmp_path, progress=None)
        assert result.ok
        assert result.executed == ["seed1", "seed2"]
        assert result.skipped == []
        for cell_id in result.executed:
            manifest = load_manifest(cell_dir(tmp_path, cell_id))
            assert manifest.status == "ok"
            assert manifest.result["reqs"] > 0
            assert "tsdb.jsonl" in manifest.artifacts
            assert "slo.jsonl" in manifest.artifacts

    def test_pooled_run_matches_inline_artifacts(self, tmp_path):
        inline, pooled = tmp_path / "inline", tmp_path / "pooled"
        run_study(toy_spec(workers=1), inline, progress=None)
        result = run_study(toy_spec(workers=2), pooled, progress=None)
        assert result.ok and result.workers == 2
        for cell_id in ("seed1", "seed2"):
            a = (cell_dir(inline, cell_id) / "tsdb.jsonl").read_bytes()
            b = (cell_dir(pooled, cell_id) / "tsdb.jsonl").read_bytes()
            assert a == b, f"{cell_id} artifacts differ across pool sizes"

    def test_journal_records_every_cell(self, tmp_path):
        run_study(toy_spec(), tmp_path, progress=None)
        journal = load_journal(tmp_path)
        assert set(journal) == {"seed1", "seed2"}
        assert all(j["status"] == "ok" for j in journal.values())

    def test_wall_time_recorded_outside_summary(self, tmp_path):
        result = run_study(toy_spec(), tmp_path, progress=None)
        assert result.cell_wall_total() > 0
        manifest = load_manifest(cell_dir(tmp_path, "seed1"))
        assert manifest.wall_s > 0


class TestResume:
    def test_completed_cells_skipped(self, tmp_path):
        run_study(toy_spec(), tmp_path, progress=None)
        again = run_study(toy_spec(), tmp_path, progress=None)
        assert again.executed == []
        assert again.skipped == ["seed1", "seed2"]

    def test_missing_cell_rerun_alone(self, tmp_path):
        run_study(toy_spec(), tmp_path, progress=None)
        victim = cell_dir(tmp_path, "seed2")
        for path in victim.iterdir():
            path.unlink()
        victim.rmdir()
        resumed = run_study(toy_spec(), tmp_path, progress=None)
        assert resumed.executed == ["seed2"]
        assert resumed.skipped == ["seed1"]

    def test_fresh_reruns_everything(self, tmp_path):
        run_study(toy_spec(), tmp_path, progress=None)
        fresh = run_study(toy_spec(), tmp_path, resume=False,
                          progress=None)
        assert fresh.executed == ["seed1", "seed2"]
        assert fresh.skipped == []

    def test_different_spec_in_same_dir_rejected(self, tmp_path):
        run_study(toy_spec(), tmp_path, progress=None)
        other = toy_spec(seeds=(1, 2, 3))
        with pytest.raises(ValueError, match="different study"):
            run_study(other, tmp_path, progress=None)

    def test_same_spec_different_workers_accepted(self, tmp_path):
        run_study(toy_spec(workers=1), tmp_path, progress=None)
        again = run_study(toy_spec(workers=2), tmp_path, progress=None)
        assert again.executed == []


class TestFailures:
    def test_broken_scenario_becomes_error_manifest(self, tmp_path):
        spec = StudySpec.build(BROKEN, seeds=[5], workers=1)
        result = run_study(spec, tmp_path, progress=None)
        assert not result.ok
        assert result.failed == ["seed5"]
        manifest = load_manifest(cell_dir(tmp_path, "seed5"))
        assert manifest.status == "error"
        assert "scenario exploded" in manifest.error

    def test_failed_cells_rerun_on_resume(self, tmp_path):
        spec = StudySpec.build(BROKEN, seeds=[5], workers=1)
        run_study(spec, tmp_path, progress=None)
        again = run_study(spec, tmp_path, progress=None)
        assert again.executed == ["seed5"]   # errors never count as done

    def test_stale_artifacts_removed_before_rerun(self, tmp_path):
        run_study(toy_spec(seeds=(1,)), tmp_path, progress=None)
        stale = cell_dir(tmp_path, "seed1") / "trace.jsonl"
        stale.write_text("stale\n")
        journal = tmp_path / "journal.jsonl"
        kept = [line for line in journal.read_text().splitlines()
                if json.loads(line)["cell"] != "seed1"]
        journal.write_text("".join(line + "\n" for line in kept))
        run_study(toy_spec(seeds=(1,)), tmp_path, progress=None)
        assert not stale.exists()
        manifest = load_manifest(cell_dir(tmp_path, "seed1"))
        assert "trace.jsonl" not in manifest.artifacts
