"""Manifest round-trips and the journal's resume semantics."""

import json

from repro.experiments.manifest import (
    CellManifest,
    append_journal,
    completed_cells,
    journal_path,
    load_journal,
    load_manifest,
)


def make_manifest(cell="seed1", status="ok", **kwargs):
    return CellManifest(cell=cell, seed=1, params={"x": 2},
                        scenario="toy", status=status, **kwargs)


class TestManifestRoundTrip:
    def test_write_then_load(self, tmp_path):
        manifest = make_manifest(wall_s=1.25,
                                 artifacts=["tsdb.jsonl"],
                                 result={"reqs": 10})
        manifest.write(tmp_path)
        loaded = load_manifest(tmp_path)
        assert loaded.cell == "seed1"
        assert loaded.status == "ok"
        assert loaded.wall_s == 1.25
        assert loaded.result == {"reqs": 10}

    def test_error_field_survives(self, tmp_path):
        make_manifest(status="error", error="Trace...").write(tmp_path)
        assert load_manifest(tmp_path).error == "Trace..."

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None


class TestJournal:
    def test_append_and_load(self, tmp_path):
        append_journal(tmp_path, {"cell": "a", "status": "ok"})
        append_journal(tmp_path, {"cell": "b", "status": "error"})
        journal = load_journal(tmp_path)
        assert journal["a"]["status"] == "ok"
        assert journal["b"]["status"] == "error"

    def test_later_lines_win(self, tmp_path):
        append_journal(tmp_path, {"cell": "a", "status": "error"})
        append_journal(tmp_path, {"cell": "a", "status": "ok"})
        assert load_journal(tmp_path)["a"]["status"] == "ok"

    def test_torn_final_line_tolerated(self, tmp_path):
        append_journal(tmp_path, {"cell": "a", "status": "ok"})
        with open(journal_path(tmp_path), "a") as fh:
            fh.write('{"cell": "b", "stat')   # SIGKILL mid-write
        journal = load_journal(tmp_path)
        assert set(journal) == {"a"}

    def test_empty_study_dir(self, tmp_path):
        assert load_journal(tmp_path) == {}


class TestCompletedCells:
    def _complete(self, tmp_path, cell_id):
        cell_dir = tmp_path / "cells" / cell_id
        cell_dir.mkdir(parents=True)
        make_manifest(cell=cell_id).write(cell_dir)
        append_journal(tmp_path, {"cell": cell_id, "status": "ok"})

    def test_requires_journal_and_manifest(self, tmp_path):
        self._complete(tmp_path, "seed1")
        # journal line without a manifest (artifacts deleted)
        append_journal(tmp_path, {"cell": "seed2", "status": "ok"})
        # manifest without a journal line (killed before the append)
        cell3 = tmp_path / "cells" / "seed3"
        cell3.mkdir(parents=True)
        make_manifest(cell="seed3").write(cell3)
        assert set(completed_cells(tmp_path)) == {"seed1"}

    def test_error_status_not_completed(self, tmp_path):
        cell_dir = tmp_path / "cells" / "seed9"
        cell_dir.mkdir(parents=True)
        make_manifest(cell="seed9", status="error").write(cell_dir)
        append_journal(tmp_path, {"cell": "seed9", "status": "error"})
        assert completed_cells(tmp_path) == {}

    def test_manifest_json_is_valid_json(self, tmp_path):
        make_manifest().write(tmp_path)
        raw = json.loads((tmp_path / "manifest.json").read_text())
        assert raw["scenario"] == "toy"
        assert sorted(raw) == sorted(
            ["cell", "seed", "params", "scenario", "status", "wall_s",
             "artifacts", "result"])
