"""StudySpec expansion: cells, ids, validation, fingerprints."""

import pytest

from repro.experiments import Cell, StudySpec


class TestCellIds:
    def test_seed_only(self):
        assert Cell(seed=7).cell_id == "seed7"

    def test_params_sorted_into_id(self):
        cell = Cell(seed=3, params=(("zeta", 1), ("alpha", 0.5)))
        assert cell.cell_id == "seed3_alpha=0.5_zeta=1"

    def test_unsafe_characters_sanitised(self):
        cell = Cell(seed=1, params=(("path", "a/b c"),))
        assert "/" not in cell.cell_id
        assert " " not in cell.cell_id


class TestExpansion:
    def test_seeds_cross_grid(self):
        spec = StudySpec.build("fleet", seeds=[1, 2],
                               grid={"skew": [0.6, 0.8, 1.0]})
        cells = spec.cells()
        assert len(cells) == 6
        assert len({c.cell_id for c in cells}) == 6
        assert {c.seed for c in cells} == {1, 2}
        assert {dict(c.params)["skew"] for c in cells} == {0.6, 0.8, 1.0}

    def test_base_params_reach_every_cell(self):
        spec = StudySpec.build("fleet", seeds=[1], params={"homes": 10},
                               grid={"skew": [0.6, 0.8]})
        for cell in spec.cells():
            assert dict(cell.params)["homes"] == 10

    def test_expansion_order_is_stable(self):
        spec = StudySpec.build("fleet", seeds=[2, 1],
                               grid={"a": [True, False]})
        ids = [c.cell_id for c in spec.cells()]
        assert ids == [c.cell_id for c in spec.cells()]

    def test_grid_declaration_order_does_not_change_ids(self):
        a = StudySpec.build("fleet", seeds=[1],
                            grid={"x": [1, 2], "y": [3]})
        b = StudySpec.build("fleet", seeds=[1],
                            grid={"y": [3], "x": [1, 2]})
        assert {c.cell_id for c in a.cells()} \
            == {c.cell_id for c in b.cells()}


class TestValidation:
    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            StudySpec.build("fleet", seeds=[])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StudySpec.build("fleet", seeds=[1, 1])

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            StudySpec.build("fleet", seeds=[1], grid={"skew": []})

    def test_grid_axis_shadowing_base_param_rejected(self):
        with pytest.raises(ValueError, match="shadows"):
            StudySpec.build("fleet", seeds=[1], params={"skew": 0.5},
                            grid={"skew": [0.6]})

    def test_repeated_grid_value_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            StudySpec.build("fleet", seeds=[1], grid={"skew": [0.6, 0.6]})


class TestFingerprint:
    def test_workers_excluded(self):
        a = StudySpec.build("fleet", seeds=[1, 2], workers=2)
        b = StudySpec.build("fleet", seeds=[1, 2], workers=8)
        assert a.fingerprint() == b.fingerprint()

    def test_cell_set_changes_fingerprint(self):
        a = StudySpec.build("fleet", seeds=[1, 2])
        b = StudySpec.build("fleet", seeds=[1, 3])
        assert a.fingerprint() != b.fingerprint()
