"""Cross-run TSDB merge: alignment, bands, permutation invariance."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.merge import AlignedSeries, align_series, merge_tsdb
from repro.obs.slo import merge_verdicts
from repro.obs.timeseries import Series, time_grid


def make_series(name, points, kind="gauge"):
    series = Series(name, kind)
    series.points = [(float(t), float(v)) for t, v in points]
    return series


class TestTimeGrid:
    def test_endpoints_and_count(self):
        grid = time_grid(0.0, 10.0, 5)
        assert grid[0] == 0.0 and grid[-1] == 10.0
        assert len(grid) == 5

    def test_degenerate_span(self):
        assert time_grid(3.0, 3.0, 8) == [3.0]

    def test_rounding_is_applied(self):
        assert all(g == round(g, 9) for g in time_grid(0.0, 1.0, 7))


class TestValuesOnGrid:
    def test_step_interpolation(self):
        series = make_series("s", [(1.0, 10.0), (2.0, 20.0)])
        assert series.values_on_grid([0.5, 1.0, 1.5, 2.5]) \
            == [10.0, 10.0, 10.0, 20.0]

    def test_empty_series_yields_zeros(self):
        assert make_series("s", []).values_on_grid([1.0, 2.0]) == [0.0, 0.0]


class TestAlignSeries:
    def test_mean_min_max(self):
        per_run = {
            "b": make_series("s", [(0.0, 2.0), (10.0, 4.0)]),
            "a": make_series("s", [(0.0, 0.0), (10.0, 2.0)]),
        }
        aligned = align_series(per_run, "s", grid_points=3, resamples=0)
        assert aligned.runs == ["a", "b"]
        assert aligned.mean[0] == 1.0 and aligned.mean[-1] == 3.0
        assert aligned.low[-1] == 2.0 and aligned.high[-1] == 4.0

    def test_single_run_band_collapses(self):
        aligned = align_series(
            {"only": make_series("s", [(0.0, 1.0), (5.0, 3.0)])}, "s",
            grid_points=4)
        assert aligned.ci_lo == aligned.mean == aligned.ci_hi

    def test_ci_band_brackets_mean(self):
        per_run = {f"r{i}": make_series("s", [(0.0, float(i)),
                                              (10.0, float(i * 2))])
                   for i in range(5)}
        aligned = align_series(per_run, "s", grid_points=8)
        for lo, m, hi in zip(aligned.ci_lo, aligned.mean, aligned.ci_hi):
            assert lo <= m + 1e-9 and m - 1e-9 <= hi

    def test_runs_missing_the_series_excluded(self):
        merged = merge_tsdb({
            "a": {"s": make_series("s", [(0.0, 1.0), (1.0, 2.0)])},
            "b": {},
        })
        assert merged["s"].runs == ["a"]

    def test_no_points_anywhere_is_dropped(self):
        assert merge_tsdb({"a": {"s": make_series("s", [])}}) == {}


def _dump(merged):
    return json.dumps(
        {name: merged[name].to_dict(include_per_run=True)
         for name in sorted(merged)}, sort_keys=True)


# A compact pool of synthetic runs for the permutation property: run id
# -> {series name -> Series}. Values vary per run; times are irregular
# so grid resampling actually has to interpolate.
run_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=6)


@st.composite
def run_pool(draw):
    n_runs = draw(st.integers(min_value=2, max_value=5))
    names = [f"m{i}" for i in range(draw(st.integers(1, 3)))]
    runs = {}
    for r in range(n_runs):
        series_map = {}
        for name in names:
            values = draw(run_values)
            gaps = draw(st.lists(
                st.floats(min_value=0.01, max_value=5.0,
                          allow_nan=False),
                min_size=len(values), max_size=len(values)))
            t = 0.0
            points = []
            for value, gap in zip(values, gaps):
                t += gap
                points.append((t, value))
            series_map[name] = make_series(name, points)
        runs[f"run{r}"] = series_map
    return runs


class TestPermutationInvariance:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), runs=run_pool())
    def test_merge_identical_under_any_run_order(self, data, runs):
        baseline = _dump(merge_tsdb(runs, grid_points=16, resamples=50))
        order = data.draw(st.permutations(sorted(runs)))
        permuted = {run_id: runs[run_id] for run_id in order}
        assert list(permuted) == order   # insertion order really differs
        assert _dump(merge_tsdb(permuted, grid_points=16,
                                resamples=50)) == baseline

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(),
           mets=st.lists(st.booleans(), min_size=2, max_size=6))
    def test_verdict_merge_identical_under_any_run_order(self, data, mets):
        verdicts = {
            f"run{i}": [{"slo": "avail", "service": "toy",
                         "objective": 0.9, "met": met,
                         "error_rate": 0.25 if not met else 0.0,
                         "budget_spent": 1.0 if not met else 0.0,
                         "alerts": int(not met)}]
            for i, met in enumerate(mets)}
        baseline = merge_verdicts(verdicts)
        order = data.draw(st.permutations(sorted(verdicts)))
        permuted = {run_id: verdicts[run_id] for run_id in order}
        assert merge_verdicts(permuted) == baseline
        pass_rate = baseline[0][0]["pass_rate"]
        assert pass_rate == round(sum(mets) / len(mets), 6)


class TestAlignedSeriesDict:
    def test_rounding_and_keys(self):
        aligned = AlignedSeries(
            name="s", kind="gauge", grid=[0.123456789123],
            runs=["a"], values=[[1.0]], mean=[1.0 / 3.0],
            low=[0.0], high=[1.0], ci_lo=[0.1], ci_hi=[0.9])
        raw = aligned.to_dict()
        assert raw["mean"] == [round(1.0 / 3.0, 9)]
        assert sorted(raw) == ["ci_hi", "ci_lo", "grid", "kind", "max",
                               "mean", "min", "name", "runs"]
        assert "values" in aligned.to_dict(include_per_run=True)
