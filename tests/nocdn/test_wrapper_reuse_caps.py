"""Regression: wrapper reuse must not authorize bytes without bound.

Pre-fix, ``_serve_wrapper`` re-extended each peer's ``cap_bytes`` on
every reuse for as long as ``wrapper_reuse_ttl`` allowed — even after
the wrapper's short-term keys expired, when the audit rejects every
record the peer uploads. A long reuse TTL therefore grew a peer's
outstanding authorization forever while the peer served unpaid, and
the ``_keys`` table never shrank. The fix stops reusing a wrapper once
its keys expire (reuse window = min(wrapper_reuse_ttl, key_ttl)) and
prunes key issues once they are two TTLs past issuance.

Peers here flush usage right after each load — the honest cadence the
prune grace assumes (uploads always land well inside one key TTL).
"""

from tests.nocdn.harness import NoCdnWorld

KEY_TTL = 20.0
PAGE_BYTES = 20_000 + 4 * 50_000  # harness catalog: container + 4 objects


def run_reuse_epochs(epochs):
    world = NoCdnWorld(num_peers=2, seed=20, key_ttl=KEY_TTL,
                       wrapper_reuse_ttl=1000.0)
    for _ in range(epochs):
        world.load_page("/page0")
        for peer in world.peers:
            peer.flush_usage()
        world.sim.run()
        world.sim.run_until(world.sim.now + 10.0)
    return world


def outstanding_bytes(provider, peer_id):
    return sum(issue.cap_bytes - issue.accepted_bytes
               for issue in provider._keys.values()
               if issue.peer_id == peer_id)


class TestReuseCapsStayBounded:
    def test_outstanding_authorization_is_bounded(self):
        world = run_reuse_epochs(30)
        assert world.provider.wrappers_reused > 0  # reuse path exercised
        assert world.provider.direct_pages_served == 0  # peers stayed up
        for peer in world.peers:
            # Live authorization covers at most the reuse window (two
            # 10s-spaced reuses per wrapper) across the unpruned
            # wrappers of the last 2x key_ttl — nowhere near the 30
            # page-loads of caps the unbounded path accumulates.
            assert outstanding_bytes(world.provider, peer.peer_id) \
                <= 8 * PAGE_BYTES

    def test_key_table_is_pruned(self):
        world = run_reuse_epochs(30)
        # Retention is 2x key_ttl plus at most one amortized prune
        # period (prunes run once per key_ttl, on wrapper builds).
        now = world.sim.now
        assert len(world.provider._keys) > 0
        for issue in world.provider._keys.values():
            assert now <= issue.issued_at + 4 * KEY_TTL

    def test_accounting_stays_clean_under_reuse(self):
        world = run_reuse_epochs(20)
        audit = world.provider.audit
        assert audit.accepted_records > 0
        # Prompt uploads + reuse capped at key expiry: every record's
        # key is alive and known when audited.
        assert audit.rejected_expired == 0
        assert audit.rejected_unknown_key == 0
        assert audit.rejected_total == 0
        # And nobody lost trust along the way.
        assert all(info.trust == 1.0
                   for info in world.provider.peers.values())
