"""Contract every cache-placement strategy must honor.

Whatever the placement (naive, sharded, replicate-hot), a peer never
exceeds its cache budget, never forwards a request it can serve FRESH,
answers forwarded misses with 404 (the hop guard), falls back to the
origin on a miss, and keeps usage accounting inside the wrapper's
HMAC byte caps.
"""

import pytest

from repro.hpop.core import HPOP_PORT
from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.nocdn.peer import HOP_HEADER
from repro.nocdn.strategy import STRATEGIES
from repro.nocdn.peer import NoCdnPeerService
from tests.nocdn.harness import NoCdnWorld, make_catalog

ALL_STRATEGIES = sorted(STRATEGIES)


def make_world(strategy, num_peers=4, cache_bytes=None, **kw):
    services = None
    if cache_bytes is not None:
        services = [NoCdnPeerService(cache_bytes=cache_bytes)
                    for _ in range(num_peers)]
    return NoCdnWorld(num_peers=num_peers, seed=31, strategy=strategy,
                      peer_services=services,
                      catalog=make_catalog(num_pages=3), **kw)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestStrategyContract:
    def test_loads_complete_via_peers(self, strategy):
        world = make_world(strategy)
        for url in ("/page0", "/page1", "/page2"):
            result = world.load_page(url)
            assert not result.corrupted
            assert result.bytes_from_peers > 0

    def test_misses_fall_back_to_origin(self, strategy):
        world = make_world(strategy)
        world.load_page("/page0")  # cold fleet: every serve is a miss
        assert sum(p.origin_fills for p in world.peers) > 0
        assert sum(p.origin_fill_bytes for p in world.peers) > 0

    def test_capacity_never_exceeded(self, strategy):
        # Budget far below the catalog (3 pages x ~220 KB): placement
        # pressure must surface as evictions, never as overcommit.
        budget = 120_000
        world = make_world(strategy, cache_bytes=budget)
        for _ in range(2):
            for url in ("/page0", "/page1", "/page2"):
                world.load_page(url)
        for peer in world.peers:
            signup = peer.signup_for("news.example")
            assert signup.cache.used_bytes <= budget

    def test_fresh_hits_are_served_in_place(self, strategy):
        world = make_world(strategy)
        obj = world.catalog.page("/page0").embedded[0]
        peer = world.peers[0]
        signup = peer.signup_for("news.example")
        signup.cache.store(obj, world.sim.now)
        fills, forwards = peer.origin_fills, peer.neighbor_hits

        client = HttpClient(world.client_device, world.city.network)
        responses = []
        client.request(world.hpops[0].host,
                       HttpRequest("GET", f"/nocdn/news.example/{obj.name}"),
                       lambda resp, _st: responses.append(resp),
                       port=HPOP_PORT)
        world.sim.run()
        assert [r.status for r in responses] == [200]
        assert peer.local_hit_bytes >= obj.size
        # FRESH means no forward and no origin fill — served in place.
        assert peer.origin_fills == fills
        assert peer.neighbor_hits == forwards

    def test_forwarded_miss_answers_404(self, strategy):
        world = make_world(strategy)
        peer = world.peers[0]
        client = HttpClient(world.client_device, world.city.network)
        responses = []
        client.request(
            world.hpops[0].host,
            HttpRequest("GET", "/nocdn/news.example/page0-obj0.bin",
                        headers={HOP_HEADER: "1"}),
            lambda resp, _st: responses.append(resp), port=HPOP_PORT)
        world.sim.run()
        # The hop guard bounds forwarding depth at one: a forwarded
        # miss must not origin-fill or re-forward on the target's dime.
        assert [r.status for r in responses] == [404]
        assert peer.forwarded_misses == 1
        assert peer.origin_fills == 0

    def test_usage_accounting_balances(self, strategy):
        world = make_world(strategy)
        for url in ("/page0", "/page1", "/page0"):
            world.load_page(url)
        for peer in world.peers:
            peer.flush_usage()
        world.sim.run()
        audit = world.provider.audit
        assert audit.accepted_records > 0
        assert audit.rejected_over_cap == 0
        assert audit.rejected_total == 0

    def test_same_seed_is_deterministic(self, strategy):
        def fingerprint():
            world = make_world(strategy)
            for url in ("/page0", "/page1", "/page2", "/page0"):
                world.load_page(url)
            return [(p.peer_id, p.bytes_served, p.origin_fills,
                     p.neighbor_hits, p.local_hit_bytes)
                    for p in world.peers]

        assert fingerprint() == fingerprint()


class TestNeighborForwarding:
    def test_neighbor_hits_offload_the_origin(self):
        # Naive placement + directory: random assignment often lands on
        # a peer without the object, which forwards to a directory-known
        # holder instead of re-filling from the origin.
        world = make_world("naive")
        world.load_page("/page0")
        for _ in range(6):
            world.load_page("/page0")
        assert sum(p.neighbor_hits for p in world.peers) > 0
        assert sum(p.neighbor_hit_bytes for p in world.peers) > 0
        # Forward targets served those requests FRESH in place.
        assert sum(p.forwarded_served for p in world.peers) > 0


class TestShardedPlacement:
    def test_fleet_caches_each_object_once(self):
        world = make_world("sharded")
        for _ in range(2):
            for url in ("/page0", "/page1", "/page2"):
                world.load_page(url)
        for obj in (o for page_url in ("/page0", "/page1", "/page2")
                    for o in world.catalog.page(page_url).all_objects()):
            holders = [
                p.peer_id for p in world.peers
                if p.signup_for("news.example").cache.contains(obj.name)]
            assert len(holders) <= 1

    def test_warm_home_peer_stops_origin_fills(self):
        world = make_world("sharded")
        world.load_page("/page0")
        world.load_page("/page0")
        fills = sum(p.origin_fills for p in world.peers)
        world.load_page("/page0")  # third load: homes are warm
        assert sum(p.origin_fills for p in world.peers) == fills
