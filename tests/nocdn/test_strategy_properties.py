"""Property tests for the consistent-hash ring and content directory.

The ring underpins the sharded strategies: every key must always find
a live owner (total coverage), two rings over the same peer set must
agree (determinism — the origin and any observer compute identical
placements), and membership changes must only move the arcs that
touched the changed peer (bounded remapping, the consistent-hashing
contract). The directory property is convergence: once gossip
quiesces, its entries mirror the caches they describe.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.http.cache import HttpCache
from repro.http.content import WebObject
from repro.nocdn.directory import ContentDirectory, DirectoryPublisher
from repro.nocdn.strategy import RING_SPACE, HashRing
from repro.sim.engine import Simulator

# Rings are immutable w.r.t. key lookups, so build each fleet size once.
_RINGS = {}


def ring_for(n, vnodes=64):
    if (n, vnodes) not in _RINGS:
        ring = HashRing(vnodes=vnodes)
        for i in range(n):
            ring.add_peer(f"peer{i}")
        _RINGS[(n, vnodes)] = ring
    return _RINGS[(n, vnodes)]


def peer_ids(n):
    return {f"peer{i}" for i in range(n)}


keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-/._", min_size=1,
    max_size=24)


class TestRingCoverage:
    @given(n=st.integers(1, 40), key=keys)
    @settings(max_examples=150, deadline=None)
    def test_every_key_has_a_live_owner(self, n, key):
        ring = ring_for(n)
        owner = ring.owner(key, peer_ids(n))
        assert owner is not None
        assert owner in peer_ids(n)

    @given(n=st.integers(2, 40), key=keys, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_owner_respects_live_restriction(self, n, key, data):
        ring = ring_for(n)
        seed = data.draw(st.integers(0, 2**31), label="live_seed")
        rng = random.Random(seed)
        live = set(rng.sample(sorted(peer_ids(n)), rng.randint(1, n)))
        owner = ring.owner(key, live)
        assert owner in live

    def test_empty_live_set_has_no_owner(self):
        ring = ring_for(3)
        assert ring.owner("anything", set()) is None
        assert HashRing().owner("anything", {"peer0"}) is None


class TestRingDeterminism:
    @given(n=st.integers(1, 20), key=keys, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_insertion_order_is_irrelevant(self, n, key, data):
        seed = data.draw(st.integers(0, 2**31), label="order_seed")
        shuffled = sorted(peer_ids(n))
        random.Random(seed).shuffle(shuffled)
        other = HashRing()
        for pid in shuffled:
            other.add_peer(pid)
        assert other.owner(key, peer_ids(n)) == \
            ring_for(n).owner(key, peer_ids(n))

    @given(n=st.integers(2, 20), key=keys)
    @settings(max_examples=100, deadline=None)
    def test_remove_equals_never_added(self, n, key):
        removed = HashRing()
        for i in range(n):
            removed.add_peer(f"peer{i}")
        removed.remove_peer(f"peer{n - 1}")
        assert removed.owner(key, peer_ids(n - 1)) == \
            ring_for(n - 1).owner(key, peer_ids(n - 1))


class TestBoundedRemapping:
    @given(n=st.integers(2, 40), key=keys, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_leave_only_remaps_the_leavers_keys(self, n, key, data):
        ring = ring_for(n)
        victim = data.draw(
            st.sampled_from(sorted(peer_ids(n))), label="victim")
        before = ring.owner(key, peer_ids(n))
        after = ring.owner(key, peer_ids(n) - {victim})
        if before != victim:
            assert after == before

    @given(n=st.integers(1, 40), key=keys)
    @settings(max_examples=150, deadline=None)
    def test_join_only_steals_the_joiners_keys(self, n, key):
        # ring_for(n + 1) is ring_for(n) plus one joiner: any key the
        # joiner does not own keeps its previous owner.
        joined = ring_for(n + 1)
        after = joined.owner(key, peer_ids(n + 1))
        if after != f"peer{n}":
            assert after == ring_for(n).owner(key, peer_ids(n))

    @given(n=st.integers(2, 40))
    @settings(max_examples=60, deadline=None)
    def test_remapped_share_is_bounded(self, n):
        # The keyspace fraction a single membership change moves is
        # exactly the changed peer's arc share; with 128 vnodes it
        # concentrates near 1/n, and 2/n bounds it with enormous
        # margin (the deviation is ~11 sigma for every fleet size).
        ring = ring_for(n, vnodes=128)
        shares = ring.arc_shares(peer_ids(n))
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert max(shares.values()) <= 2.0 / n

    def test_arc_shares_respect_live_set(self):
        ring = ring_for(6, vnodes=128)
        live = {"peer0", "peer3"}
        shares = ring.arc_shares(live)
        assert set(shares) == live
        assert abs(sum(shares.values()) - 1.0) < 1e-9


ops = st.lists(
    st.tuples(st.integers(0, 3),                       # peer index
              st.sampled_from(["store", "evict"]),     # cache mutation
              st.sampled_from([f"obj{i}" for i in range(6)])),
    min_size=0, max_size=40)


class TestDirectoryConvergence:
    @given(op_list=ops, gossip=st.sampled_from([0.0, 5.0]))
    @settings(max_examples=80, deadline=None)
    def test_directory_matches_caches_after_quiesce(self, op_list, gossip):
        sim = Simulator(seed=7)
        directory = ContentDirectory(sim, gossip_interval=gossip)
        caches, publishers = [], []
        for i in range(4):
            pub = DirectoryPublisher(directory, f"peer{i}", "site",
                                     endpoint=(None, 0))
            cache = HttpCache(
                10**9, default_ttl=1e9,
                on_evict=lambda key, _e, _pub=pub: _pub.note_evict(key))
            caches.append(cache)
            publishers.append(pub)
        for peer, op, name in op_list:
            if op == "store":
                if caches[peer].store(WebObject(name, 1000), sim.now):
                    publishers[peer].note_store(name)
            else:
                caches[peer].invalidate(name)  # on_evict announces it
        for pub in publishers:
            pub.flush()
        # Convergence: the quiesced directory and the actual cache
        # contents are the same relation, in both directions.
        claimed = {(key[1], pid)
                   for key, holders in directory.entries().items()
                   for pid in holders}
        actual = {(name, f"peer{i}")
                  for i, cache in enumerate(caches)
                  for name in [f"obj{j}" for j in range(6)]
                  if cache.contains(name)}
        assert claimed == actual

    def test_staleness_is_bounded_by_gossip_interval(self):
        sim = Simulator(seed=3)
        directory = ContentDirectory(sim, gossip_interval=10.0)
        pub = DirectoryPublisher(directory, "peer0", "site",
                                 endpoint=(None, 0))
        pub.note_store("obj0")
        assert directory.holders("site", "obj0") == []  # not yet flushed
        sim.run_until(30.0)  # weak gossip ticks fire as time passes
        assert directory.holders("site", "obj0") == ["peer0"]
        hist = directory.metrics.histograms["directory_staleness_seconds"]
        assert hist.count == 1
        assert 0.0 <= hist.quantile(1.0) <= directory.staleness_bound

    def test_drop_peer_forgets_everything_at_once(self):
        sim = Simulator(seed=3)
        directory = ContentDirectory(sim, gossip_interval=0.0)
        for i in range(2):
            pub = DirectoryPublisher(directory, f"peer{i}", "site",
                                     endpoint=(None, 0))
            pub.note_store("obj0")
            pub.note_store(f"only{i}")
        assert directory.drop_peer("peer0") == 2
        assert directory.holders("site", "obj0") == ["peer1"]
        assert directory.holders("site", "only0") == []
        assert directory.drop_peer("peer0") == 0


class TestRingSpace:
    def test_single_peer_owns_everything(self):
        ring = HashRing(vnodes=1)
        ring.add_peer("solo")
        shares = ring.arc_shares({"solo"})
        assert shares == {"solo": 1.0}
        assert RING_SPACE == 1 << 64
