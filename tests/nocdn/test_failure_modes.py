"""NoCDN failure-mode tests: origin outages, stale serving, combined attacks."""

import pytest

from repro.nocdn.peer import NoCdnPeerService
from repro.nocdn.selection import AffinitySelection

from tests.nocdn.harness import NoCdnWorld, make_catalog


class TestOriginOutage:
    def test_peer_serves_stale_when_origin_down(self):
        """A peer with an expired cache entry serves it stale rather than
        failing the client when the origin is unreachable."""
        world = NoCdnWorld(num_peers=1, object_ttl=5.0)
        world.load_page()  # warm the peer
        # Let entries expire, then take the origin down.
        world.sim.run_until(world.sim.now + 10.0)
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        world.provider.host.power_off()
        results = []
        world.loader._wrapped_load(world.provider, wrapper, world.sim.now,
                                   100, results.append, lambda e: None)
        world.sim.run()
        result = results[0]
        page = world.catalog.page("/page0")
        # Stale bytes still add up to a complete page.
        assert result.bytes_from_peers == page.total_size
        assert result.corrupted == []

    def test_cold_peer_502s_without_origin(self):
        world = NoCdnWorld(num_peers=1)
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        world.provider.host.power_off()  # peer cache is cold, origin dead
        results = []
        world.loader._wrapped_load(world.provider, wrapper, world.sim.now,
                                   100, results.append, lambda e: None)
        world.sim.run()
        result = results[0]
        # Nothing could be served; the load completes with failures
        # recorded rather than hanging.
        assert result.bytes_from_peers == 0
        assert len(result.peer_failures) == \
            world.catalog.page("/page0").object_count


class TestCombinedAttacks:
    def test_chunked_delivery_with_tamperer(self):
        """Range-sharded objects from a tampering peer still verify and
        recover at whole-object granularity."""
        catalog = make_catalog(objects_per_page=1, object_size=300_000)
        tamperer = NoCdnPeerService(tamper=True)
        honest = NoCdnPeerService()
        world = NoCdnWorld(peer_services=[tamperer, honest],
                           catalog=catalog, chunk_size=100_000)
        result = world.load_page()
        page = catalog.page("/page0")
        # At least one chunk came from the tamperer -> object-level
        # corruption detected and recovered from origin.
        assert result.corrupted
        assert result.bytes_from_origin >= page.container.size or \
            result.bytes_from_origin >= 300_000
        assert result.total_bytes >= page.total_size

    def test_tamper_and_inflate_together(self):
        cheater = NoCdnPeerService(tamper=True, inflate_factor=2.0)
        world = NoCdnWorld(peer_services=[cheater])
        result = world.load_page()
        cheater.flush_usage()
        world.sim.run()
        # Tampered objects earn no usage records (client only signs for
        # verified bytes); whatever the peer uploads anyway is inflated
        # and fails HMAC.
        assert world.provider.payable_bytes.get(cheater.peer_id, 0) == 0
        info = world.provider.peers[cheater.peer_id]
        assert info.trust < 1.0

    def test_expelled_peer_not_in_new_wrappers(self):
        tamperer = NoCdnPeerService(tamper=True)
        honest = NoCdnPeerService()
        world = NoCdnWorld(peer_services=[tamperer, honest])
        for _ in range(6):
            world.load_page()
        assert world.provider.peers[tamperer.peer_id].expelled
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        assert tamperer.peer_id not in wrapper.peers_used()


class TestSignupValidation:
    def test_double_signup_rejected(self):
        world = NoCdnWorld(num_peers=1)
        with pytest.raises(ValueError):
            world.peers[0].sign_up(world.provider)

    def test_signup_lookup(self):
        world = NoCdnWorld(num_peers=1)
        assert world.peers[0].providers() == ["news.example"]
        with pytest.raises(KeyError):
            world.peers[0].signup_for("unknown.example")

    def test_invalid_inflate_factor(self):
        with pytest.raises(ValueError):
            NoCdnPeerService(inflate_factor=0.5)
