"""Origin-side accounting details: payments, trust, anomaly edge cases."""

import pytest

from repro.nocdn.records import make_record

from tests.nocdn.harness import NoCdnWorld


class TestPayments:
    def test_paid_total_accumulates_across_epochs(self):
        world = NoCdnWorld(num_peers=1, payment_per_gib=1.0)
        world.load_page()
        world.peers[0].flush_usage()
        world.sim.run()
        first = world.provider.settle_epoch()
        world.load_page()
        world.peers[0].flush_usage()
        world.sim.run()
        second = world.provider.settle_epoch()
        peer_id = world.peers[0].peer_id
        assert world.provider.paid_total[peer_id] == pytest.approx(
            first[peer_id] + second[peer_id])

    def test_settle_with_no_traffic(self):
        world = NoCdnWorld(num_peers=1)
        assert world.provider.settle_epoch() == {}

    def test_uncapped_payment_proportional_to_bytes(self):
        world = NoCdnWorld(num_peers=1, payment_per_gib=1.0)
        result = world.load_page()
        world.peers[0].flush_usage()
        world.sim.run()
        payments = world.provider.settle_epoch()
        peer_id = world.peers[0].peer_id
        expected = result.bytes_from_peers / (1024 ** 3)
        assert payments[peer_id] == pytest.approx(expected)


class TestTrustDynamics:
    def test_trust_decays_geometrically(self):
        world = NoCdnWorld(num_peers=1, trust_penalty=0.5)
        peer_id = world.peers[0].peer_id
        info = world.provider.peers[peer_id]
        world.provider._penalize(peer_id)
        assert info.trust == pytest.approx(0.5)
        world.provider._penalize(peer_id)
        assert info.trust == pytest.approx(0.25)

    def test_expulsion_threshold(self):
        world = NoCdnWorld(num_peers=1, trust_penalty=0.1,
                           expel_threshold=0.05)
        peer_id = world.peers[0].peer_id
        world.provider._penalize(peer_id)   # 0.1
        assert not world.provider.peers[peer_id].expelled
        world.provider._penalize(peer_id)   # 0.01 < 0.05
        assert world.provider.peers[peer_id].expelled

    def test_penalize_unknown_peer_is_noop(self):
        world = NoCdnWorld(num_peers=1)
        world.provider._penalize("ghost-peer")  # no exception

    def test_manual_expulsion(self):
        world = NoCdnWorld(num_peers=2)
        target = world.peers[0].peer_id
        world.provider.expel_peer(target)
        alive = [p.peer_id for p in world.provider.alive_peers()]
        assert target not in alive
        assert world.peers[1].peer_id in alive


class TestAnomalyEdgeCases:
    def test_too_few_peers_no_flags(self):
        world = NoCdnWorld(num_peers=2)
        world.provider.payable_bytes = {
            world.peers[0].peer_id: 1e9,
            world.peers[1].peer_id: 1e3,
        }
        assert world.provider.anomalous_peers() == []

    def test_zero_median_flags_any_positive(self):
        world = NoCdnWorld(num_peers=4)
        ids = [p.peer_id for p in world.peers]
        world.provider.payable_bytes = {
            ids[0]: 5e6, ids[1]: 0.0, ids[2]: 0.0, ids[3]: 0.0}
        assert world.provider.anomalous_peers() == [ids[0]]

    def test_uniform_volumes_not_flagged(self):
        world = NoCdnWorld(num_peers=4)
        world.provider.payable_bytes = {
            p.peer_id: 1e6 for p in world.peers}
        assert world.provider.anomalous_peers() == []


class TestKeyExpiry:
    def test_expired_wrapper_key_rejected(self):
        world = NoCdnWorld(num_peers=1, key_ttl=10.0)
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        peer_id = world.peers[0].peer_id
        record = make_record(wrapper.wrapper_id, peer_id, "page0.html",
                             1_000, "late-nonce", wrapper.peer_keys[peer_id])
        world.sim.run_until(world.sim.now + 60.0)  # past the key TTL
        world.provider._audit_record(peer_id, record)
        assert world.provider.audit.rejected_expired == 1
        assert world.provider.audit.accepted_records == 0
