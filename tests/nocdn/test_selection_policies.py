"""Direct unit tests for selection policies (incl. property-based)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.content import WebObject, WebPage
from repro.nocdn.selection import (
    AffinitySelection,
    DisjointSelection,
    LoadAwareSelection,
    RandomSelection,
    SingleRandomPeer,
    TrustWeightedSelection,
)


class FakePeer:
    def __init__(self, peer_id, trust=1.0):
        self.peer_id = peer_id
        self.trust = trust
        self.outstanding_bytes = 0
        self.host = None


def make_page(num_embedded):
    return WebPage(
        url="/p",
        container=WebObject("c.html", 10_000),
        embedded=tuple(WebObject(f"o{i}.bin", 20_000)
                       for i in range(num_embedded)),
    )


def peers(n):
    return [FakePeer(f"p{i}") for i in range(n)]


class TestDisjoint:
    def test_all_distinct_when_enough_peers(self, seeded_rng):
        page = make_page(4)  # 5 objects
        assignment = DisjointSelection().assign(page, None, peers(6), None,
                                                seeded_rng(1))
        assert len(set(assignment.values())) == 5

    def test_even_reuse_when_fewer_peers(self, seeded_rng):
        page = make_page(5)  # 6 objects over 3 peers
        assignment = DisjointSelection().assign(page, None, peers(3), None,
                                                seeded_rng(2))
        counts = {}
        for peer in assignment.values():
            counts[peer] = counts.get(peer, 0) + 1
        assert sorted(counts.values()) == [2, 2, 2]

    def test_shuffle_varies_by_rng(self, seeded_rng):
        page = make_page(4)
        a = DisjointSelection().assign(page, None, peers(5), None,
                                       seeded_rng(1))
        b = DisjointSelection().assign(page, None, peers(5), None,
                                       seeded_rng(99))
        assert a != b  # randomized mapping (collusion mitigation)


class TestAffinity:
    def test_same_object_same_candidate_set(self, seeded_rng):
        page = make_page(3)
        policy = AffinitySelection(spread=2)
        seen = {name: set() for name in
                (o.name for o in page.all_objects())}
        for seed in range(30):
            assignment = policy.assign(page, None, peers(6), None,
                                       seeded_rng(seed))
            for name, pid in assignment.items():
                seen[name].add(pid)
        # Despite 30 random draws, each object stays on <= spread peers.
        assert all(len(pids) <= 2 for pids in seen.values())

    def test_spread_one_is_deterministic(self, seeded_rng):
        page = make_page(3)
        policy = AffinitySelection(spread=1)
        a = policy.assign(page, None, peers(6), None, seeded_rng(1))
        b = policy.assign(page, None, peers(6), None, seeded_rng(2))
        assert a == b

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            AffinitySelection(spread=0)


class TestTrustWeighted:
    def test_zero_trust_gets_floor_not_exclusion(self, seeded_rng):
        page = make_page(0)
        policy = TrustWeightedSelection(floor=0.01)
        pool = [FakePeer("good"), FakePeer("bad", trust=0.0)]
        picks = set()
        for seed in range(200):
            assignment = policy.assign(page, None, pool, None,
                                       seeded_rng(seed))
            picks.update(assignment.values())
        assert "good" in picks  # dominant
        # With a floor, 'bad' is rare but possible; 'good' must dominate.
        good_count = sum(
            1 for seed in range(200)
            if policy.assign(page, None, pool, None,
                             seeded_rng(seed))["c.html"] == "good")
        assert good_count > 180


@settings(max_examples=40, deadline=None)
@given(num_objects=st.integers(min_value=0, max_value=8),
       num_peers=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=1000))
def test_property_every_policy_covers_every_object(num_objects, num_peers,
                                                   seed):
    """All policies assign every page object to a known peer."""
    page = make_page(num_objects)
    pool = peers(num_peers)
    names = {o.name for o in page.all_objects()}
    ids = {p.peer_id for p in pool}
    for policy in (RandomSelection(), SingleRandomPeer(),
                   DisjointSelection(), LoadAwareSelection(),
                   AffinitySelection(spread=2), TrustWeightedSelection()):
        assignment = policy.assign(page, None, list(pool), None,
                                   random.Random(seed))
        assert set(assignment) == names
        assert set(assignment.values()) <= ids
