"""Unit tests: usage records, wrapper pages, selection policies."""

import random

import pytest

from repro.http.content import WebObject, WebPage
from repro.net.address import Address
from repro.nocdn.records import UsageRecord, make_record
from repro.nocdn.selection import chunked_assignment
from repro.nocdn.wrapper import ChunkAssignment, WrapperPage
from repro.util.crypto import deterministic_key

KEY = deterministic_key("peer-key")


def make_page(num_embedded=3, size=10_000):
    return WebPage(
        url="/index",
        container=WebObject("index.html", 5_000),
        embedded=tuple(WebObject(f"obj{i}.bin", size)
                       for i in range(num_embedded)),
    )


class TestUsageRecords:
    def test_sign_verify_round_trip(self):
        record = make_record("w1", "peer-a", "obj", 1000, "n1", KEY)
        assert record.verify(KEY)

    def test_unsigned_record_fails(self):
        record = UsageRecord("w1", "p", "o", 10, "n")
        assert not record.verify(KEY)

    def test_inflation_breaks_signature(self):
        record = make_record("w1", "peer-a", "obj", 1000, "n1", KEY)
        assert not record.inflated(2.0).verify(KEY)

    def test_wrong_key_fails(self):
        record = make_record("w1", "peer-a", "obj", 1000, "n1", KEY)
        assert not record.verify(deterministic_key("other"))

    def test_any_field_tamper_detected(self):
        record = make_record("w1", "peer-a", "obj", 1000, "n1", KEY)
        from dataclasses import replace
        for change in (
            {"wrapper_id": "w2"}, {"peer_id": "peer-b"},
            {"object_name": "other"}, {"bytes_served": 2000},
            {"nonce": "n2"},
        ):
            assert not replace(record, **change).verify(KEY)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_record("w", "p", "o", -1, "n", KEY)


def build_wrapper(page, peers=("peer-a", "peer-b"), chunks=None,
                  assignments=None):
    peer_list = list(peers)
    if assignments is None and chunks is None:
        assignments = {obj.name: peer_list[i % len(peer_list)]
                       for i, obj in enumerate(page.all_objects())}
    return WrapperPage(
        wrapper_id="w1",
        page=page,
        assignments=assignments or {},
        chunks=chunks or [],
        hashes={obj.name: obj.sha256 for obj in page.all_objects()},
        peer_endpoints={p: (Address.parse("100.64.0.1"), 443)
                        for p in peer_list},
        peer_keys={p: deterministic_key(p) for p in peer_list},
    )


class TestWrapperPage:
    def test_valid_wrapper(self):
        wrapper = build_wrapper(make_page())
        assert wrapper.size < 5_000  # small: the scalability point
        assert set(wrapper.peers_used()) <= {"peer-a", "peer-b"}

    def test_missing_assignment_rejected(self):
        page = make_page()
        with pytest.raises(ValueError):
            build_wrapper(page, assignments={"index.html": "peer-a"})

    def test_missing_key_rejected(self):
        page = make_page(num_embedded=0)
        with pytest.raises(ValueError):
            WrapperPage(
                wrapper_id="w", page=page,
                assignments={"index.html": "peer-a"},
                chunks=[],
                hashes={"index.html": page.container.sha256},
                peer_endpoints={"peer-a": (Address.parse("10.0.0.1"), 443)},
                peer_keys={},
            )

    def test_expected_bytes_caps_by_peer(self):
        page = make_page(num_embedded=2, size=10_000)
        wrapper = build_wrapper(
            page, assignments={
                "index.html": "peer-a",
                "obj0.bin": "peer-a",
                "obj1.bin": "peer-b",
            })
        assert wrapper.expected_bytes_for("peer-a") == 15_000
        assert wrapper.expected_bytes_for("peer-b") == 10_000
        assert wrapper.expected_bytes_for("stranger") == 0

    def test_work_items_cover_page(self):
        page = make_page()
        wrapper = build_wrapper(page)
        items = wrapper.work_items()
        total = sum(item.size for item in items)
        assert total == page.total_size

    def test_chunked_wrapper(self):
        page = make_page(num_embedded=1, size=100_000)
        chunks = [
            ChunkAssignment("index.html", "peer-a", 0, 5_000),
            ChunkAssignment("obj0.bin", "peer-a", 0, 50_000),
            ChunkAssignment("obj0.bin", "peer-b", 50_000, 100_000),
        ]
        wrapper = build_wrapper(page, chunks=chunks, assignments={})
        assert wrapper.expected_bytes_for("peer-b") == 50_000


class FakePeerInfo:
    def __init__(self, peer_id):
        self.peer_id = peer_id
        self.trust = 1.0
        self.outstanding_bytes = 0
        self.host = None


class TestChunkedAssignment:
    def test_chunks_cover_objects_exactly(self):
        page = make_page(num_embedded=2, size=75_000)
        peers = [FakePeerInfo(f"p{i}") for i in range(3)]
        chunks = chunked_assignment(page, peers, random.Random(1),
                                    chunk_size=20_000)
        by_object = {}
        for chunk in chunks:
            by_object.setdefault(chunk.object_name, []).append(chunk)
        for obj in page.all_objects():
            ranges = sorted(by_object[obj.name], key=lambda c: c.start)
            assert ranges[0].start == 0
            assert ranges[-1].end == obj.size
            for a, b in zip(ranges, ranges[1:]):
                assert a.end == b.start  # contiguous, no gaps or overlap

    def test_large_objects_use_multiple_peers(self):
        page = WebPage(url="/", container=WebObject("big.bin", 200_000))
        peers = [FakePeerInfo(f"p{i}") for i in range(4)]
        chunks = chunked_assignment(page, peers, random.Random(2),
                                    chunk_size=50_000)
        assert len({c.peer_id for c in chunks}) > 1

    def test_small_objects_stay_whole(self):
        page = WebPage(url="/", container=WebObject("tiny.html", 1_000))
        peers = [FakePeerInfo("p0"), FakePeerInfo("p1")]
        chunks = chunked_assignment(page, peers, random.Random(3),
                                    chunk_size=50_000)
        assert len(chunks) == 1
        assert chunks[0].size == 1_000

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunked_assignment(make_page(), [FakePeerInfo("p")],
                               random.Random(0), chunk_size=0)
