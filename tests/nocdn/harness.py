"""Shared harness for NoCDN end-to-end tests and benches."""

from __future__ import annotations

from typing import List, Optional

from repro.hpop.core import Household, Hpop, User
from repro.http.content import ContentCatalog, WebObject, WebPage
from repro.net.topology import build_city
from repro.nocdn.directory import ContentDirectory
from repro.nocdn.loader import PageLoader
from repro.nocdn.origin import ContentProvider
from repro.nocdn.peer import NoCdnPeerService
from repro.nocdn.strategy import make_strategy
from repro.sim.engine import Simulator


def make_catalog(num_pages: int = 1, objects_per_page: int = 4,
                 object_size: int = 50_000,
                 container_size: int = 20_000) -> ContentCatalog:
    catalog = ContentCatalog()
    for p in range(num_pages):
        url = f"/page{p}"
        container = WebObject(f"page{p}.html", container_size,
                              content_type="text/html")
        embedded = tuple(
            WebObject(f"page{p}-obj{i}.bin", object_size)
            for i in range(objects_per_page)
        )
        catalog.add_page(WebPage(url=url, container=container,
                                 embedded=embedded))
    return catalog


class NoCdnWorld:
    """A city with HPoP peers, one origin, and client loaders."""

    def __init__(
        self,
        num_peers: int = 3,
        seed: int = 11,
        homes: int = 8,
        peer_services: Optional[List[NoCdnPeerService]] = None,
        catalog: Optional[ContentCatalog] = None,
        strategy: Optional[str] = None,
        gossip_interval: float = 0.0,
        **provider_kwargs,
    ):
        self.sim = Simulator(seed=seed)
        self.city = build_city(self.sim, homes_per_neighborhood=homes,
                               server_sites={"origin": 1, "edge": 1})
        self.catalog = catalog or make_catalog()
        origin_host = self.city.server_sites["origin"].servers[0]
        # A named strategy turns on collaborative caching: placement
        # drives wrapper assignment and a content directory tracks who
        # holds what for neighbor-hit forwarding.
        if strategy is not None:
            provider_kwargs.setdefault("strategy", make_strategy(strategy))
            provider_kwargs.setdefault(
                "directory",
                ContentDirectory(self.sim, gossip_interval=gossip_interval))
        self.provider = ContentProvider(
            "news.example", origin_host, self.city.network, self.catalog,
            **provider_kwargs)
        self.peers: List[NoCdnPeerService] = []
        self.hpops: List[Hpop] = []
        services = peer_services or [NoCdnPeerService()
                                     for _ in range(num_peers)]
        for i, service in enumerate(services):
            home = self.city.neighborhoods[0].homes[i]
            household = Household(name=f"h{i}",
                                  users=[User(f"u{i}", "pw")])
            hpop = Hpop(home.hpop_host, self.city.network, household)
            hpop.install(service)
            hpop.start()
            service.sign_up(self.provider)
            self.peers.append(service)
            self.hpops.append(hpop)
        # Clients live in homes beyond the peers'.
        self.client_device = (
            self.city.neighborhoods[0].homes[len(services)].devices[0])
        self.loader = PageLoader(self.client_device, self.city.network)

    def load_page(self, url: str = "/page0", loader: Optional[PageLoader] = None):
        results, errors = [], []
        (loader or self.loader).load(self.provider, url, results.append,
                                     errors.append)
        self.sim.run()
        assert not errors, f"load errors: {errors}"
        assert len(results) == 1
        return results[0]
