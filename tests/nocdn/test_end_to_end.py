"""NoCDN end-to-end tests: delivery, integrity, accounting, baselines."""

import pytest

from repro.cdn.baselines import BaselinePageLoader, TraditionalCdn
from repro.nocdn.loader import PageLoader
from repro.nocdn.peer import NoCdnPeerService
from repro.nocdn.records import make_record
from repro.nocdn.selection import (
    LoadAwareSelection,
    ProximitySelection,
    TrustWeightedSelection,
)
from repro.util.crypto import deterministic_key

from tests.nocdn.harness import NoCdnWorld, make_catalog


class TestHappyPath:
    def test_page_served_by_peers(self):
        world = NoCdnWorld(num_peers=3)
        result = world.load_page()
        page = world.catalog.page("/page0")
        assert result.bytes_from_peers == page.total_size
        assert result.bytes_from_origin == 0
        assert result.corrupted == []
        assert not result.direct_mode
        assert result.duration > 0

    def test_origin_serves_only_wrapper_after_warmup(self):
        world = NoCdnWorld(num_peers=2)
        # Several warm-up loads so both peers cache every object (random
        # per-object selection spreads assignments across loads).
        for _ in range(5):
            world.load_page()
        served_after_warmup = world.provider.origin_bytes_served
        result = world.load_page()
        extra = world.provider.origin_bytes_served - served_after_warmup
        # Warm load: origin only produced a wrapper (~KBs), peers the rest.
        assert extra < 10_000
        assert result.bytes_from_peers == world.catalog.page("/page0").total_size

    def test_peer_caches_hit_on_second_load(self):
        world = NoCdnWorld(num_peers=1)
        world.load_page()
        fills_first = world.peers[0].origin_fills
        world.load_page()
        assert world.peers[0].origin_fills == fills_first

    def test_no_peers_direct_mode(self):
        world = NoCdnWorld(num_peers=0)
        result = world.load_page()
        assert result.direct_mode
        assert result.bytes_from_origin >= world.catalog.page("/page0").total_size
        assert world.provider.direct_pages_served == 1

    def test_loader_script_cached_across_loads(self):
        world = NoCdnWorld(num_peers=1)
        r1 = world.load_page()
        r2 = world.load_page()
        # Second load skips the loader-script fetch, so it is faster
        # (also benefits from warm peer cache and connections).
        assert r2.duration < r1.duration

    def test_chunked_delivery(self):
        catalog = make_catalog(objects_per_page=1, object_size=400_000)
        world = NoCdnWorld(num_peers=4, catalog=catalog, chunk_size=100_000)
        result = world.load_page()
        assert result.bytes_from_peers == catalog.page("/page0").total_size
        assert result.corrupted == []
        # Multiple peers actually served bytes.
        servers = [p for p in world.peers if p.bytes_served > 0]
        assert len(servers) > 1


class TestIntegrity:
    def test_tampering_peer_detected_and_recovered(self):
        tamperer = NoCdnPeerService(tamper=True)
        world = NoCdnWorld(peer_services=[tamperer])
        result = world.load_page()
        page = world.catalog.page("/page0")
        # Every object got corrupted, detected, and re-fetched from origin.
        assert len(result.corrupted) == page.object_count
        assert result.bytes_from_origin == page.total_size
        info = world.provider.peers[tamperer.peer_id]
        assert info.corruption_reports == page.object_count
        assert info.trust < 1.0

    def test_tamperer_eventually_expelled(self):
        tamperer = NoCdnPeerService(tamper=True)
        honest = NoCdnPeerService()
        world = NoCdnWorld(peer_services=[tamperer, honest])
        for _ in range(5):
            world.load_page()
        info = world.provider.peers[tamperer.peer_id]
        assert info.expelled
        # Once expelled, loads are clean.
        result = world.load_page()
        assert result.corrupted == []

    def test_mixed_peers_only_tampered_objects_recovered(self):
        tamperer = NoCdnPeerService(tamper=True)
        honest = NoCdnPeerService()
        world = NoCdnWorld(peer_services=[tamperer, honest], seed=13)
        result = world.load_page()
        page = world.catalog.page("/page0")
        assert 0 < len(result.corrupted) <= page.object_count
        assert result.bytes_from_peers + result.bytes_from_origin >= page.total_size

    def test_dead_peer_failover_to_origin(self):
        peer = NoCdnPeerService()
        world = NoCdnWorld(peer_services=[peer])
        world.load_page()
        # Kill the peer host after wrapper issuance has begun: the origin
        # still assigns it (stale knowledge), the loader fails over.
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        assert wrapper is not None
        world.hpops[0].host.power_off()
        results = []
        world.loader._wrapped_load(world.provider, wrapper, world.sim.now, 100,
                                   results.append, lambda e: None)
        world.sim.run()
        assert len(results) == 1
        result = results[0]
        page = world.catalog.page("/page0")
        assert result.bytes_from_origin == page.total_size
        assert len(result.peer_failures) == page.object_count


class TestAccounting:
    def test_usage_records_verified_and_credited(self):
        world = NoCdnWorld(num_peers=2)
        result = world.load_page()
        for peer in world.peers:
            peer.flush_usage()
        world.sim.run()
        audit = world.provider.audit
        assert audit.accepted_records > 0
        assert audit.rejected_total == 0
        assert audit.accepted_bytes == pytest.approx(result.bytes_from_peers)
        total_payable = sum(world.provider.payable_bytes.values())
        assert total_payable == pytest.approx(result.bytes_from_peers)

    def test_inflated_records_rejected(self):
        cheater = NoCdnPeerService(inflate_factor=2.0)
        world = NoCdnWorld(peer_services=[cheater])
        world.load_page()
        cheater.flush_usage()
        world.sim.run()
        audit = world.provider.audit
        assert audit.accepted_records == 0
        assert audit.rejected_bad_signature > 0
        assert world.provider.payable_bytes.get(cheater.peer_id, 0) == 0
        assert world.provider.peers[cheater.peer_id].trust < 1.0

    def test_replayed_records_rejected(self):
        replayer = NoCdnPeerService(replay_records=True)
        world = NoCdnWorld(peer_services=[replayer])
        world.load_page()
        replayer.flush_usage()
        world.sim.run()
        accepted_first = world.provider.audit.accepted_records
        assert accepted_first > 0
        replayer.flush_usage()  # uploads the same records again
        world.sim.run()
        audit = world.provider.audit
        assert audit.accepted_records == accepted_first
        assert audit.rejected_replay > 0

    def test_over_cap_records_rejected(self):
        world = NoCdnWorld(num_peers=1)
        wrapper = world.provider.build_wrapper(world.catalog.page("/page0"))
        peer_id = world.peers[0].peer_id
        key = wrapper.peer_keys[peer_id]
        # A colluding client signs a record far beyond the wrapper's cap.
        record = make_record(wrapper.wrapper_id, peer_id, "page0.html",
                             10 ** 9, "collusion-nonce", key)
        world.provider._audit_record(peer_id, record)
        assert world.provider.audit.rejected_over_cap == 1
        assert world.provider.payable_bytes.get(peer_id, 0) == 0

    def test_unknown_wrapper_rejected(self):
        world = NoCdnWorld(num_peers=1)
        peer_id = world.peers[0].peer_id
        record = make_record("bogus-wrapper", peer_id, "obj", 100, "n",
                             deterministic_key("guess"))
        world.provider._audit_record(peer_id, record)
        assert world.provider.audit.rejected_unknown_key == 1

    def test_settle_epoch_pays_and_caps(self):
        world = NoCdnWorld(num_peers=1, payment_cap_bytes=10_000,
                           payment_per_gib=1.0)
        world.load_page()
        world.peers[0].flush_usage()
        world.sim.run()
        payments = world.provider.settle_epoch()
        peer_id = world.peers[0].peer_id
        assert payments[peer_id] == pytest.approx(10_000 / 1024 ** 3)
        assert world.provider.payable_bytes == {}

    def test_anomaly_detection_flags_colluder(self):
        world = NoCdnWorld(num_peers=4)
        # Normal volumes for three peers, a huge verified volume for one
        # (as a colluding client+peer pair would produce).
        page = world.catalog.page("/page0")
        for _ in range(30):
            wrapper = world.provider.build_wrapper(page)
            colluder = world.peers[0].peer_id
            if colluder in wrapper.peer_keys:
                cap = wrapper.expected_bytes_for(colluder)
                if cap > 0:
                    record = make_record(
                        wrapper.wrapper_id, colluder, "page0.html",
                        min(cap, 20_000),
                        f"n-{world.sim.ids.next_int('col')}",
                        wrapper.peer_keys[colluder])
                    world.provider._audit_record(colluder, record)
        # Light legitimate traffic for the others.
        for peer in world.peers[1:]:
            wrapper = world.provider.build_wrapper(page)
            pid = peer.peer_id
            if pid in wrapper.peer_keys:
                cap = wrapper.expected_bytes_for(pid)
                if cap > 0:
                    record = make_record(
                        wrapper.wrapper_id, pid, "page0.html",
                        min(cap, 1_000),
                        f"n-{world.sim.ids.next_int('col')}",
                        wrapper.peer_keys[pid])
                    world.provider._audit_record(pid, record)
        flagged = world.provider.anomalous_peers(factor=5.0)
        assert world.peers[0].peer_id in flagged


class TestSelectionPolicies:
    def test_proximity_picks_nearest(self):
        world = NoCdnWorld(num_peers=3, selection=ProximitySelection())
        result = world.load_page()
        assert result.bytes_from_peers > 0
        # All objects from exactly one peer (the nearest).
        servers = [p for p in world.peers if p.bytes_served > 0]
        assert len(servers) == 1

    def test_load_aware_spreads(self):
        world = NoCdnWorld(num_peers=3, selection=LoadAwareSelection())
        world.load_page()
        servers = [p for p in world.peers if p.bytes_served > 0]
        assert len(servers) == 3  # 5 objects over 3 peers round-robin

    def test_trust_weighted_shuns_low_trust(self):
        world = NoCdnWorld(num_peers=3,
                           selection=TrustWeightedSelection())
        # Crush one peer's trust score.
        shunned = world.peers[0].peer_id
        world.provider.peers[shunned].trust = 0.001
        for _ in range(5):
            world.load_page()
        assert world.peers[0].bytes_served < world.peers[1].bytes_served


class TestBaselines:
    def test_origin_only_load(self):
        world = NoCdnWorld(num_peers=0)
        loader = BaselinePageLoader(world.client_device, world.city.network)
        results = []
        loader.load_via_origin(world.provider, "/page0", results.append)
        world.sim.run()
        page = world.catalog.page("/page0")
        assert results[0].bytes_from_origin == page.total_size

    def test_cdn_edge_serves_after_warmup(self):
        world = NoCdnWorld(num_peers=0)
        cdn = TraditionalCdn(world.provider, world.city.network)
        edge_host = world.city.server_sites["edge"].servers[0]
        edge = cdn.deploy_edge(edge_host)
        loader = BaselinePageLoader(world.client_device, world.city.network)
        results = []
        loader.load_via_cdn(cdn, "/page0", results.append)
        world.sim.run()
        fills_cold = edge.origin_fills
        assert fills_cold > 0
        loader.load_via_cdn(cdn, "/page0", results.append)
        world.sim.run()
        assert edge.origin_fills == fills_cold  # warm cache
        page = world.catalog.page("/page0")
        assert results[1].bytes_from_peers == page.total_size

    def test_edge_for_prefers_closest(self):
        world = NoCdnWorld(num_peers=0)
        cdn = TraditionalCdn(world.provider, world.city.network)
        near = cdn.deploy_edge(world.city.server_sites["edge"].servers[0])
        far = cdn.deploy_edge(world.provider.host)
        chosen = cdn.edge_for(world.client_device)
        near_rtt = world.city.network.path_between(
            world.client_device, near.host).rtt
        far_rtt = world.city.network.path_between(
            world.client_device, far.host).rtt
        expected = near if near_rtt <= far_rtt else far
        assert chosen is expected

    def test_dead_edge_skipped(self):
        world = NoCdnWorld(num_peers=0)
        cdn = TraditionalCdn(world.provider, world.city.network)
        a = cdn.deploy_edge(world.city.server_sites["edge"].servers[0])
        b = cdn.deploy_edge(world.provider.host)
        preferred = cdn.edge_for(world.client_device)
        preferred.host.power_off()
        other = a if preferred is b else b
        assert cdn.edge_for(world.client_device) is other
