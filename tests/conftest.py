"""Shared fixtures for deterministic tests.

Every test that needs randomness should take its generator from one of
these factories so the seed is declared at the call site and the idiom
is uniform across the suite:

    def test_something(seeded_sim):
        sim = seeded_sim(5)

    def test_other(seeded_rng):
        rng = seeded_rng(1)
"""

import random

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def seeded_sim():
    """Factory returning a deterministic :class:`Simulator`."""

    def make(seed: int = 0, **kwargs) -> Simulator:
        return Simulator(seed=seed, **kwargs)

    return make


@pytest.fixture
def seeded_rng():
    """Factory returning a plain deterministic ``random.Random``."""

    def make(seed: int = 0) -> random.Random:
        return random.Random(seed)

    return make
