"""Lock-manager tests: exclusion, depth, expiry, write discipline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webdav.locks import LockError, LockManager, LockScope


class TestAcquire:
    def test_exclusive_blocks_everyone(self):
        mgr = LockManager()
        mgr.acquire("/f", "alice", now=0.0)
        with pytest.raises(LockError):
            mgr.acquire("/f", "bob", now=1.0)
        with pytest.raises(LockError):
            mgr.acquire("/f", "alice", now=1.0)  # even the holder: new lock conflicts

    def test_shared_locks_coexist(self):
        mgr = LockManager()
        mgr.acquire("/f", "alice", now=0.0, scope=LockScope.SHARED)
        mgr.acquire("/f", "bob", now=0.0, scope=LockScope.SHARED)
        with pytest.raises(LockError):
            mgr.acquire("/f", "carol", now=0.0, scope=LockScope.EXCLUSIVE)

    def test_depth_infinity_covers_descendants(self):
        mgr = LockManager()
        mgr.acquire("/dir", "alice", now=0.0, depth_infinity=True)
        with pytest.raises(LockError):
            mgr.acquire("/dir/sub/f", "bob", now=0.0)

    def test_depth_zero_does_not_cover_descendants(self):
        mgr = LockManager()
        mgr.acquire("/dir", "alice", now=0.0, depth_infinity=False)
        mgr.acquire("/dir/f", "bob", now=0.0)  # allowed

    def test_descendant_lock_blocks_infinity_lock(self):
        mgr = LockManager()
        mgr.acquire("/dir/f", "bob", now=0.0)
        with pytest.raises(LockError):
            mgr.acquire("/dir", "alice", now=0.0, depth_infinity=True)

    def test_sibling_prefix_not_covered(self):
        mgr = LockManager()
        mgr.acquire("/dir", "alice", now=0.0, depth_infinity=True)
        # "/directory" is not a descendant of "/dir".
        mgr.acquire("/directory", "bob", now=0.0)


class TestExpiryAndRelease:
    def test_lock_expires(self):
        mgr = LockManager()
        mgr.acquire("/f", "alice", now=0.0, timeout=10.0)
        mgr.acquire("/f", "bob", now=11.0)  # alice's lock expired

    def test_refresh_extends(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0, timeout=10.0)
        mgr.refresh(lock.token, now=9.0, timeout=10.0)
        with pytest.raises(LockError):
            mgr.acquire("/f", "bob", now=15.0)

    def test_refresh_expired_lock_fails(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0, timeout=10.0)
        with pytest.raises(LockError):
            mgr.refresh(lock.token, now=20.0)

    def test_release(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0)
        mgr.release(lock.token, "alice", now=1.0)
        mgr.acquire("/f", "bob", now=1.0)

    def test_release_wrong_owner(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0)
        with pytest.raises(LockError):
            mgr.release(lock.token, "bob", now=1.0)

    def test_active_count(self):
        mgr = LockManager()
        mgr.acquire("/a", "alice", now=0.0, timeout=5.0)
        mgr.acquire("/b", "bob", now=0.0, timeout=50.0)
        assert mgr.active_count(now=10.0) == 1


class TestWriteDiscipline:
    def test_unlocked_write_allowed(self):
        mgr = LockManager()
        mgr.check_write_allowed("/f", "anyone", now=0.0, token=None)

    def test_locked_write_without_token_blocked(self):
        mgr = LockManager()
        mgr.acquire("/f", "alice", now=0.0)
        with pytest.raises(LockError):
            mgr.check_write_allowed("/f", "alice", now=0.0, token=None)

    def test_locked_write_with_token_allowed(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0)
        mgr.check_write_allowed("/f", "alice", now=0.0, token=lock.token)

    def test_token_of_other_owner_rejected(self):
        mgr = LockManager()
        lock = mgr.acquire("/f", "alice", now=0.0)
        with pytest.raises(LockError):
            mgr.check_write_allowed("/f", "bob", now=0.0, token=lock.token)

    def test_infinity_token_covers_descendants(self):
        mgr = LockManager()
        lock = mgr.acquire("/dir", "alice", now=0.0, depth_infinity=True)
        mgr.check_write_allowed("/dir/sub/f", "alice", now=0.0, token=lock.token)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["/a", "/b", "/a/x"]),
                          st.sampled_from(["u1", "u2", "u3"])), max_size=25))
def test_property_at_most_one_exclusive_holder(ops):
    """However locks are requested, no path ever has two exclusive locks."""
    mgr = LockManager()
    granted = []
    for path, owner in ops:
        try:
            granted.append(mgr.acquire(path, owner, now=0.0))
        except LockError:
            pass
    for path in ("/a", "/b", "/a/x"):
        covering = mgr.locks_covering(path, now=0.0)
        exclusive = [l for l in covering if l.scope is LockScope.EXCLUSIVE]
        assert len(exclusive) <= 1
