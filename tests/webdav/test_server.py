"""WebDAV server tests over the simulated HTTP stack."""

import pytest

from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.http.server import HttpServer
from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator
from repro.webdav.server import READ, WRITE, WebDavServer, basic_auth


class DavHarness:
    """Drives a WebDAV server through real simulated HTTP exchanges."""

    def __init__(self):
        self.sim = Simulator(seed=6)
        self.bell = build_dumbbell(self.sim)
        self.http = HttpServer(self.bell.server, 80)
        self.dav = WebDavServer(self.http, mount="/dav")
        self.client = HttpClient(self.bell.client, self.bell.network)
        self.dav.add_user("alice", "pw-a")
        self.dav.add_user("bob", "pw-b")
        self.dav.grant("/", "alice", {READ, WRITE})
        self.dav.grant("/shared", "bob", {READ})

    def call(self, method, path, user="alice", password=None, headers=None,
             body=None, body_size=0):
        creds = basic_auth(user, password or f"pw-{user[0]}")
        all_headers = dict(creds)
        all_headers.update(headers or {})
        results = []
        self.client.request(
            self.bell.server,
            HttpRequest(method, f"/dav{path}", headers=all_headers,
                        body=body, body_size=body_size),
            lambda resp, stats: results.append(resp))
        self.sim.run()
        assert len(results) == 1
        return results[0]


@pytest.fixture
def dav():
    return DavHarness()


class TestAuth:
    def test_no_credentials_401(self, dav):
        results = []
        dav.client.request(dav.bell.server, HttpRequest("GET", "/dav/x"),
                           lambda resp, stats: results.append(resp))
        dav.sim.run()
        assert results[0].status == 401

    def test_wrong_password_401(self, dav):
        resp = dav.call("GET", "/x", user="alice", password="wrong")
        assert resp.status == 401

    def test_unauthorized_path_403(self, dav):
        resp = dav.call("PUT", "/f", user="bob", body_size=10)
        assert resp.status == 403

    def test_read_only_principal_cannot_write(self, dav):
        dav.call("MKCOL", "/shared")
        resp = dav.call("PUT", "/shared/f", user="bob", body_size=10)
        assert resp.status == 403

    def test_read_only_principal_can_read(self, dav):
        dav.call("MKCOL", "/shared")
        dav.call("PUT", "/shared/f", body_size=10)
        resp = dav.call("GET", "/shared/f", user="bob")
        assert resp.ok

    def test_removed_user_loses_access(self, dav):
        dav.dav.remove_user("alice")
        resp = dav.call("GET", "/x", user="alice")
        assert resp.status == 401


class TestCrud:
    def test_put_get_round_trip(self, dav):
        put = dav.call("PUT", "/notes.txt", body="hello", body_size=5)
        assert put.status == 201
        got = dav.call("GET", "/notes.txt")
        assert got.ok
        assert got.body_size == 5
        assert got.body.payload == "hello"

    def test_put_twice_204_and_new_etag(self, dav):
        first = dav.call("PUT", "/f", body_size=10)
        second = dav.call("PUT", "/f", body_size=20)
        assert second.status == 204
        assert first.headers["ETag"] != second.headers["ETag"]

    def test_conditional_get_304(self, dav):
        put = dav.call("PUT", "/f", body_size=10)
        etag = put.headers["ETag"]
        resp = dav.call("GET", "/f", headers={"If-None-Match": etag})
        assert resp.status == 304
        assert resp.body_size == 0

    def test_get_missing_404(self, dav):
        assert dav.call("GET", "/ghost").status == 404

    def test_delete(self, dav):
        dav.call("PUT", "/f", body_size=1)
        assert dav.call("DELETE", "/f").status == 204
        assert dav.call("GET", "/f").status == 404

    def test_mkcol_and_collection_get(self, dav):
        assert dav.call("MKCOL", "/docs").status == 201
        dav.call("PUT", "/docs/a", body_size=1)
        dav.call("PUT", "/docs/b", body_size=1)
        resp = dav.call("GET", "/docs")
        assert resp.body == ["a", "b"]

    def test_mkcol_existing_405(self, dav):
        dav.call("MKCOL", "/docs")
        assert dav.call("MKCOL", "/docs").status == 405

    def test_head_reports_metadata(self, dav):
        dav.call("PUT", "/f", body_size=123)
        resp = dav.call("HEAD", "/f")
        assert resp.headers["Content-Length"] == "123"
        assert resp.body_size == 0

    def test_copy_and_move(self, dav):
        dav.call("PUT", "/src", body_size=9)
        copy = dav.call("COPY", "/src", headers={"Destination": "/dav/dst"})
        assert copy.status == 201
        assert dav.call("GET", "/dst").body_size == 9
        move = dav.call("MOVE", "/dst", headers={"Destination": "/dav/moved"})
        assert move.status == 201
        assert dav.call("GET", "/dst").status == 404
        assert dav.call("GET", "/moved").ok

    def test_copy_without_destination_409(self, dav):
        dav.call("PUT", "/src", body_size=1)
        assert dav.call("COPY", "/src").status == 409


class TestProperties:
    def test_proppatch_and_propfind(self, dav):
        dav.call("PUT", "/f", body_size=10)
        dav.call("PROPPATCH", "/f", body={"author": "alice"})
        resp = dav.call("PROPFIND", "/f", headers={"Depth": "0"})
        assert resp.status == 207
        assert resp.body[0]["properties"]["author"] == "alice"
        assert resp.body[0]["size"] == 10

    def test_proppatch_remove(self, dav):
        dav.call("PUT", "/f", body_size=1)
        dav.call("PROPPATCH", "/f", body={"k": "v"})
        dav.call("PROPPATCH", "/f", body={"k": None})
        resp = dav.call("PROPFIND", "/f")
        assert "k" not in resp.body[0]["properties"]

    def test_propfind_depth_1(self, dav):
        dav.call("MKCOL", "/d")
        dav.call("PUT", "/d/f", body_size=1)
        dav.call("MKCOL", "/d/sub")
        dav.call("PUT", "/d/sub/deep", body_size=1)
        resp = dav.call("PROPFIND", "/d", headers={"Depth": "1"})
        paths = [e["path"] for e in resp.body]
        assert "/d" in paths and "/d/f" in paths and "/d/sub" in paths
        assert "/d/sub/deep" not in paths

    def test_propfind_infinity(self, dav):
        dav.call("MKCOL", "/d")
        dav.call("PUT", "/d/f", body_size=1)
        resp = dav.call("PROPFIND", "/d", headers={"Depth": "infinity"})
        assert len(resp.body) == 2


class TestLockingOverHttp:
    def test_lock_blocks_other_writer(self, dav):
        dav.dav.grant("/", "bob", {READ, WRITE})
        dav.call("PUT", "/f", body_size=1)
        lock = dav.call("LOCK", "/f")
        assert lock.ok
        token = lock.headers["Lock-Token"]
        # Bob cannot write while alice holds the lock.
        blocked = dav.call("PUT", "/f", user="bob", body_size=2)
        assert blocked.status == 423
        # Alice with the token can.
        allowed = dav.call("PUT", "/f", headers={"Lock-Token": token},
                           body_size=3)
        assert allowed.status == 204

    def test_unlock_releases(self, dav):
        dav.dav.grant("/", "bob", {READ, WRITE})
        dav.call("PUT", "/f", body_size=1)
        token = dav.call("LOCK", "/f").headers["Lock-Token"]
        dav.call("UNLOCK", "/f", headers={"Lock-Token": token})
        assert dav.call("PUT", "/f", user="bob", body_size=2).status == 204

    def test_lock_refresh(self, dav):
        dav.call("PUT", "/f", body_size=1)
        token = dav.call("LOCK", "/f",
                         headers={"Timeout": "Second-100"}).headers["Lock-Token"]
        refreshed = dav.call("LOCK", "/f", headers={"Lock-Token": token})
        assert refreshed.ok

    def test_unlock_without_token_409(self, dav):
        dav.call("PUT", "/f", body_size=1)
        assert dav.call("UNLOCK", "/f").status == 409

    def test_second_exclusive_lock_423(self, dav):
        dav.dav.grant("/", "bob", {READ, WRITE})
        dav.call("PUT", "/f", body_size=1)
        dav.call("LOCK", "/f")
        assert dav.call("LOCK", "/f", user="bob").status == 423
