"""WebDAV server edge cases: malformed auth, timeouts, locked moves."""

import pytest

from repro.webdav.server import _parse_timeout

from tests.webdav.test_server import DavHarness


@pytest.fixture
def dav():
    return DavHarness()


class TestMalformedAuth:
    def test_non_basic_scheme_rejected(self, dav):
        # dav.call always injects valid Basic credentials, so craft the
        # request manually to exercise the malformed-header path.
        from repro.http.messages import HttpRequest
        results = []
        dav.client.request(
            dav.bell.server,
            HttpRequest("GET", "/dav/x",
                        headers={"Authorization": "Bearer tok"}),
            lambda resp, stats: results.append(resp))
        dav.sim.run()
        assert results[0].status == 401

    def test_missing_colon_rejected(self, dav):
        from repro.http.messages import HttpRequest
        results = []
        dav.client.request(
            dav.bell.server,
            HttpRequest("GET", "/dav/x",
                        headers={"Authorization": "Basic nocolon"}),
            lambda resp, stats: results.append(resp))
        dav.sim.run()
        assert results[0].status == 401


class TestTimeoutParsing:
    def test_second_format(self):
        assert _parse_timeout({"Timeout": "Second-3600"}) == 3600.0

    def test_missing_header(self):
        assert _parse_timeout({}) is None

    def test_malformed_values(self):
        assert _parse_timeout({"Timeout": "Second-abc"}) is None
        assert _parse_timeout({"Timeout": "Infinite"}) is None


class TestLockedMoves:
    def test_move_of_locked_source_blocked(self, dav):
        dav.dav.grant("/", "bob", {"read", "write"})
        dav.call("PUT", "/f", body_size=1)
        dav.call("LOCK", "/f")  # alice holds it
        resp = dav.call("MOVE", "/f", user="bob",
                        headers={"Destination": "/dav/stolen"})
        assert resp.status == 423

    def test_move_with_token_allowed(self, dav):
        dav.call("PUT", "/f", body_size=1)
        token = dav.call("LOCK", "/f").headers["Lock-Token"]
        resp = dav.call("MOVE", "/f",
                        headers={"Destination": "/dav/moved",
                                 "Lock-Token": token})
        assert resp.status == 201
        assert dav.call("GET", "/moved").ok

    def test_overwrite_header_f_prevents_clobber(self, dav):
        dav.call("PUT", "/src", body_size=1)
        dav.call("PUT", "/dst", body_size=2)
        resp = dav.call("COPY", "/src",
                        headers={"Destination": "/dav/dst",
                                 "Overwrite": "F"})
        assert resp.status == 405
        assert dav.call("GET", "/dst").body_size == 2


class TestUnknownMethod:
    def test_post_not_allowed_on_dav_tree(self, dav):
        resp = dav.call("POST", "/f", body_size=10)
        assert resp.status == 405


class TestSharedLocksOverHttp:
    def test_shared_lock_scope_header(self, dav):
        dav.dav.grant("/", "bob", {"read", "write"})
        dav.call("PUT", "/f", body_size=1)
        r1 = dav.call("LOCK", "/f", headers={"Scope": "shared"})
        assert r1.ok
        r2 = dav.call("LOCK", "/f", user="bob",
                      headers={"Scope": "shared"})
        assert r2.ok  # shared locks coexist
        r3 = dav.call("LOCK", "/f")  # exclusive now blocked
        assert r3.status == 423

    def test_depth_infinity_lock_over_http(self, dav):
        dav.dav.grant("/", "bob", {"read", "write"})
        dav.call("MKCOL", "/tree")
        dav.call("PUT", "/tree/leaf", body_size=1)
        dav.call("LOCK", "/tree", headers={"Depth": "infinity"})
        blocked = dav.call("PUT", "/tree/leaf", user="bob", body_size=2)
        assert blocked.status == 423
