"""Resource-tree tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.webdav.resources import (
    AlreadyExistsError,
    ConflictError,
    DavCollection,
    DavFile,
    FileContent,
    NotFoundError,
    ResourceTree,
    basename_of,
    parent_of,
    split_path,
)


class TestPaths:
    def test_split(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []
        assert split_path("/a//b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(ConflictError):
            split_path("a/b")

    def test_dot_segments_rejected(self):
        with pytest.raises(ConflictError):
            split_path("/a/../b")
        with pytest.raises(ConflictError):
            split_path("/a/./b")

    def test_parent_and_basename(self):
        assert parent_of("/a/b/c") == "/a/b"
        assert parent_of("/a") == "/"
        assert basename_of("/a/b") == "b"
        with pytest.raises(ConflictError):
            parent_of("/")


class TestTreeBasics:
    def test_put_and_lookup(self):
        tree = ResourceTree()
        tree.put("/f.txt", size=100, payload="data", now=1.0)
        node = tree.lookup("/f.txt")
        assert isinstance(node, DavFile)
        assert node.content.size == 100
        assert node.content.version == 1
        assert node.modified_at == 1.0

    def test_overwrite_bumps_version(self):
        tree = ResourceTree()
        tree.put("/f", size=10)
        file = tree.put("/f", size=20, now=2.0)
        assert file.content.version == 2
        assert file.content.size == 20

    def test_etag_changes_with_version(self):
        tree = ResourceTree()
        f1 = tree.put("/f", size=10)
        tag1 = f1.etag
        f2 = tree.put("/f", size=10)
        assert f2.etag != tag1

    def test_put_needs_parent(self):
        tree = ResourceTree()
        with pytest.raises(NotFoundError):
            tree.put("/no/such/dir/f", size=1)

    def test_put_over_collection_conflicts(self):
        tree = ResourceTree()
        tree.mkcol("/dir")
        with pytest.raises(ConflictError):
            tree.put("/dir", size=1)

    def test_mkcol(self):
        tree = ResourceTree()
        tree.mkcol("/docs")
        assert isinstance(tree.lookup("/docs"), DavCollection)
        with pytest.raises(AlreadyExistsError):
            tree.mkcol("/docs")

    def test_mkcol_recursive(self):
        tree = ResourceTree()
        tree.mkcol_recursive("/a/b/c")
        assert tree.exists("/a/b/c")
        tree.mkcol_recursive("/a/b/c")  # idempotent

    def test_mkcol_recursive_through_file_conflicts(self):
        tree = ResourceTree()
        tree.put("/a", size=1)
        with pytest.raises(ConflictError):
            tree.mkcol_recursive("/a/b")

    def test_delete_file_and_subtree(self):
        tree = ResourceTree()
        tree.mkcol_recursive("/a/b")
        tree.put("/a/b/f", size=1)
        tree.delete("/a")
        assert not tree.exists("/a")
        with pytest.raises(NotFoundError):
            tree.delete("/a")

    def test_list_children_sorted(self):
        tree = ResourceTree()
        tree.mkcol("/d")
        tree.put("/d/z", size=1)
        tree.put("/d/a", size=1)
        assert tree.list_children("/d") == ["a", "z"]

    def test_list_children_of_file_conflicts(self):
        tree = ResourceTree()
        tree.put("/f", size=1)
        with pytest.raises(ConflictError):
            tree.list_children("/f")


class TestCopyMove:
    def test_copy_file(self):
        tree = ResourceTree()
        tree.put("/src", size=42, payload="x")
        tree.copy("/src", "/dst")
        assert tree.lookup("/dst").content.size == 42
        assert tree.exists("/src")

    def test_copy_deep(self):
        tree = ResourceTree()
        tree.mkcol_recursive("/a/b")
        tree.put("/a/b/f", size=7)
        tree.copy("/a", "/c")
        assert tree.lookup("/c/b/f").content.size == 7
        # Deep copy: mutating the copy leaves the source alone.
        tree.put("/c/b/f", size=9)
        assert tree.lookup("/a/b/f").content.size == 7

    def test_copy_no_overwrite(self):
        tree = ResourceTree()
        tree.put("/src", size=1)
        tree.put("/dst", size=2)
        with pytest.raises(AlreadyExistsError):
            tree.copy("/src", "/dst", overwrite=False)
        tree.copy("/src", "/dst", overwrite=True)
        assert tree.lookup("/dst").content.size == 1

    def test_move(self):
        tree = ResourceTree()
        tree.put("/src", size=5)
        tree.move("/src", "/dst")
        assert not tree.exists("/src")
        assert tree.lookup("/dst").content.size == 5


class TestWalkAndTotals:
    def test_walk_yields_all(self):
        tree = ResourceTree()
        tree.mkcol("/a")
        tree.put("/a/f1", size=10)
        tree.put("/a/f2", size=20)
        paths = [p for p, _r in tree.walk("/")]
        assert paths == ["/", "/a", "/a/f1", "/a/f2"]

    def test_total_bytes(self):
        tree = ResourceTree()
        tree.mkcol("/a")
        tree.put("/a/f1", size=10)
        tree.put("/a/f2", size=20)
        tree.put("/g", size=5)
        assert tree.total_bytes("/") == 35
        assert tree.total_bytes("/a") == 30


class TestFileContent:
    def test_updated_bumps_version(self):
        content = FileContent(size=10)
        newer = content.updated(20, payload="p")
        assert newer.version == 2 and newer.size == 20

    def test_invalid(self):
        with pytest.raises(ValueError):
            FileContent(size=-1)
        with pytest.raises(ValueError):
            FileContent(size=1, version=0)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["put", "delete", "mkcol"]),
              st.sampled_from(["/a", "/b", "/a/x", "/b/y", "/c"])),
    max_size=30))
def test_property_tree_consistency(ops):
    """Files reachable by walk() are exactly those that respond to lookup."""
    tree = ResourceTree()
    for op, path in ops:
        try:
            if op == "put":
                tree.put(path, size=1)
            elif op == "mkcol":
                tree.mkcol(path)
            else:
                tree.delete(path)
        except (NotFoundError, AlreadyExistsError, ConflictError):
            pass
    walked = {p for p, _r in tree.walk("/")}
    for path in walked:
        assert tree.exists(path)
