"""DCol degradation path: a crashed waypoint is detected by the
transfer watchdog, its detour withdrawn, and the transfer completes on
the remaining (direct) subflow — reviving it if the connection stalled."""

from repro.dcol.collective import DetourCollective, WaypointService
from repro.dcol.manager import DetourManager
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_detour_testbed
from repro.sim.engine import Simulator
from repro.util.units import mbps, mib


def build(num_waypoints=2, seed=15, **bed_kwargs):
    sim = Simulator(seed=seed)
    # A slow direct path keeps multi-second transfers in flight long
    # enough for mid-transfer faults to land.
    bed_kwargs.setdefault("direct_bps", mbps(20))
    bed_kwargs.setdefault("waypoint_leg_bps", mbps(40))
    bed_kwargs.setdefault("direct_loss", 0.005)
    bed = build_detour_testbed(sim, num_waypoints=num_waypoints,
                               **bed_kwargs)
    collective = DetourCollective()
    services, hpops = [], []
    for wp in bed.waypoints:
        hpop = Hpop(wp, bed.network,
                    Household(name=wp.name, users=[User("u", "p")]))
        service = hpop.install(WaypointService())
        hpop.start()
        collective.join(service)
        services.append(service)
        hpops.append(hpop)
    manager = DetourManager(bed.client, bed.network, collective)
    return sim, bed, collective, services, hpops, manager


class TestWaypointCrash:
    def test_crash_mid_transfer_completes_via_direct(self):
        sim, bed, _c, services, hpops, manager = build()
        done = []
        transfer = manager.start_transfer(
            bed.server, mib(10), on_complete=lambda t: done.append(sim.now))
        transfer.add_detour(services[0])
        # Kill the waypoint while the bulk of the transfer is in flight.
        sim.at(1.0, lambda: hpops[0].crash(), label="kill-waypoint")
        sim.run_until(300.0)
        assert done, "transfer never completed after waypoint crash"
        assert transfer.done
        assert manager.metrics.counters["waypoint_failovers"].value == 1
        # The dead detour was withdrawn, not left dangling.
        assert transfer.active_detours() == []

    def test_watchdog_emits_failover_span(self):
        sim, bed, _c, services, hpops, manager = build()
        tracer = sim.enable_tracing()
        transfer = manager.start_transfer(bed.server, mib(10))
        transfer.add_detour(services[0])
        sim.at(1.0, lambda: hpops[0].crash(), label="kill-waypoint")
        sim.run_until(300.0)
        assert transfer.done
        assert any(s.name == "dcol.waypoint_failover"
                   for s in tracer.spans())

    def test_healthy_waypoint_triggers_no_failover(self):
        sim, bed, _c, services, _hpops, manager = build()
        transfer = manager.start_transfer(bed.server, mib(5))
        transfer.add_detour(services[0])
        sim.run()
        assert transfer.done
        assert manager.metrics.counters["waypoint_failovers"].value == 0
        assert manager.metrics.counters["direct_failovers"].value == 0

    def test_watchdog_can_be_disabled(self):
        sim, bed, _c, services, hpops, manager = build()
        transfer = manager.start_transfer(bed.server, mib(10),
                                          watchdog_interval=None)
        transfer.add_detour(services[0])
        sim.at(1.0, lambda: hpops[0].crash(), label="kill-waypoint")
        sim.run_until(300.0)
        # Nobody watched, so nobody failed over.
        assert manager.metrics.counters["waypoint_failovers"].value == 0


class TestStallRevival:
    def test_stalled_connection_revived_on_direct_path(self):
        sim, bed, _c, services, hpops, manager = build(num_waypoints=1)
        done = []
        transfer = manager.start_transfer(
            bed.server, mib(10), on_complete=lambda t: done.append(sim.now))
        transfer.add_detour(services[0])
        native = bed.network.links["native-route"]
        wp_leg = bed.network.links["leg-client-wp0"]

        def total_outage():
            # Native route cut, waypoint dead AND its legs severed:
            # no network path remains, the connection truly stalls.
            bed.network.fail_link(native)
            bed.network.fail_link(wp_leg)
            hpops[0].crash()

        sim.at(1.0, total_outage, label="total-outage")
        sim.at(6.0, lambda: bed.network.restore_link(native),
               label="heal-direct")
        sim.run_until(300.0)
        assert done, "transfer never completed after stall"
        # The watchdog had to re-add a direct subflow once the native
        # route healed — the stalled connection could not do it itself.
        # (The dead detour subflow removed itself when its legs went
        # down, so this is the stall branch, not the withdraw branch.)
        assert manager.metrics.counters["direct_failovers"].value >= 1
        assert done[0] > 6.0
        assert transfer.active_detours() == []
