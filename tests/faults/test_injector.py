"""FaultInjector unit tests: each fault kind mutates the world and
restores it, the event log is deterministic, and bad references fail
eagerly."""

import math

import pytest

from repro.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    LinkFlap,
    LossBurst,
    NodeCrash,
)
from repro.hpop.core import Household, Hpop, User
from repro.net.network import NetworkError
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build(seed=9):
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=3)
    home = city.neighborhoods[0].homes[0]
    hpop = Hpop(home.hpop_host, city.network,
                Household(name="h0", users=[User("u", "p")]))
    hpop.start()
    injector = FaultInjector(sim, city.network, hpops=[hpop])
    return sim, city, hpop, injector


def reachable(network, a, b) -> bool:
    try:
        network.path_between(a, b)
        return True
    except NetworkError:
        return False


class TestLinkFaults:
    def test_flap_fails_then_restores_routing(self):
        sim, city, _hpop, injector = build()
        device = city.neighborhoods[0].homes[0].devices[0]
        origin = city.server_sites["origin"].servers[0]
        injector.apply(FaultPlan().add(
            LinkFlap("uplink-n0", at=1.0, duration=2.0)))
        assert reachable(city.network, device, origin)
        sim.run_until(1.5)
        assert not reachable(city.network, device, origin)
        sim.run_until(4.0)
        assert reachable(city.network, device, origin)
        assert injector.metrics.counters["link_flaps"].value == 1
        assert injector.metrics.counters["faults_injected"].value == 1

    def test_permanent_flap_never_restores(self):
        sim, city, _hpop, injector = build()
        device = city.neighborhoods[0].homes[0].devices[0]
        origin = city.server_sites["origin"].servers[0]
        injector.apply(FaultPlan().add(
            LinkFlap("uplink-n0", at=1.0, duration=math.inf)))
        sim.run()
        assert not reachable(city.network, device, origin)
        events = [e["event"] for e in injector.events]
        assert events == ["link_flap_start"]

    def test_loss_burst_raises_and_restores_loss_rate(self):
        sim, city, _hpop, injector = build()
        link = city.network.links["uplink-n0"]
        base = (link.forward.loss_rate, link.reverse.loss_rate)
        injector.apply(FaultPlan().add(
            LossBurst("uplink-n0", at=1.0, duration=2.0, loss_rate=0.3)))
        sim.run_until(1.5)
        assert link.forward.loss_rate == 0.3
        assert link.reverse.loss_rate == 0.3
        sim.run_until(4.0)
        assert (link.forward.loss_rate, link.reverse.loss_rate) == base

    def test_loss_burst_never_lowers_existing_loss(self):
        sim, city, _hpop, injector = build()
        link = city.network.links["uplink-n0"]
        link.forward.loss_rate = 0.5
        injector.apply(FaultPlan().add(
            LossBurst("uplink-n0", at=1.0, duration=2.0, loss_rate=0.3)))
        sim.run_until(1.5)
        assert link.forward.loss_rate == 0.5  # kept the worse rate
        sim.run_until(4.0)
        assert link.forward.loss_rate == 0.5

    def test_corrupting_burst_tagged_in_log(self):
        sim, _city, _hpop, injector = build()
        injector.apply(FaultPlan().add(
            LossBurst("uplink-n0", at=1.0, duration=2.0, corrupting=True)))
        sim.run()
        assert injector.events[0]["corrupting"] is True

    def test_latency_spike_mutates_delay_and_reroutes(self):
        sim, city, _hpop, injector = build()
        link = city.network.links["uplink-n0"]
        base = link.delay
        device = city.neighborhoods[0].homes[0].devices[0]
        origin = city.server_sites["origin"].servers[0]
        base_rtt = city.network.path_between(device, origin).rtt
        injector.apply(FaultPlan().add(
            LatencySpike("uplink-n0", at=1.0, duration=2.0,
                         extra_delay=0.25)))
        sim.run_until(1.5)
        assert link.delay == pytest.approx(base + 0.25)
        # invalidate_routes makes fresh paths see the new delay.
        assert city.network.path_between(device, origin).rtt > base_rtt
        sim.run_until(4.0)
        assert link.delay == pytest.approx(base)
        assert city.network.path_between(device, origin).rtt == \
            pytest.approx(base_rtt)

    def test_link_object_accepted_directly(self):
        sim, city, _hpop, injector = build()
        link = city.network.links["uplink-n0"]
        injector.apply(FaultPlan().add(LinkFlap(link, at=1.0, duration=1.0)))
        sim.run_until(1.5)
        assert not link.up


class TestNodeFaults:
    def test_crash_and_restart_cycle(self):
        sim, _city, hpop, injector = build()
        injector.apply(FaultPlan().add(
            NodeCrash(hpop.host.name, at=1.0, downtime=3.0)))
        sim.run_until(2.0)
        assert not hpop.running
        assert not hpop.host.powered
        sim.run_until(5.0)
        assert hpop.running
        assert hpop.host.powered
        assert injector.metrics.counters["node_crashes"].value == 1
        assert injector.metrics.counters["node_restarts"].value == 1

    def test_permanent_crash_never_restarts(self):
        sim, _city, hpop, injector = build()
        injector.apply(FaultPlan().add(
            NodeCrash(hpop.host.name, at=1.0, downtime=math.inf)))
        sim.run()
        assert not hpop.running
        assert injector.metrics.counters["node_restarts"].value == 0


class TestValidationAndLog:
    def test_unknown_link_rejected_eagerly(self):
        _sim, _city, _hpop, injector = build()
        with pytest.raises(FaultError):
            injector.apply(FaultPlan().add(
                LinkFlap("no-such-link", at=1.0, duration=1.0)))

    def test_unknown_node_rejected_eagerly(self):
        _sim, _city, _hpop, injector = build()
        with pytest.raises(FaultError):
            injector.apply(FaultPlan().add(
                NodeCrash("no-such-node", at=1.0, downtime=1.0)))

    def test_active_faults_gauge_tracks_windows(self):
        sim, _city, hpop, injector = build()
        gauge = injector.metrics.gauges["active_faults"]
        injector.apply(FaultPlan()
                       .add(LinkFlap("uplink-n0", at=1.0, duration=4.0))
                       .add(NodeCrash(hpop.host.name, at=2.0, downtime=1.0)))
        assert gauge.read() == 0.0
        sim.run_until(2.5)
        assert gauge.read() == 2.0
        sim.run_until(3.5)
        assert gauge.read() == 1.0
        sim.run_until(6.0)
        assert gauge.read() == 0.0

    def test_export_jsonl_is_byte_identical_across_runs(self, tmp_path):
        def one_run(path):
            sim, _city, hpop, injector = build(seed=23)
            plan = FaultPlan.churn([hpop.host.name], 1.0, horizon=5.0,
                                   rng=sim.rng.stream("chaos"))
            plan.add(LossBurst("uplink-n0", at=0.5, duration=2.0))
            injector.apply(plan)
            sim.run()
            assert injector.export_jsonl(str(path)) == len(injector.events)
            return path.read_bytes()

        first = one_run(tmp_path / "a.jsonl")
        second = one_run(tmp_path / "b.jsonl")
        assert first == second
        assert first.count(b"\n") == 4  # burst start/end + crash + restart

    def test_events_record_simulated_time_in_order(self):
        sim, _city, _hpop, injector = build()
        injector.apply(FaultPlan()
                       .add(LinkFlap("uplink-n0", at=2.0, duration=1.0))
                       .add(LossBurst("access-n0h0", at=1.0, duration=0.5)))
        sim.run()
        times = [e["t"] for e in injector.events]
        assert times == sorted(times)
        assert times[0] == 1.0

    def test_fault_spans_emitted_when_tracing(self):
        sim, _city, hpop, injector = build()
        tracer = sim.enable_tracing()
        injector.apply(FaultPlan().add(
            NodeCrash(hpop.host.name, at=1.0, downtime=1.0)))
        sim.run()
        names = [s.name for s in tracer.spans()]
        assert "fault.node_crash" in names
