"""NoCDN degradation path: a dead assigned peer fails over to the
next-ranked fallback peer, and to the origin when no peer can serve."""

from repro.nocdn.loader import PageLoader
from repro.nocdn.peer import NoCdnPeerService
from repro.nocdn.selection import SelectionPolicy

from tests.nocdn.harness import NoCdnWorld


class HungPeerService(NoCdnPeerService):
    """A wedged peer process: accepts connections, never answers."""

    def _serve_content(self, request, respond):
        pass


class PinnedSelection(SelectionPolicy):
    """Assign every object to one peer — makes failover deterministic."""

    name = "pinned"

    def __init__(self, peer_id: str):
        self.peer_id = peer_id

    def assign(self, page, client, peers, network, rng):
        return {obj.name: self.peer_id for obj in page.all_objects()}


def build(num_peers=4, seed=11, peer_timeout=5.0, peer_services=None):
    world = NoCdnWorld(num_peers=num_peers, seed=seed,
                       peer_services=peer_services)
    world.provider.selection = PinnedSelection(world.peers[0].peer_id)
    loader = PageLoader(world.client_device, world.city.network,
                        peer_timeout=peer_timeout)
    return world, loader


class TestWrapperFallbacks:
    def test_wrapper_lists_unassigned_peers_as_fallbacks(self):
        world, _loader = build()
        page = world.catalog.page("/page0")
        wrapper = world.provider.build_wrapper(page, "client")
        assert wrapper.peers_used() == [world.peers[0].peer_id]
        # Every peer not serving the page is a ranked fallback, with
        # keys and endpoints so the client can reach it immediately.
        assert set(wrapper.fallbacks) == {p.peer_id for p in world.peers[1:]}
        for peer_id in wrapper.fallbacks:
            assert peer_id in wrapper.peer_keys
            assert peer_id in wrapper.peer_endpoints

    def test_fallbacks_ranked_by_trust(self):
        world, _loader = build()
        world.provider.peers[world.peers[2].peer_id].trust = 0.4
        page = world.catalog.page("/page0")
        wrapper = world.provider.build_wrapper(page, "client")
        assert wrapper.fallbacks[-1] == world.peers[2].peer_id


class TestPeerFailover:
    def test_unreachable_peer_fails_over_to_fallback(self):
        world, loader = build()
        # Partition the assigned peer; the origin still believes it is
        # alive, so wrappers keep assigning it (stale knowledge).
        world.city.network.fail_link(
            world.city.network.links["hpop-n0h0"])
        result = world.load_page(loader=loader)
        assert result.total_bytes > 0
        assert result.peer_failures  # the dead peer was blamed
        assert loader.metrics.counters["peer_failovers"].value > 0
        assert loader.metrics.counters["origin_fallbacks"].value == 0
        assert result.bytes_from_peers > 0  # fallbacks served the chunks

    def test_crashed_peer_refuses_connections_and_fails_over(self):
        world, loader = build()
        world.hpops[0].crash()
        result = world.load_page(loader=loader)
        # A powered-off host refuses connections outright, so failover
        # is immediate — no timeout window burned.
        assert result.peer_failures
        assert loader.metrics.counters["peer_failovers"].value > 0
        assert result.total_bytes > 0

    def test_hung_peer_times_out_then_fails_over(self):
        services = [HungPeerService()] + [NoCdnPeerService()
                                          for _ in range(3)]
        world, loader = build(peer_timeout=0.5, peer_services=services)
        started = world.sim.now
        result = world.load_page(loader=loader)
        # The wedged peer accepted the fetch and never answered: each
        # chunk burned the peer-timeout window before failing over.
        assert world.sim.now - started >= 0.5
        assert result.peer_failures
        assert loader.metrics.counters["peer_failovers"].value > 0
        assert result.bytes_from_peers > 0

    def test_all_peers_dead_falls_back_to_origin(self):
        world, loader = build()
        for i in range(len(world.peers)):
            world.city.network.fail_link(
                world.city.network.links[f"hpop-n0h{i}"])
        result = world.load_page(loader=loader)
        assert result.bytes_from_origin > 0
        assert result.bytes_from_peers == 0
        assert loader.metrics.counters["origin_fallbacks"].value > 0

    def test_healthy_world_never_fails_over(self):
        world, loader = build()
        result = world.load_page(loader=loader)
        assert not result.peer_failures
        assert loader.metrics.counters["peer_failovers"].value == 0
        assert loader.metrics.counters["origin_fallbacks"].value == 0

    def test_failover_does_not_penalize_fallback_peers(self):
        """Served-by accounting: usage records credit the fallback that
        actually served, so the origin's audit never flags it."""
        world, loader = build()
        world.city.network.fail_link(
            world.city.network.links["hpop-n0h0"])
        world.load_page(loader=loader)
        world.sim.run()  # drain usage-record uploads + audits
        for peer in world.peers[1:]:
            assert world.provider.peers[peer.peer_id].trust == 1.0
            assert not world.provider.peers[peer.peer_id].expelled
