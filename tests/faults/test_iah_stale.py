"""IaH degradation path: when the upstream site is unreachable, the
HPoP serves stale-but-marked cached copies instead of failing."""

from repro.http.client import HttpClient
from repro.http.messages import HttpRequest
from repro.iah.service import OBJECT_ROUTE

from tests.iah.test_service import build, visit_and_learn


def gather_page(sim, svc, site, url="/page0"):
    visit_and_learn(svc, site, [url])
    done = []
    svc.gather(lambda: done.append(sim.now))
    sim.run()
    assert done
    return site.catalog.page(url)


def fetch_via_hpop(sim, city, hpop_host, site, object_name):
    """One device-side object fetch through the HPoP's IaH route."""
    device = city.neighborhoods[0].homes[0].devices[0]
    client = HttpClient(device, city.network)
    responses, errors = [], []
    client.request(
        hpop_host,
        HttpRequest("POST", OBJECT_ROUTE,
                    body={"site": site.name, "object": object_name},
                    body_size=150),
        lambda resp, _stats: responses.append(resp),
        port=443, on_error=errors.append)
    sim.run_until(sim.now + 60.0)
    assert not errors, f"device fetch errored: {errors}"
    assert len(responses) == 1
    return responses[0]


class TestStaleServing:
    def test_stale_served_when_upstream_unreachable(self):
        sim, city, site, services, hpops = build(num_homes=1)
        svc = services[0]
        gather_page(sim, svc, site)
        # Expire the cache (site ttl = 300), then cut the site off.
        sim.run_until(sim.now + 400)
        city.network.fail_link(city.network.links["dc-web-srv0"])
        resp = fetch_via_hpop(sim, city, hpops[0].host, site,
                              "p0-obj0.bin")
        assert resp.ok
        assert resp.headers["X-Cache"] == "stale"
        assert "stale" in resp.headers["Warning"]
        assert svc.stats.degraded_serves == 1
        assert svc.metrics.counters["degraded_serves"].value == 1

    def test_degraded_serve_emits_span_with_age(self):
        sim, city, site, services, hpops = build(num_homes=1)
        svc = services[0]
        tracer = sim.enable_tracing()
        gather_page(sim, svc, site)
        sim.run_until(sim.now + 400)
        city.network.fail_link(city.network.links["dc-web-srv0"])
        fetch_via_hpop(sim, city, hpops[0].host, site, "p0-obj0.bin")
        spans = [s for s in tracer.spans()
                 if s.name == "iah.degraded_serve"]
        assert len(spans) == 1
        assert spans[0].attrs["object"] == "p0-obj0.bin"
        assert spans[0].attrs["age"] > 300  # older than the ttl

    def test_uncached_object_still_fails(self):
        sim, city, site, services, hpops = build(num_homes=1)
        svc = services[0]
        gather_page(sim, svc, site)  # page0 only
        city.network.fail_link(city.network.links["dc-web-srv0"])
        resp = fetch_via_hpop(sim, city, hpops[0].host, site,
                              "p1-obj0.bin")  # never gathered
        assert resp.status == 502
        assert svc.stats.degraded_serves == 0

    def test_fresh_cache_needs_no_degradation(self):
        sim, city, site, services, hpops = build(num_homes=1)
        svc = services[0]
        gather_page(sim, svc, site)
        # Still fresh: the outage is invisible to the device.
        city.network.fail_link(city.network.links["dc-web-srv0"])
        resp = fetch_via_hpop(sim, city, hpops[0].host, site,
                              "p0-obj0.bin")
        assert resp.ok
        assert resp.headers["X-Cache"] == "hit"
        assert svc.stats.degraded_serves == 0

    def test_upstream_recovery_ends_degradation(self):
        sim, city, site, services, hpops = build(num_homes=1)
        svc = services[0]
        gather_page(sim, svc, site)
        sim.run_until(sim.now + 400)
        link = city.network.links["dc-web-srv0"]
        city.network.fail_link(link)
        fetch_via_hpop(sim, city, hpops[0].host, site, "p0-obj0.bin")
        city.network.restore_link(link)
        resp = fetch_via_hpop(sim, city, hpops[0].host, site,
                              "p0-obj0.bin")
        assert resp.ok
        assert resp.headers["X-Cache"] != "stale"
        assert svc.stats.degraded_serves == 1  # no new degraded serve
