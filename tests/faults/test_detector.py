"""HeartbeatMonitor unit tests (driven by a fake clock, no I/O)."""

import pytest

from repro.faults import HeartbeatMonitor


class Clock:
    def __init__(self):
        self.now = 0.0


def make(timeout=3.0, **kwargs):
    clock = Clock()
    events = []
    monitor = HeartbeatMonitor(
        clock, timeout,
        on_dead=lambda name: events.append(("dead", name)),
        on_alive=lambda name: events.append(("alive", name)),
        **kwargs)
    return clock, monitor, events


class TestHeartbeatMonitor:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(Clock(), 0.0)

    def test_grace_period_after_watch(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 3.0  # exactly the timeout: not yet overdue
        assert monitor.sweep() == []
        assert monitor.is_alive("a")
        assert not events

    def test_overdue_peer_declared_dead_once(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 3.5
        assert monitor.sweep() == ["a"]
        assert not monitor.is_alive("a")
        assert monitor.dead_peers() == ["a"]
        clock.now = 10.0
        assert monitor.sweep() == []  # no repeated on_dead
        assert events == [("dead", "a")]
        assert monitor.deaths == 1

    def test_beat_keeps_peer_alive(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        for t in (2.0, 4.0, 6.0):
            clock.now = t
            monitor.beat("a")
            assert monitor.sweep() == []
        assert not events

    def test_beat_revives_dead_peer(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 5.0
        monitor.sweep()
        monitor.beat("a")
        assert monitor.is_alive("a")
        assert monitor.recoveries == 1
        assert events == [("dead", "a"), ("alive", "a")]
        # It can die again after another silence.
        clock.now = 9.0
        assert monitor.sweep() == ["a"]
        assert monitor.deaths == 2

    def test_sweep_reports_in_sorted_order(self):
        clock, monitor, _events = make(timeout=1.0)
        for name in ("zeta", "alpha", "mid"):
            monitor.watch(name)
        clock.now = 5.0
        assert monitor.sweep() == ["alpha", "mid", "zeta"]

    def test_watch_is_idempotent(self):
        clock, monitor, _events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 2.5
        monitor.watch("a")  # must not reset the grace period
        clock.now = 4.0
        assert monitor.sweep() == ["a"]

    def test_forget_stops_tracking(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        monitor.forget("a")
        clock.now = 10.0
        assert monitor.sweep() == []
        assert not monitor.is_alive("a")
        assert not events


class TestFlapDamping:
    """Revival damping: N consecutive beats and/or a cooldown."""

    def die(self, clock, monitor, name="a", at=4.0):
        monitor.watch(name)
        clock.now = at
        assert monitor.sweep() == [name]

    def test_default_single_beat_revives(self):
        clock, monitor, events = make(timeout=3.0)
        self.die(clock, monitor)
        monitor.beat("a")
        assert monitor.is_alive("a")
        assert events == [("dead", "a"), ("alive", "a")]

    def test_revival_beats_requires_streak(self):
        clock, monitor, events = make(timeout=3.0, revival_beats=3)
        self.die(clock, monitor)
        for t in (4.5, 5.0):
            clock.now = t
            monitor.beat("a")
            assert not monitor.is_alive("a")
        clock.now = 5.5
        monitor.beat("a")
        assert monitor.is_alive("a")
        assert monitor.recoveries == 1
        assert events == [("dead", "a"), ("alive", "a")]

    def test_beat_gap_resets_streak(self):
        clock, monitor, events = make(timeout=3.0, revival_beats=2)
        self.die(clock, monitor)
        clock.now = 4.5
        monitor.beat("a")
        clock.now = 10.0  # > timeout since the last beat: streak resets
        monitor.beat("a")
        assert not monitor.is_alive("a")
        clock.now = 10.5
        monitor.beat("a")
        assert monitor.is_alive("a")

    def test_revival_cooldown_blocks_early_beats(self):
        clock, monitor, events = make(timeout=3.0, revival_cooldown=5.0)
        self.die(clock, monitor, at=4.0)
        clock.now = 6.0  # only 2 s after the verdict
        monitor.beat("a")
        assert not monitor.is_alive("a")
        clock.now = 9.0  # 5 s after: eligible
        monitor.beat("a")
        assert monitor.is_alive("a")
        assert events == [("dead", "a"), ("alive", "a")]

    def test_flapping_link_regression(self):
        """A link that lands one stray beat per outage cycle must not
        thrash alive/dead (each beat revived instantly before damping)."""
        clock, monitor, events = make(timeout=3.0, revival_beats=2,
                                      revival_cooldown=4.0)
        monitor.watch("a")
        t = 0.0
        for _cycle in range(4):
            t += 4.0
            clock.now = t
            monitor.sweep()      # silence -> dead (first cycle only)
            monitor.beat("a")    # one stray beat gets through
        # Four flap cycles produced exactly one death and zero revivals.
        assert monitor.deaths == 1
        assert events == [("dead", "a")]
        assert not monitor.is_alive("a")
        # Sustained beats finally revive it.
        for dt in (0.5, 1.0):
            clock.now = t + dt
            monitor.beat("a")
        assert monitor.is_alive("a")
        assert monitor.recoveries == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(Clock(), 3.0, revival_beats=0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(Clock(), 3.0, revival_cooldown=-1.0)

    def test_forget_clears_damping_state(self):
        clock, monitor, _events = make(timeout=3.0, revival_beats=2)
        self.die(clock, monitor)
        clock.now = 4.5
        monitor.beat("a")
        monitor.forget("a")
        assert monitor._revival_streak == {}
        assert monitor._dead_since == {}


class TestDeclareDead:
    def test_out_of_band_verdict_fires_on_dead(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        assert monitor.declare_dead("a") is True
        assert not monitor.is_alive("a")
        assert monitor.deaths == 1
        assert events == [("dead", "a")]

    def test_already_dead_or_unknown_is_noop(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        monitor.declare_dead("a")
        assert monitor.declare_dead("a") is False
        assert monitor.declare_dead("stranger") is False
        assert monitor.deaths == 1

    def test_declared_dead_peer_respects_damping_on_revival(self):
        clock, monitor, events = make(timeout=3.0, revival_cooldown=5.0)
        monitor.watch("a")
        clock.now = 2.0
        monitor.declare_dead("a")
        clock.now = 4.0
        monitor.beat("a")  # 2 s after the verdict: still cooling down
        assert not monitor.is_alive("a")
        clock.now = 7.0
        monitor.beat("a")
        assert monitor.is_alive("a")
