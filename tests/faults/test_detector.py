"""HeartbeatMonitor unit tests (driven by a fake clock, no I/O)."""

import pytest

from repro.faults import HeartbeatMonitor


class Clock:
    def __init__(self):
        self.now = 0.0


def make(timeout=3.0, **kwargs):
    clock = Clock()
    events = []
    monitor = HeartbeatMonitor(
        clock, timeout,
        on_dead=lambda name: events.append(("dead", name)),
        on_alive=lambda name: events.append(("alive", name)),
        **kwargs)
    return clock, monitor, events


class TestHeartbeatMonitor:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(Clock(), 0.0)

    def test_grace_period_after_watch(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 3.0  # exactly the timeout: not yet overdue
        assert monitor.sweep() == []
        assert monitor.is_alive("a")
        assert not events

    def test_overdue_peer_declared_dead_once(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 3.5
        assert monitor.sweep() == ["a"]
        assert not monitor.is_alive("a")
        assert monitor.dead_peers() == ["a"]
        clock.now = 10.0
        assert monitor.sweep() == []  # no repeated on_dead
        assert events == [("dead", "a")]
        assert monitor.deaths == 1

    def test_beat_keeps_peer_alive(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        for t in (2.0, 4.0, 6.0):
            clock.now = t
            monitor.beat("a")
            assert monitor.sweep() == []
        assert not events

    def test_beat_revives_dead_peer(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 5.0
        monitor.sweep()
        monitor.beat("a")
        assert monitor.is_alive("a")
        assert monitor.recoveries == 1
        assert events == [("dead", "a"), ("alive", "a")]
        # It can die again after another silence.
        clock.now = 9.0
        assert monitor.sweep() == ["a"]
        assert monitor.deaths == 2

    def test_sweep_reports_in_sorted_order(self):
        clock, monitor, _events = make(timeout=1.0)
        for name in ("zeta", "alpha", "mid"):
            monitor.watch(name)
        clock.now = 5.0
        assert monitor.sweep() == ["alpha", "mid", "zeta"]

    def test_watch_is_idempotent(self):
        clock, monitor, _events = make(timeout=3.0)
        monitor.watch("a")
        clock.now = 2.5
        monitor.watch("a")  # must not reset the grace period
        clock.now = 4.0
        assert monitor.sweep() == ["a"]

    def test_forget_stops_tracking(self):
        clock, monitor, events = make(timeout=3.0)
        monitor.watch("a")
        monitor.forget("a")
        clock.now = 10.0
        assert monitor.sweep() == []
        assert not monitor.is_alive("a")
        assert not events
