"""Attic degradation path: heartbeat timeout detects dead friends and
auto-repair restores full shard redundancy with capped backoff."""

from repro.attic.backup_service import PeerBackupService
from repro.attic.service import DataAtticService
from repro.hpop.core import Household, Hpop, User
from repro.net.topology import build_city
from repro.sim.engine import Simulator
from repro.util.units import kib


def build(num_friends=6, k=3, m=2, seed=17, heartbeat_interval=1.0,
          **owner_kwargs):
    """Owner (index 0) heartbeats; friends answer pings passively."""
    sim = Simulator(seed=seed)
    city = build_city(sim, homes_per_neighborhood=num_friends + 2)
    services, hpops = [], []
    for i in range(num_friends + 1):
        home = city.neighborhoods[0].homes[i]
        hpop = Hpop(home.hpop_host, city.network,
                    Household(name=f"h{i}", users=[User("u", "p")]))
        hpop.install(DataAtticService())
        kwargs = dict(k=k, m=m)
        if i == 0:
            kwargs.update(heartbeat_interval=heartbeat_interval,
                          **owner_kwargs)
        svc = hpop.install(PeerBackupService(**kwargs))
        hpop.start()
        services.append(svc)
        hpops.append(hpop)
    owner = services[0]
    for friend in services[1:]:
        owner.add_friend(friend)
    return sim, city, owner, services, hpops


def put_file(owner, path, size):
    attic = owner.hpop.service("attic")
    parent = "/".join(path.split("/")[:-1]) or "/"
    attic.dav.tree.mkcol_recursive(parent)
    attic.dav.tree.put(path, size=size, payload="original")


def backed_up(sim, owner, path="/u0/photos.tar", size=kib(200)):
    put_file(owner, path, size)
    done = []
    owner.backup_file(path, done.append)
    sim.run_until(sim.now + 30.0)
    assert done == [True]
    return path


def holder_of_some_shard(owner, services):
    name_to_service = {s.owner_name: s for s in services}
    entry = next(iter(owner.manifest.values()))
    return name_to_service[entry.shard_holders[0]]


class TestFailureDetection:
    def test_dead_friend_declared_after_timeout(self):
        sim, _city, owner, services, hpops = build()
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        crash_at = sim.now
        victim.hpop.crash()
        sim.run_until(sim.now + 10.0)
        assert owner.metrics.counters["peers_declared_dead"].value == 1
        assert not owner.monitor.is_alive(victim.owner_name)
        # Detection is bounded by timeout (3x interval) + one sweep.
        assert sim.now - crash_at >= 3.0

    def test_restarted_friend_recovers(self):
        sim, _city, owner, services, _hpops = build()
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        victim.hpop.crash()
        sim.run_until(sim.now + 10.0)
        victim.hpop.restart()
        sim.run_until(sim.now + 10.0)
        assert owner.metrics.counters["peers_recovered"].value == 1
        assert owner.monitor.is_alive(victim.owner_name)

    def test_no_heartbeat_no_detection(self):
        sim, _city, owner, services, _hpops = build(heartbeat_interval=None)
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        victim.hpop.crash()
        sim.run_until(sim.now + 30.0)
        assert owner.monitor is None
        assert owner.metrics.counters["peers_declared_dead"].value == 0


class TestAutoRepair:
    def test_lost_shards_repaired_to_full_redundancy(self):
        sim, _city, owner, services, _hpops = build()
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        victim.hpop.crash()  # lose_state drops the held shard
        sim.run_until(sim.now + 60.0)
        assert owner.metrics.counters["auto_repair_sweeps"].value >= 1
        entry = next(iter(owner.manifest.values()))
        # The dead friend no longer holds anything; every listed holder
        # is alive and actually has its shard.
        assert victim.owner_name not in entry.shard_holders
        name_to_service = {s.owner_name: s for s in services}
        for index, holder_name in enumerate(entry.shard_holders):
            holder = name_to_service[holder_name]
            assert holder.hpop.running
            assert any(key[2] == index and key[1] == entry.path
                       for key in holder.held_shards
                       ), f"{holder_name} missing shard {index}"
        assert owner.metrics.histograms["time_to_repair_seconds"].count == 1
        assert owner.metrics.histograms["time_to_repair_seconds"].sum > 0

    def test_recovered_friend_triggers_verification_sweep(self):
        sim, _city, owner, services, _hpops = build()
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        victim.hpop.crash()
        sim.run_until(sim.now + 60.0)
        sweeps_before = owner.metrics.counters["auto_repair_sweeps"].value
        victim.hpop.restart()
        sim.run_until(sim.now + 60.0)
        # The comeback runs another sweep: the friend restarted empty,
        # so placements must be re-verified, then found healthy.
        assert owner.metrics.counters["auto_repair_sweeps"].value \
            > sweeps_before
        assert owner.metrics.counters["auto_repair_gave_up"].value == 0

    def test_gives_up_after_capped_backoff(self):
        sim, _city, owner, services, _hpops = build(
            max_repair_sweeps=3, repair_backoff_base=0.5,
            repair_backoff_cap=2.0)
        backed_up(sim, owner)
        # Kill everyone: repair can never succeed.
        for friend in services[1:]:
            friend.hpop.crash()
        sim.run_until(sim.now + 120.0)
        assert owner.metrics.counters["auto_repair_sweeps"].value == 3
        assert owner.metrics.counters["auto_repair_gave_up"].value == 1
        # Time-to-repair is never observed for a failed recovery.
        assert owner.metrics.histograms["time_to_repair_seconds"].count == 0

    def test_spans_cover_death_and_repair(self):
        sim, _city, owner, services, _hpops = build()
        tracer = sim.enable_tracing()
        backed_up(sim, owner)
        victim = holder_of_some_shard(owner, services)
        victim.hpop.crash()
        sim.run_until(sim.now + 60.0)
        names = [s.name for s in tracer.spans()]
        assert "attic.peer_dead" in names
        assert "attic.auto_repair" in names
