"""FaultPlan construction, validation, and seeded-churn determinism."""

import math
import random

import pytest

from repro.faults import (
    FaultPlan,
    LatencySpike,
    LinkFlap,
    LossBurst,
    NodeCrash,
)


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LinkFlap("uplink-n0", at=-1.0, duration=2.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            LinkFlap("uplink-n0", at=1.0, duration=0.0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LossBurst("uplink-n0", at=0.0, duration=1.0, loss_rate=1.0)
        with pytest.raises(ValueError):
            LossBurst("uplink-n0", at=0.0, duration=1.0, loss_rate=-0.1)
        LossBurst("uplink-n0", at=0.0, duration=1.0, loss_rate=0.0)  # ok

    def test_latency_spike_needs_positive_delay(self):
        with pytest.raises(ValueError):
            LatencySpike("uplink-n0", at=0.0, duration=1.0, extra_delay=0.0)

    def test_node_crash_needs_positive_downtime(self):
        with pytest.raises(ValueError):
            NodeCrash("hpop-n0h0", at=0.0, downtime=-3.0)

    def test_faults_are_frozen(self):
        fault = LinkFlap("uplink-n0", at=1.0, duration=2.0)
        with pytest.raises(Exception):
            fault.at = 5.0


class TestPlan:
    def test_add_chains_and_iterates(self):
        plan = (FaultPlan()
                .add(LinkFlap("a", at=1.0, duration=2.0))
                .add(NodeCrash("n", at=4.0, downtime=3.0)))
        assert len(plan) == 2
        assert [type(f).__name__ for f in plan] == ["LinkFlap", "NodeCrash"]
        assert plan.node_crashes() == [plan.faults[1]]

    def test_extend_merges_plans(self):
        a = FaultPlan().add(LinkFlap("a", at=1.0, duration=2.0))
        b = FaultPlan().add(LinkFlap("b", at=2.0, duration=2.0))
        assert len(a.extend(b)) == 2

    def test_horizon_and_end(self):
        plan = (FaultPlan()
                .add(LinkFlap("a", at=1.0, duration=10.0))
                .add(NodeCrash("n", at=5.0, downtime=2.0)))
        assert plan.horizon == 5.0
        assert plan.end == 11.0

    def test_end_ignores_infinite_windows(self):
        plan = (FaultPlan()
                .add(LinkFlap("a", at=3.0, duration=math.inf))
                .add(LinkFlap("b", at=1.0, duration=1.0)))
        assert plan.end == 3.0  # permanent cut contributes only its start

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.horizon == 0.0
        assert plan.end == 0.0


class TestChurn:
    NODES = [f"hpop-n0h{i}" for i in range(10)]

    def test_same_seed_same_plan(self):
        a = FaultPlan.churn(self.NODES, 0.3, horizon=20.0,
                            rng=random.Random(42))
        b = FaultPlan.churn(self.NODES, 0.3, horizon=20.0,
                            rng=random.Random(42))
        assert a.faults == b.faults

    def test_node_order_does_not_matter(self):
        shuffled = list(reversed(self.NODES))
        a = FaultPlan.churn(self.NODES, 0.3, horizon=20.0,
                            rng=random.Random(7))
        b = FaultPlan.churn(shuffled, 0.3, horizon=20.0,
                            rng=random.Random(7))
        assert a.faults == b.faults

    def test_different_seed_different_plan(self):
        a = FaultPlan.churn(self.NODES, 0.3, horizon=20.0,
                            rng=random.Random(1))
        b = FaultPlan.churn(self.NODES, 0.3, horizon=20.0,
                            rng=random.Random(2))
        assert a.faults != b.faults

    def test_fraction_controls_victim_count(self):
        plan = FaultPlan.churn(self.NODES, 0.2, horizon=20.0,
                               rng=random.Random(3))
        assert len(plan) == 2
        victims = {f.node for f in plan}
        assert victims <= set(self.NODES)
        assert len(victims) == 2  # each victim crashes once

    def test_nonzero_fraction_claims_at_least_one(self):
        plan = FaultPlan.churn(self.NODES, 0.01, horizon=20.0,
                               rng=random.Random(4))
        assert len(plan) == 1

    def test_zero_fraction_is_empty(self):
        plan = FaultPlan.churn(self.NODES, 0.0, horizon=20.0,
                               rng=random.Random(5))
        assert len(plan) == 0

    def test_times_within_window(self):
        plan = FaultPlan.churn(self.NODES, 1.0, horizon=20.0,
                               rng=random.Random(6),
                               downtime=(2.0, 6.0), start=5.0)
        assert len(plan) == len(self.NODES)
        for fault in plan:
            assert 5.0 <= fault.at < 20.0
            assert 2.0 <= fault.downtime <= 6.0

    def test_bad_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            FaultPlan.churn(self.NODES, 1.5, horizon=20.0, rng=rng)
        with pytest.raises(ValueError):
            FaultPlan.churn(self.NODES, 0.5, horizon=1.0, rng=rng, start=2.0)
        with pytest.raises(ValueError):
            FaultPlan.churn(self.NODES, 0.5, horizon=20.0, rng=rng,
                            downtime=(0.0, 5.0))
