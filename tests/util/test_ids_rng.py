"""Id factory and RNG stream tests."""

import pytest

from repro.util.ids import IdFactory
from repro.util.rng import RngStreams, derive_seed, weighted_choice, zipf_weights


def test_id_factory_sequences_per_prefix():
    ids = IdFactory()
    assert ids.next("host") == "host-0"
    assert ids.next("host") == "host-1"
    assert ids.next("flow") == "flow-0"
    assert ids.next("host") == "host-2"


def test_id_factory_int_namespace():
    ids = IdFactory()
    assert ids.next_int("port") == 0
    assert ids.next_int("port") == 1


def test_independent_factories_do_not_share_state():
    a, b = IdFactory(), IdFactory()
    a.next("x")
    assert b.next("x") == "x-0"


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(42, "tcp") == derive_seed(42, "tcp")
    assert derive_seed(42, "tcp") != derive_seed(42, "udp")
    assert derive_seed(42, "tcp") != derive_seed(43, "tcp")


def test_streams_are_reproducible():
    a = RngStreams(7).stream("loss")
    b = RngStreams(7).stream("loss")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_of_creation_order():
    one = RngStreams(7)
    one.stream("a")
    draw_one = one.stream("b").random()
    two = RngStreams(7)
    draw_two = two.stream("b").random()  # no stream("a") created first
    assert draw_one == draw_two


def test_spawn_creates_namespaced_registry():
    parent = RngStreams(7)
    child = parent.spawn("nocdn")
    assert child.stream("x").random() != parent.stream("x").random()
    again = RngStreams(7).spawn("nocdn")
    assert again.stream("x").random() == RngStreams(7).spawn("nocdn").stream("x").random()


def test_zipf_weights_normalized_and_decreasing():
    weights = zipf_weights(100, 0.8)
    assert sum(weights) == pytest.approx(1.0)
    assert all(weights[i] > weights[i + 1] for i in range(99))


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def test_weighted_choice_respects_weights():
    rng = RngStreams(1).stream("choice")
    picks = [weighted_choice(rng, ["a", "b"], [0.999, 0.001]) for _ in range(200)]
    assert picks.count("a") > 190


def test_weighted_choice_length_mismatch():
    rng = RngStreams(1).stream("choice")
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [0.5, 0.5])
