"""Crypto helper tests: hashing, HMAC, nonce registry."""

from repro.util.crypto import (
    NonceRegistry,
    content_hash,
    derive_payload,
    deterministic_key,
    hmac_sign,
    hmac_verify,
    random_key,
    sha256_hex,
)


def test_sha256_hex_known_vector():
    assert sha256_hex(b"") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_derive_payload_is_deterministic_and_sized():
    a = derive_payload("obj", 1, 1000)
    b = derive_payload("obj", 1, 1000)
    assert a == b
    assert len(a) == 1000


def test_derive_payload_differs_by_version_and_name():
    assert derive_payload("obj", 1, 64) != derive_payload("obj", 2, 64)
    assert derive_payload("obj", 1, 64) != derive_payload("other", 1, 64)


def test_derive_payload_zero_size():
    assert derive_payload("obj", 1, 0) == b""


def test_content_hash_tracks_payload():
    assert content_hash("a", 1, 128) == sha256_hex(derive_payload("a", 1, 128))
    assert content_hash("a", 1, 128) != content_hash("a", 2, 128)


def test_hmac_sign_and_verify_round_trip():
    key = deterministic_key("peer-0")
    sig = hmac_sign(key, b"usage record")
    assert hmac_verify(key, b"usage record", sig)


def test_hmac_verify_rejects_tampering():
    key = deterministic_key("peer-0")
    sig = hmac_sign(key, b"served 1000 bytes")
    assert not hmac_verify(key, b"served 9999 bytes", sig)
    assert not hmac_verify(deterministic_key("peer-1"), b"served 1000 bytes", sig)


def test_random_key_has_requested_length():
    assert len(random_key(16)) == 16
    assert len(random_key()) == 32


def test_nonce_registry_detects_replay():
    registry = NonceRegistry()
    assert registry.register("n1")
    assert not registry.register("n1")
    assert registry.register("n2")
    assert "n1" in registry
    assert len(registry) == 2


def test_nonce_registry_reset_starts_new_epoch():
    registry = NonceRegistry()
    registry.register("n1")
    registry.reset()
    assert registry.register("n1")
