"""CDF, percentile, and rate-series tests."""

import pytest

from repro.util.stats import Cdf, RateSeries, fraction, mean, percentile


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


def test_mean():
    assert mean([1, 2, 3]) == 2
    with pytest.raises(ValueError):
        mean([])


class TestCdf:
    def test_fractions(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_at_most(2) == pytest.approx(0.5)
        assert cdf.fraction_above(2) == pytest.approx(0.5)
        assert cdf.fraction_at_least(2) == pytest.approx(0.75)

    def test_quantile(self):
        cdf = Cdf([0, 10])
        assert cdf.quantile(0.5) == pytest.approx(5)

    def test_points_monotone(self):
        cdf = Cdf(list(range(100)))
        points = cdf.points(10)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf([]).fraction_at_most(1)


class TestRateSeries:
    def test_single_bin(self):
        series = RateSeries(interval=1.0)
        series.record(0.5, 1_000)  # 1000 bytes in second 0
        assert series.rates_bps() == [8_000.0]

    def test_horizon_pads_quiet_time(self):
        series = RateSeries(interval=1.0)
        series.record(0.5, 1_000)
        rates = series.rates_bps(horizon=4.0)
        assert len(rates) == 4
        assert rates[1:] == [0.0, 0.0, 0.0]

    def test_span_spreads_bytes(self):
        series = RateSeries(interval=1.0)
        series.record_span(0.0, 2.0, 2_000)
        rates = series.rates_bps()
        assert rates[0] == pytest.approx(8_000.0)
        assert rates[1] == pytest.approx(8_000.0)

    def test_span_partial_bins(self):
        series = RateSeries(interval=1.0)
        series.record_span(0.5, 1.5, 1_000)
        rates = series.rates_bps()
        assert rates[0] == pytest.approx(4_000.0)
        assert rates[1] == pytest.approx(4_000.0)

    def test_zero_duration_span(self):
        series = RateSeries(interval=1.0)
        series.record_span(1.0, 1.0, 500)
        assert series.rates_bps()[1] == pytest.approx(4_000.0)

    def test_cdf_over_rates(self):
        series = RateSeries(interval=1.0)
        series.record(0.1, 1_000)
        series.record(1.1, 3_000)
        cdf = series.cdf(horizon=10.0)
        # 8 of 10 seconds are idle.
        assert cdf.fraction_above(0) == pytest.approx(0.2)

    def test_negative_bytes_rejected(self):
        series = RateSeries()
        with pytest.raises(ValueError):
            series.record(0.0, -1)

    def test_backwards_span_rejected(self):
        series = RateSeries()
        with pytest.raises(ValueError):
            series.record_span(2.0, 1.0, 10)


def test_fraction():
    assert fraction([True, False, True, True]) == pytest.approx(0.75)
    assert fraction([]) == 0.0
