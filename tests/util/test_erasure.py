"""Reed-Solomon erasure coding tests, including property-based coverage."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.erasure import (ReedSolomonCodec, Shard,
                                build_generator_matrix, gf_div, gf_inv,
                                gf_mul, gf_mul_bytes, gf_pow, xor_bytes)


class TestGaloisField:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_mul_commutative(self):
        for a in (3, 87, 255):
            for b in (5, 120, 200):
                assert gf_mul(a, b) == gf_mul(b, a)

    def test_div_inverts_mul(self):
        for a in (1, 7, 99, 255):
            for b in (1, 13, 254):
                assert gf_div(gf_mul(a, b), b) == a

    def test_inv(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1


class TestCodecBasics:
    def test_encode_produces_k_plus_m_shards(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode(b"hello erasure world")
        assert len(shards) == 6
        assert sum(1 for s in shards if not s.is_parity) == 4
        assert sum(1 for s in shards if s.is_parity) == 2

    def test_decode_from_all_shards(self):
        codec = ReedSolomonCodec(4, 2)
        payload = b"hello erasure world"
        assert codec.decode(codec.encode(payload)) == payload

    def test_decode_from_systematic_only(self):
        codec = ReedSolomonCodec(3, 2)
        payload = bytes(range(100))
        shards = codec.encode(payload)
        assert codec.decode(shards[:3]) == payload

    def test_decode_with_parity_substitution(self):
        codec = ReedSolomonCodec(3, 2)
        payload = bytes(range(97))  # not a multiple of k
        shards = codec.encode(payload)
        survivors = [shards[0], shards[3], shards[4]]  # one data, two parity
        assert codec.decode(survivors) == payload

    def test_too_few_shards_raises(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode(b"data")
        with pytest.raises(ValueError):
            codec.decode(shards[:3])

    def test_duplicate_shards_do_not_count_twice(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"abcdef")
        with pytest.raises(ValueError):
            codec.decode([shards[0], shards[0], shards[1]])

    def test_mismatched_geometry_rejected(self):
        codec_a = ReedSolomonCodec(3, 2)
        codec_b = ReedSolomonCodec(4, 2)
        shards = codec_a.encode(b"abcdef")
        with pytest.raises(ValueError):
            codec_b.decode(shards)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCodec(200, 100)

    def test_storage_overhead(self):
        assert ReedSolomonCodec(4, 2).storage_overhead() == pytest.approx(1.5)
        assert ReedSolomonCodec(1, 0).storage_overhead() == pytest.approx(1.0)

    def test_empty_payload(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"")
        assert codec.decode(shards[2:]) == b""


class TestBulkGaloisOps:
    def test_gf_mul_bytes_matches_scalar(self):
        buf = bytes(range(256))
        for c in (0, 1, 2, 87, 255):
            assert gf_mul_bytes(c, buf) == bytes(gf_mul(c, x) for x in buf)

    def test_xor_bytes(self):
        a, b = bytes(range(100)), bytes(reversed(range(100)))
        assert xor_bytes(a, b) == bytes(x ^ y for x, y in zip(a, b))
        assert xor_bytes(b"", b"") == b""

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")


class TestMdsConstruction:
    """The seed's identity-extended Vandermonde was not MDS; pin the fix."""

    def test_regression_k5_m4_indices_3_5_6_7_8(self):
        # The exact falsifying case: under the old construction the
        # decode matrix for surviving shards {3,5,6,7,8} was singular.
        codec = ReedSolomonCodec(5, 4)
        payload = bytes((i * 37 + 11) % 256 for i in range(1000))
        shards = codec.encode(payload)
        survivors = [shards[i] for i in (3, 5, 6, 7, 8)]
        assert codec.decode(survivors) == payload

    def test_regression_k5_m4_empty_payload(self):
        codec = ReedSolomonCodec(5, 4)
        shards = codec.encode(b"")
        assert codec.decode([shards[i] for i in (3, 5, 6, 7, 8)]) == b""

    def test_generator_top_block_is_identity(self):
        for k, m in ((1, 1), (3, 2), (5, 4), (10, 4)):
            gen = build_generator_matrix(k, m)
            assert len(gen) == k + m
            for i in range(k):
                assert gen[i] == [1 if j == i else 0 for j in range(k)]

    def test_every_square_submatrix_invertible(self):
        # Direct statement of the MDS property on the matrix itself.
        from repro.util.erasure import _invert_matrix

        k, m = 5, 4
        gen = build_generator_matrix(k, m)
        for rows in itertools.combinations(range(k + m), k):
            _invert_matrix([gen[r] for r in rows])  # must not raise

    def test_exhaustive_small_geometries_all_subsets(self):
        # For every geometry with k+m <= 10, EVERY k-subset of shards
        # must decode — the property the old construction violated.
        payload = bytes((7 * i + 3) % 256 for i in range(53))
        for total in range(1, 11):
            for k in range(1, total + 1):
                m = total - k
                codec = ReedSolomonCodec(k, m)
                shards = codec.encode(payload)
                for combo in itertools.combinations(range(total), k):
                    survivors = [shards[i] for i in combo]
                    assert codec.decode(survivors) == payload, \
                        f"k={k} m={m} subset={combo}"


class TestDecodeCacheAndRepair:
    def test_decode_cache_hits_on_repeated_pattern(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode(b"cache me if you can")
        survivors = [shards[i] for i in (1, 2, 3, 4)]
        codec.decode(survivors)
        assert codec.decode_cache_stats.misses == 1
        codec.decode(survivors)
        codec.decode(survivors)
        assert codec.decode_cache_stats.hits == 2
        assert codec.decode_cache_stats.hit_rate == pytest.approx(2 / 3)

    def test_systematic_fast_path_skips_cache(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"abcdef")
        codec.decode(shards[:3])
        assert codec.decode_cache_stats.misses == 0
        assert codec.decode_cache_stats.hits == 0

    def test_cache_eviction_is_bounded(self):
        codec = ReedSolomonCodec(3, 4)
        codec.DECODE_CACHE_ENTRIES = 2
        shards = codec.encode(b"0123456789")
        for combo in itertools.combinations(range(7), 3):
            if any(i >= 3 for i in combo):
                codec.decode([shards[i] for i in combo])
        assert len(codec._decode_cache) <= 2
        assert codec.decode_cache_stats.evictions > 0

    def test_clear_decode_cache(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"abcdef")
        codec.decode([shards[i] for i in (0, 3, 4)])
        codec.clear_decode_cache()
        assert codec.decode_cache_stats.misses == 0
        assert len(codec._decode_cache) == 0

    def test_reconstruct_shards(self):
        codec = ReedSolomonCodec(5, 4)
        payload = bytes(range(256)) * 3
        shards = codec.encode(payload)
        survivors = [shards[i] for i in (0, 2, 5, 7, 8)]
        rebuilt = codec.reconstruct_shards(survivors, [1, 3, 4, 6])
        for shard in rebuilt:
            assert shard.data == shards[shard.index].data
        # Rebuilt shards are fully interchangeable with the originals.
        assert codec.decode([shards[0], rebuilt[0], rebuilt[1],
                             rebuilt[2], rebuilt[3]]) == payload

    def test_reconstruct_shards_bad_index(self):
        codec = ReedSolomonCodec(2, 1)
        shards = codec.encode(b"xy")
        with pytest.raises(ValueError):
            codec.reconstruct_shards(shards, [3])


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=300),
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=0, max_value=4),
    data=st.data(),
)
def test_any_k_of_n_recovers(payload, k, m, data):
    """THE erasure-coding invariant: any k distinct shards reconstruct."""
    codec = ReedSolomonCodec(k, m)
    shards = codec.encode(payload)
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=k + m - 1),
                 min_size=k, max_size=k, unique=True)
    )
    survivors = [shards[i] for i in indices]
    assert codec.decode(survivors) == payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(min_size=1, max_size=200))
def test_parity_shards_differ_from_data(payload):
    codec = ReedSolomonCodec(2, 2)
    shards = codec.encode(payload)
    # Parity shards carry the geometry tag.
    assert all(s.is_parity == (s.index >= 2) for s in shards)
    assert all(s.original_length == len(payload) for s in shards)
