"""Reed-Solomon erasure coding tests, including property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.erasure import ReedSolomonCodec, Shard, gf_div, gf_inv, gf_mul, gf_pow


class TestGaloisField:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_mul_commutative(self):
        for a in (3, 87, 255):
            for b in (5, 120, 200):
                assert gf_mul(a, b) == gf_mul(b, a)

    def test_div_inverts_mul(self):
        for a in (1, 7, 99, 255):
            for b in (1, 13, 254):
                assert gf_div(gf_mul(a, b), b) == a

    def test_inv(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(0, 5) == 0
        assert gf_pow(0, 0) == 1


class TestCodecBasics:
    def test_encode_produces_k_plus_m_shards(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode(b"hello erasure world")
        assert len(shards) == 6
        assert sum(1 for s in shards if not s.is_parity) == 4
        assert sum(1 for s in shards if s.is_parity) == 2

    def test_decode_from_all_shards(self):
        codec = ReedSolomonCodec(4, 2)
        payload = b"hello erasure world"
        assert codec.decode(codec.encode(payload)) == payload

    def test_decode_from_systematic_only(self):
        codec = ReedSolomonCodec(3, 2)
        payload = bytes(range(100))
        shards = codec.encode(payload)
        assert codec.decode(shards[:3]) == payload

    def test_decode_with_parity_substitution(self):
        codec = ReedSolomonCodec(3, 2)
        payload = bytes(range(97))  # not a multiple of k
        shards = codec.encode(payload)
        survivors = [shards[0], shards[3], shards[4]]  # one data, two parity
        assert codec.decode(survivors) == payload

    def test_too_few_shards_raises(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode(b"data")
        with pytest.raises(ValueError):
            codec.decode(shards[:3])

    def test_duplicate_shards_do_not_count_twice(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"abcdef")
        with pytest.raises(ValueError):
            codec.decode([shards[0], shards[0], shards[1]])

    def test_mismatched_geometry_rejected(self):
        codec_a = ReedSolomonCodec(3, 2)
        codec_b = ReedSolomonCodec(4, 2)
        shards = codec_a.encode(b"abcdef")
        with pytest.raises(ValueError):
            codec_b.decode(shards)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCodec(200, 100)

    def test_storage_overhead(self):
        assert ReedSolomonCodec(4, 2).storage_overhead() == pytest.approx(1.5)
        assert ReedSolomonCodec(1, 0).storage_overhead() == pytest.approx(1.0)

    def test_empty_payload(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode(b"")
        assert codec.decode(shards[2:]) == b""


@settings(max_examples=60, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=300),
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=0, max_value=4),
    data=st.data(),
)
def test_any_k_of_n_recovers(payload, k, m, data):
    """THE erasure-coding invariant: any k distinct shards reconstruct."""
    codec = ReedSolomonCodec(k, m)
    shards = codec.encode(payload)
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=k + m - 1),
                 min_size=k, max_size=k, unique=True)
    )
    survivors = [shards[i] for i in indices]
    assert codec.decode(survivors) == payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(min_size=1, max_size=200))
def test_parity_shards_differ_from_data(payload):
    codec = ReedSolomonCodec(2, 2)
    shards = codec.encode(payload)
    # Parity shards carry the geometry tag.
    assert all(s.is_parity == (s.index >= 2) for s in shards)
    assert all(s.original_length == len(payload) for s in shards)
