"""Property tests for the token bucket: conservation (consumed tokens
never exceed initial burst + accrual) and level bounds under arbitrary
consume sequences."""

from hypothesis import given, settings, strategies as st

from repro.util.tokenbucket import TokenBucket

rates = st.floats(min_value=0.5, max_value=1000.0,
                  allow_nan=False, allow_infinity=False)
capacities = st.floats(min_value=1.0, max_value=10_000.0,
                       allow_nan=False, allow_infinity=False)
# (time_step, amount) pairs; steps are non-negative so time moves forward.
steps = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0,
                        allow_nan=False, allow_infinity=False),
              st.floats(min_value=0.0, max_value=5_000.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=0, max_size=50)


class TestConservation:
    @given(rate=rates, capacity=capacities, sequence=steps)
    @settings(max_examples=200, deadline=None)
    def test_consumed_never_exceeds_accrual_plus_burst(self, rate, capacity,
                                                       sequence):
        bucket = TokenBucket(rate, capacity)
        now, consumed = 0.0, 0.0
        for dt, amount in sequence:
            now += dt
            if bucket.try_consume(now, amount):
                consumed += amount
        # Conservation: nothing is created out of thin air. A fudge of
        # 1e-6 absorbs float accumulation over the sequence.
        assert consumed <= capacity + rate * now + 1e-6

    @given(rate=rates, capacity=capacities, sequence=steps)
    @settings(max_examples=200, deadline=None)
    def test_level_stays_within_bounds(self, rate, capacity, sequence):
        bucket = TokenBucket(rate, capacity)
        now = 0.0
        for dt, amount in sequence:
            now += dt
            bucket.try_consume(now, amount)
            level = bucket.available(now)
            assert -1e-9 <= level <= capacity + 1e-9

    @given(rate=rates, capacity=capacities, sequence=steps)
    @settings(max_examples=100, deadline=None)
    def test_failed_consume_changes_nothing(self, rate, capacity, sequence):
        bucket = TokenBucket(rate, capacity)
        now = 0.0
        for dt, amount in sequence:
            now += dt
            before = bucket.available(now)
            ok = bucket.try_consume(now, amount)
            after = bucket.available(now)
            if ok:
                assert after == before - amount
            else:
                assert after == before
                assert amount > before

    @given(rate=rates, capacity=capacities,
           amount=st.floats(min_value=0.0, max_value=10_000.0,
                            allow_nan=False, allow_infinity=False),
           drain=st.floats(min_value=0.0, max_value=10_000.0,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_time_until_available_is_exact(self, rate, capacity, amount,
                                           drain):
        bucket = TokenBucket(rate, capacity)
        bucket.try_consume(0.0, min(drain, capacity))
        if amount > capacity:
            return  # rejected loudly; covered by the unit tests
        wait = bucket.time_until_available(0.0, amount)
        assert wait >= 0.0
        # A meaningful wait means the request was not satisfiable now
        # (checked first: available() advances the refill clock).
        if wait > 1e-6:
            assert bucket.available(0.0) < amount
        # After exactly `wait` seconds the request must succeed.
        assert bucket.available(wait) >= amount - 1e-6
