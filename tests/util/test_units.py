"""Unit conversion tests."""

import pytest

from repro.util import units


def test_bandwidth_conversions():
    assert units.kbps(1) == 1_000
    assert units.mbps(1) == 1_000_000
    assert units.gbps(1.5) == 1_500_000_000


def test_size_conversions():
    assert units.kib(1) == 1024
    assert units.mib(2) == 2 * 1024 * 1024
    assert units.gib(1) == 1024 ** 3
    assert units.kb(1) == 1000
    assert units.mb(3) == 3_000_000
    assert units.gb(1) == 10 ** 9


def test_time_conversions():
    assert units.ms(250) == 0.25
    assert units.us(1000) == pytest.approx(0.001)
    assert units.minutes(2) == 120
    assert units.hours(1) == 3600
    assert units.days(1) == 86400


def test_bits_bytes_round_trip():
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(80) == 10
    assert units.bits_to_bytes(units.bytes_to_bits(1234.5)) == 1234.5


def test_transmission_time():
    # 1 MB over 8 Mbps takes exactly one second.
    assert units.transmission_time(1_000_000, units.mbps(8)) == pytest.approx(1.0)


def test_transmission_time_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        units.transmission_time(100, 0)
    with pytest.raises(ValueError):
        units.transmission_time(100, -5)


def test_format_bps():
    assert units.format_bps(2.5e9) == "2.50 Gbps"
    assert units.format_bps(25e6) == "25.00 Mbps"
    assert units.format_bps(1500) == "1.50 Kbps"
    assert units.format_bps(500) == "500 bps"


def test_format_bytes():
    assert units.format_bytes(1536) == "1.50 KiB"
    assert units.format_bytes(3 * 1024 * 1024) == "3.00 MiB"
    assert units.format_bytes(2 * 1024 ** 3) == "2.00 GiB"
    assert units.format_bytes(12) == "12 B"


def test_format_duration():
    assert units.format_duration(7200) == "2.00 h"
    assert units.format_duration(90) == "1.50 min"
    assert units.format_duration(2.5) == "2.50 s"
    assert units.format_duration(0.0032) == "3.20 ms"
    assert units.format_duration(0.0000051) == "5.10 us"
