"""LRU cache and token-bucket tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.lru import LruCache
from repro.util.tokenbucket import TokenBucket


class TestLruCache:
    def test_put_get(self):
        cache = LruCache(100)
        assert cache.put("a", "va", 10)
        assert cache.get("a") == "va"
        assert cache.used_bytes == 10

    def test_miss_counts(self):
        cache = LruCache(100)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LruCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")           # refresh a; b becomes LRU
        cache.put("d", 4, 10)    # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = LruCache(10)
        assert not cache.put("big", 1, 11)
        assert len(cache) == 0

    def test_replace_updates_size(self):
        cache = LruCache(100)
        cache.put("a", 1, 60)
        cache.put("a", 2, 10)
        assert cache.used_bytes == 10
        assert cache.get("a") == 2

    def test_invalidate(self):
        cache = LruCache(100)
        cache.put("a", 1, 10)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.used_bytes == 0

    def test_evict_callback(self):
        evicted = []
        cache = LruCache(10, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        assert evicted == ["a"]

    def test_peek_does_not_touch_stats(self):
        cache = LruCache(100)
        cache.put("a", 1, 10)
        assert cache.peek("a") == 1
        assert cache.peek("z") is None
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_hit_rate(self):
        cache = LruCache(100)
        cache.put("a", 1, 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 30)), max_size=60))
    def test_capacity_invariant(self, ops):
        """Used bytes never exceed capacity, whatever the op sequence."""
        cache = LruCache(64)
        for key, size in ops:
            cache.put(key, key, size)
            assert cache.used_bytes <= 64
            assert cache.used_bytes == sum(cache.sizes().values())


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10, capacity=100)
        assert bucket.available(0.0) == 100

    def test_consume_and_refill(self):
        bucket = TokenBucket(rate=10, capacity=100)
        assert bucket.try_consume(0.0, 100)
        assert not bucket.try_consume(0.0, 1)
        assert bucket.try_consume(5.0, 50)  # 5s * 10/s = 50 accrued

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10, capacity=100)
        bucket.try_consume(0.0, 10)
        assert bucket.available(1000.0) == 100

    def test_time_until_available(self):
        bucket = TokenBucket(rate=10, capacity=100)
        bucket.try_consume(0.0, 100)
        assert bucket.time_until_available(0.0, 50) == pytest.approx(5.0)
        assert bucket.time_until_available(5.0, 50) == 0.0

    def test_impossible_request_rejected(self):
        bucket = TokenBucket(rate=10, capacity=100)
        with pytest.raises(ValueError):
            bucket.time_until_available(0.0, 101)

    def test_time_cannot_go_backwards(self):
        bucket = TokenBucket(rate=10, capacity=100)
        bucket.available(10.0)
        with pytest.raises(ValueError):
            bucket.available(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, capacity=10)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, capacity=0)
        bucket = TokenBucket(rate=1, capacity=1)
        with pytest.raises(ValueError):
            bucket.try_consume(0.0, -1)
