"""Property tests for the Reed-Solomon codec: round-trips survive any
random shard loss up to m, and repairs reproduce exact shards."""

import random

from hypothesis import given, settings, strategies as st

from repro.util.erasure import ReedSolomonCodec

# One codec per geometry: generator-matrix construction dominates the
# cost of a property example, and codecs are stateless w.r.t. payloads
# (the decode cache only memoizes inverted matrices).
_CODECS = {}


def codec(k, m):
    if (k, m) not in _CODECS:
        _CODECS[(k, m)] = ReedSolomonCodec(k, m)
    return _CODECS[(k, m)]


geometries = st.tuples(st.integers(1, 8), st.integers(0, 4))
payloads = st.binary(min_size=0, max_size=2048)


class TestRoundTripProperties:
    @given(geometry=geometries, payload=payloads, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_decode_survives_any_loss_up_to_m(self, geometry, payload, data):
        k, m = geometry
        rs = codec(k, m)
        shards = rs.encode(payload)
        assert len(shards) == k + m
        lose = data.draw(st.integers(0, m), label="shards_lost")
        seed = data.draw(st.integers(0, 2**31), label="loss_seed")
        survivors = list(shards)
        for victim in random.Random(seed).sample(shards, lose):
            survivors.remove(victim)
        assert rs.decode(survivors) == payload

    @given(geometry=geometries, payload=payloads, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_k_subset_suffices(self, geometry, payload, data):
        k, m = geometry
        rs = codec(k, m)
        shards = rs.encode(payload)
        seed = data.draw(st.integers(0, 2**31), label="subset_seed")
        subset = random.Random(seed).sample(shards, k)
        assert rs.decode(subset) == payload

    @given(geometry=geometries, payload=payloads)
    @settings(max_examples=60, deadline=None)
    def test_shard_sizes_are_uniform_and_minimal(self, geometry, payload):
        k, m = geometry
        rs = codec(k, m)
        shards = rs.encode(payload)
        sizes = {len(s.data) for s in shards}
        assert len(sizes) == 1
        shard_len = sizes.pop()
        # Minimal padding: shards cover the payload with < k spare bytes
        # (the empty payload degenerates to 1-byte shards).
        assert shard_len * k >= len(payload)
        if payload:
            assert shard_len * k - len(payload) < k

    @given(geometry=geometries, payload=payloads, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_reconstructed_shards_match_originals(self, geometry, payload,
                                                  data):
        k, m = geometry
        rs = codec(k, m)
        shards = rs.encode(payload)
        lost = data.draw(
            st.lists(st.integers(0, k + m - 1), min_size=0, max_size=m,
                     unique=True),
            label="lost_indices")
        survivors = [s for s in shards if s.index not in set(lost)]
        rebuilt = rs.reconstruct_shards(survivors, lost)
        for shard in rebuilt:
            original = shards[shard.index]
            assert shard.index == original.index
            assert shard.data == original.data
            assert shard.original_length == original.original_length
