"""Network graph, routing, path, and datagram tests."""

import pytest

from repro.net.address import Address
from repro.net.network import (
    Network,
    NetworkError,
    compose_paths,
    compute_max_min_rates,
)
from repro.sim.engine import Simulator
from repro.util.units import gbps, mbps, ms


def build_line(sim=None):
    """a -- r -- b with distinct capacities."""
    sim = sim or Simulator()
    net = Network(sim)
    a = net.add_host("a")
    a.add_interface(Address.parse("10.0.0.1"))
    b = net.add_host("b")
    b.add_interface(Address.parse("10.0.0.2"))
    r = net.add_router("r")
    r.add_interface(Address.parse("172.16.0.1"))
    l1 = net.connect(a, r, gbps(1), ms(5))
    l2 = net.connect(r, b, mbps(100), ms(10))
    return sim, net, a, b, r, l1, l2


class TestRouting:
    def test_path_properties(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        assert path.hop_count == 2
        assert path.propagation_delay == pytest.approx(0.015)
        assert path.rtt == pytest.approx(0.030)
        assert path.bottleneck_bandwidth == mbps(100)

    def test_path_is_cached(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        assert net.path_between(a, b) is net.path_between(a, b)

    def test_no_self_path(self):
        _sim, net, a, _b, _r, _l1, _l2 = build_line()
        with pytest.raises(NetworkError):
            net.path_between(a, a)

    def test_unreachable_after_link_failure(self):
        _sim, net, a, b, _r, l1, _l2 = build_line()
        net.fail_link(l1)
        with pytest.raises(NetworkError):
            net.path_between(a, b)
        net.restore_link(l1)
        assert net.path_between(a, b).hop_count == 2

    def test_routing_epoch_changes_on_failure(self):
        _sim, net, _a, _b, _r, l1, _l2 = build_line()
        epoch = net.routing_epoch
        net.fail_link(l1)
        assert net.routing_epoch > epoch

    def test_shortest_delay_route_chosen(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        a.add_interface(Address.parse("10.0.0.1"))
        b = net.add_host("b")
        b.add_interface(Address.parse("10.0.0.2"))
        r = net.add_router("r")
        r.add_interface(Address.parse("172.16.0.1"))
        net.connect(a, b, gbps(1), ms(50), name="slow-direct")
        net.connect(a, r, gbps(1), ms(5))
        net.connect(r, b, gbps(1), ms(5))
        path = net.path_between(a, b)
        assert path.hop_count == 2  # via r: 10ms beats 50ms direct

    def test_routing_weight_override(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        a.add_interface(Address.parse("10.0.0.1"))
        b = net.add_host("b")
        b.add_interface(Address.parse("10.0.0.2"))
        r = net.add_router("r")
        r.add_interface(Address.parse("172.16.0.1"))
        net.connect(a, b, gbps(1), ms(50), name="direct")
        # Geographically shorter but policy-shunned.
        net.connect(a, r, gbps(1), ms(5), routing_weight=10.0)
        net.connect(r, b, gbps(1), ms(5), routing_weight=10.0)
        assert net.path_between(a, b).hop_count == 1

    def test_loss_composes_along_path(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        a.add_interface(Address.parse("10.0.0.1"))
        b = net.add_host("b")
        b.add_interface(Address.parse("10.0.0.2"))
        r = net.add_router("r")
        r.add_interface(Address.parse("172.16.0.1"))
        net.connect(a, r, gbps(1), ms(1), loss_rate=0.1)
        net.connect(r, b, gbps(1), ms(1), loss_rate=0.1)
        path = net.path_between(a, b)
        assert path.loss_rate == pytest.approx(1 - 0.9 * 0.9)

    def test_duplicate_address_rejected(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        a.add_interface(Address.parse("10.0.0.1"))
        b = net.add_host("b")
        with pytest.raises(NetworkError):
            b.add_interface(Address.parse("10.0.0.1"))

    def test_compose_paths(self):
        _sim, net, a, b, r, _l1, _l2 = build_line()
        # b -> a through r, composed from two halves around r is not
        # possible (r is a router); compose a->b with b->a instead.
        forward = net.path_between(a, b)
        backward = net.path_between(b, a)
        loop = compose_paths(forward, backward)
        assert loop.source is a and loop.dest is a
        assert loop.hop_count == 4

    def test_compose_mismatched_raises(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        forward = net.path_between(a, b)
        with pytest.raises(NetworkError):
            compose_paths(forward, forward)


class TestFairShare:
    def test_single_flow_gets_bottleneck(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        flow = object()
        assert path.fair_share_bps(flow) == pytest.approx(mbps(100))

    def test_two_flows_split_bottleneck(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        f1, f2 = object(), object()
        path.register_flow(f1)
        assert path.fair_share_bps(f2) == pytest.approx(mbps(50))
        # Registered flow sees the same share.
        path.register_flow(f2)
        assert path.fair_share_bps(f1) == pytest.approx(mbps(50))

    def test_unregister_restores_share(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        f1, f2 = object(), object()
        path.register_flow(f1)
        path.register_flow(f2)
        path.unregister_flow(f1)
        assert path.fair_share_bps(f2) == pytest.approx(mbps(100))

    def test_max_min_respects_demands(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        f1, f2 = "f1", "f2"
        rates = compute_max_min_rates(
            [f1, f2], {f1: path, f2: path}, demands={f1: mbps(10)})
        assert rates[f1] == pytest.approx(mbps(10))
        assert rates[f2] == pytest.approx(mbps(90))

    def test_max_min_equal_split_without_demands(self):
        _sim, net, a, b, _r, _l1, _l2 = build_line()
        path = net.path_between(a, b)
        flows = ["f1", "f2", "f3", "f4"]
        rates = compute_max_min_rates(flows, {f: path for f in flows})
        for f in flows:
            assert rates[f] == pytest.approx(mbps(25))


class TestDatagrams:
    def test_delivery_latency(self):
        sim, net, a, b, _r, _l1, _l2 = build_line()
        got = []
        b.bind_datagram(53, lambda src, sport, payload: got.append((src, payload)))
        net.send_datagram(a, 1000, b.address, 53, "ping", size=1000)
        sim.run()
        assert got == [(a.address, "ping")]
        # 15 ms propagation + 1000B at 100 Mbps = 0.08 ms
        assert sim.now == pytest.approx(0.015 + 1000 * 8 / mbps(100))

    def test_unbound_port_drops(self):
        sim, net, a, b, _r, _l1, _l2 = build_line()
        net.send_datagram(a, 1000, b.address, 54, "x")
        sim.run()  # no handler, no error

    def test_unknown_address_invokes_drop_callback(self):
        sim, net, a, _b, _r, _l1, _l2 = build_line()
        drops = []
        net.send_datagram(a, 1, Address.parse("203.0.113.1"), 53, "x",
                          on_dropped=lambda: drops.append(1))
        sim.run()
        assert drops == [1]

    def test_powered_off_host_does_not_receive(self):
        sim, net, a, b, _r, _l1, _l2 = build_line()
        got = []
        b.bind_datagram(53, lambda *args: got.append(args))
        b.power_off()
        net.send_datagram(a, 1, b.address, 53, "x")
        sim.run()
        assert got == []

    def test_lossy_path_drops_some(self, seeded_sim):
        sim = seeded_sim(1)
        net = Network(sim)
        a = net.add_host("a")
        a.add_interface(Address.parse("10.0.0.1"))
        b = net.add_host("b")
        b.add_interface(Address.parse("10.0.0.2"))
        net.connect(a, b, gbps(1), ms(1), loss_rate=0.5)
        got = []
        b.bind_datagram(7, lambda *args: got.append(args))
        for _ in range(100):
            net.send_datagram(a, 1, b.address, 7, "x")
        sim.run()
        assert 20 < len(got) < 80

    def test_datagram_bytes_accounted(self):
        sim, net, a, b, _r, l1, _l2 = build_line()
        b.bind_datagram(53, lambda *args: None)
        net.send_datagram(a, 1, b.address, 53, "x", size=500)
        sim.run()
        assert l1.direction(a).stats.bytes_carried == 500
