"""Property tests for max-min fairness and link utilization probes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.address import Address
from repro.net.network import Network, compute_max_min_rates
from repro.sim.engine import Simulator
from repro.util.units import gbps, mbps, ms


def build_parking_lot(num_hops=3):
    """Classic parking-lot topology: long flow crosses every hop,
    short flows cross one hop each."""
    sim = Simulator()
    net = Network(sim)
    routers = []
    for i in range(num_hops + 1):
        r = net.add_router(f"r{i}")
        r.add_interface(Address(Address.parse("172.16.0.1").value + i))
        routers.append(r)
    links = []
    for a, b in zip(routers, routers[1:]):
        links.append(net.connect(a, b, mbps(100), ms(5)))
    hosts = []
    for i, r in enumerate(routers):
        h = net.add_host(f"h{i}")
        h.add_interface(Address(Address.parse("10.0.0.1").value + i))
        net.connect(h, r, gbps(1), ms(1))
        hosts.append(h)
    return sim, net, hosts, links


class TestMaxMinProperties:
    def test_parking_lot_allocation(self):
        """The textbook result: every flow gets capacity/(flows on its
        most-loaded link); the long flow is squeezed equally."""
        _sim, net, hosts, _links = build_parking_lot(3)
        long_flow = "long"
        shorts = [f"s{i}" for i in range(3)]
        paths = {long_flow: net.path_between(hosts[0], hosts[3])}
        for i, name in enumerate(shorts):
            paths[name] = net.path_between(hosts[i], hosts[i + 1])
        rates = compute_max_min_rates([long_flow] + shorts, paths)
        # Each hop shared by the long flow and one short: 50/50.
        assert rates[long_flow] == pytest.approx(mbps(50))
        for name in shorts:
            assert rates[name] == pytest.approx(mbps(50))

    @settings(max_examples=30, deadline=None)
    @given(demands=st.lists(
        st.floats(min_value=1e6, max_value=2e8, allow_nan=False),
        min_size=1, max_size=6))
    def test_property_no_link_oversubscribed(self, demands):
        _sim, net, hosts, links = build_parking_lot(2)
        flows = [f"f{i}" for i in range(len(demands))]
        # All flows share the full 2-hop path.
        paths = {f: net.path_between(hosts[0], hosts[2]) for f in flows}
        rates = compute_max_min_rates(
            flows, paths, demands=dict(zip(flows, demands)))
        total = sum(rates.values())
        assert total <= mbps(100) * 1.001
        for f, demand in zip(flows, demands):
            assert rates[f] <= demand * 1.001

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8))
    def test_property_equal_split_is_work_conserving(self, n):
        _sim, net, hosts, _links = build_parking_lot(1)
        flows = [f"f{i}" for i in range(n)]
        paths = {f: net.path_between(hosts[0], hosts[1]) for f in flows}
        rates = compute_max_min_rates(flows, paths)
        assert sum(rates.values()) == pytest.approx(mbps(100))
        for f in flows:
            assert rates[f] == pytest.approx(mbps(100) / n)


class TestUtilizationProbe:
    def test_samples_accumulate_per_interval(self):
        _sim, net, hosts, links = build_parking_lot(1)
        direction = links[0].forward
        direction.enable_utilization_sampling(interval=1.0)
        # 100 Mbps link: 12.5 MB/s at 100% utilization.
        direction.carry(0.2, 6_250_000)   # 50% of second 0
        direction.carry(1.5, 12_500_000)  # 100% of second 1
        series = direction.utilization_series()
        assert series[0] == (0.0, pytest.approx(0.5))
        assert series[1] == (1.0, pytest.approx(1.0))
        assert direction.peak_utilization() == pytest.approx(1.0)

    def test_probe_disabled_by_default(self):
        _sim, _net, _hosts, links = build_parking_lot(1)
        direction = links[0].forward
        direction.carry(0.0, 1000)
        assert direction.utilization_series() == []
        assert direction.peak_utilization() == 0.0

    def test_invalid_interval(self):
        _sim, _net, _hosts, links = build_parking_lot(1)
        with pytest.raises(ValueError):
            links[0].forward.enable_utilization_sampling(interval=0)

    def test_flow_traffic_shows_in_probe(self, seeded_sim):
        from repro.net.topology import build_dumbbell
        from repro.transport.tcp import TcpFlow
        from repro.util.units import mib

        sim = seeded_sim(27)
        bell = build_dumbbell(sim)
        direction = bell.bottleneck.forward
        direction.enable_utilization_sampling(interval=1.0)
        path = bell.network.path_between(bell.client, bell.server)
        TcpFlow(sim, path, mib(200))
        sim.run()
        assert direction.peak_utilization() > 0.5
