"""Regression tests: mid-run utilization reads must be non-destructive.

The old probe flushed the in-progress bin on every read without
advancing the bin cursor, so a read followed by more traffic in the
same interval emitted a duplicate sample for the same bin start and
split the bin's bytes across two entries (under-reporting peak).
"""

import pytest

from repro.net.address import Address
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.util.units import mbps, ms


def make_direction(bandwidth=mbps(100)):
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a")
    a.add_interface(Address.parse("10.0.0.1"))
    b = net.add_host("b")
    b.add_interface(Address.parse("10.0.0.2"))
    link = net.connect(a, b, bandwidth, ms(1))
    return link.forward


class TestMidRunReads:
    def test_read_then_continue_same_bin(self):
        direction = make_direction()
        direction.enable_utilization_sampling(interval=1.0)
        direction.carry(0.2, 6_250_000)  # 50% of second 0
        mid = direction.utilization_series()
        assert mid == [(0.0, pytest.approx(0.5))]
        direction.carry(0.7, 6_250_000)  # other 50% of the same second
        series = direction.utilization_series()
        # Pre-fix: two samples both starting at 0.0, each at 0.5.
        assert series == [(0.0, pytest.approx(1.0))]
        assert direction.peak_utilization() == pytest.approx(1.0)

    def test_mid_run_read_equals_end_of_run_read(self):
        """Reading every carry must not change the final series."""
        probed = make_direction()
        probed.enable_utilization_sampling(interval=1.0)
        control = make_direction()
        control.enable_utilization_sampling(interval=1.0)
        traffic = [(0.1, 1000.0), (0.6, 2000.0), (1.2, 500.0),
                   (1.9, 1500.0), (3.5, 4000.0)]
        for now, nbytes in traffic:
            probed.carry(now, nbytes)
            probed.utilization_series()  # read after every carry
            probed.peak_utilization()
            control.carry(now, nbytes)
        assert probed.utilization_series() == control.utilization_series()
        assert probed.peak_utilization() == control.peak_utilization()

    def test_repeated_reads_are_idempotent(self):
        direction = make_direction()
        direction.enable_utilization_sampling(interval=1.0)
        direction.carry(0.5, 1000)
        first = direction.utilization_series()
        assert direction.utilization_series() == first
        assert direction.utilization_series() == first

    def test_zero_byte_bins_are_omitted(self):
        direction = make_direction()
        direction.enable_utilization_sampling(interval=1.0)
        direction.carry(0.5, 1000)
        direction.carry(5.5, 2000)  # nothing in seconds 1-4
        starts = [t for t, _u in direction.utilization_series()]
        assert starts == [0.0, 5.0]


class TestCarrySpan:
    def test_span_apportions_across_bins(self):
        direction = make_direction()
        direction.enable_utilization_sampling(interval=1.0)
        # 3000 bytes spread evenly over [0.5, 3.5): 1/6, 1/3, 1/3, 1/6.
        direction.carry_span(0.5, 3.5, 3000.0)
        series = dict(direction.utilization_series())
        capacity = mbps(100) / 8  # bytes per 1s bin
        assert series[0.0] == pytest.approx(500.0 / capacity)
        assert series[1.0] == pytest.approx(1000.0 / capacity)
        assert series[2.0] == pytest.approx(1000.0 / capacity)
        assert series[3.0] == pytest.approx(500.0 / capacity)
        assert direction.stats.bytes_carried == pytest.approx(3000.0)

    def test_span_within_one_bin_matches_carry(self):
        spanned = make_direction()
        spanned.enable_utilization_sampling(interval=1.0)
        pointwise = make_direction()
        pointwise.enable_utilization_sampling(interval=1.0)
        spanned.carry_span(2.1, 2.9, 1234.0)
        pointwise.carry(2.5, 1234.0)
        assert spanned.utilization_series() == pointwise.utilization_series()

    def test_zero_length_span_lands_in_start_bin(self):
        direction = make_direction()
        direction.enable_utilization_sampling(interval=1.0)
        direction.carry_span(4.2, 4.2, 500.0)
        assert direction.utilization_series() == [
            (4.0, pytest.approx(500.0 / (mbps(100) / 8)))]

    def test_span_without_sampling_still_counts_bytes(self):
        direction = make_direction()
        direction.carry_span(0.0, 10.0, 9999.0)
        assert direction.stats.bytes_carried == pytest.approx(9999.0)
        assert direction.utilization_series() == []

    def test_negative_inputs_rejected(self):
        direction = make_direction()
        with pytest.raises(ValueError):
            direction.carry_span(1.0, 2.0, -1.0)
        with pytest.raises(ValueError):
            direction.carry_span(2.0, 1.0, 10.0)
