"""The hierarchical path provider must agree with the generic solver.

``hierarchical_path_provider`` composes routes arithmetically from the
city's tree structure; these tests pin that it produces exactly the
paths Dijkstra would (build_city routes are unique tree walks), and
that it steps aside — returning None so the generic solver decides —
whenever a hop is failed or an endpoint is foreign to the hierarchy.
"""

import pytest

from repro.net.network import NetworkError
from repro.net.topology import build_city, hierarchical_path_provider
from repro.sim.engine import Simulator


@pytest.fixture()
def city():
    sim = Simulator(seed=5)
    return build_city(sim, num_neighborhoods=2, homes_per_neighborhood=3,
                      server_sites={"origin": 1, "edge": 1})


def hops(path):
    return [d.name for d in path.directions]


def solver_path(network, a, b):
    """The generic (networkx) answer, bypassing provider and cache."""
    provider, network.path_provider = network.path_provider, None
    network.invalidate_routes()
    try:
        return network.path_between(a, b)
    finally:
        network.path_provider = provider
        network.invalidate_routes()


def endpoint_pairs(city):
    n0, n1 = city.neighborhoods
    origin = city.server_sites["origin"].servers[0]
    edge = city.server_sites["edge"].servers[0]
    return [
        (n0.homes[0].hpop_host, origin),          # leaf -> server via core
        (origin, n0.homes[0].hpop_host),          # and the reverse
        (n0.homes[0].devices[0], n0.homes[0].hpop_host),   # same home
        (n0.homes[0].devices[0], n0.homes[2].hpop_host),   # same nbhd
        (n0.homes[1].hpop_host, n1.homes[2].hpop_host),    # cross nbhd
        (origin, edge),                            # site to site
        (n0.aggregation_router, origin),           # router endpoint
    ]


class TestProviderMatchesSolver:
    def test_same_hops_for_every_pair_shape(self, city):
        provider = hierarchical_path_provider(city)
        for a, b in endpoint_pairs(city):
            composed = provider(a, b)
            assert composed is not None, f"{a.name}->{b.name}"
            expected = solver_path(city.network, a, b)
            assert hops(composed) == hops(expected), f"{a.name}->{b.name}"
            assert composed.source is a and composed.dest is b

    def test_installed_provider_serves_path_between(self, city):
        city.network.path_provider = hierarchical_path_provider(city)
        a = city.neighborhoods[0].homes[0].hpop_host
        b = city.server_sites["origin"].servers[0]
        path = city.network.path_between(a, b)
        assert hops(path) == hops(solver_path(city.network, a, b))


class TestProviderStepsAside:
    def test_failed_link_falls_back_to_rerouting(self, city):
        city.network.path_provider = hierarchical_path_provider(city)
        a = city.neighborhoods[0].homes[0].hpop_host
        b = city.server_sites["origin"].servers[0]
        direct = city.network.path_between(a, b)
        core_names = {r.name for r in city.core_routers}
        core_hop = next(d for d in direct.directions
                        if d.link.a.name in core_names
                        and d.link.b.name in core_names)
        city.network.fail_link(core_hop.link)
        rerouted = city.network.path_between(a, b)
        # The provider declined (its hop is down); the generic solver
        # found the two-hop core detour, exactly as without a provider.
        assert core_hop.name not in hops(rerouted)
        assert len(rerouted.directions) == len(direct.directions) + 1
        city.network.restore_link(core_hop.link)
        assert hops(city.network.path_between(a, b)) == hops(direct)

    def test_unknown_node_falls_back(self, city):
        provider = hierarchical_path_provider(city)
        # A host wired up outside the builder's hierarchy.
        stray = city.network.add_host("stray")
        city.network.connect(city.core_routers[0], stray, 1e9, 0.001,
                             name="stray-link")
        origin = city.server_sites["origin"].servers[0]
        assert provider(stray, origin) is None
        city.network.path_provider = provider
        assert city.network.path_between(stray, origin) is not None

    def test_disconnected_home_still_raises(self, city):
        city.network.path_provider = hierarchical_path_provider(city)
        home = city.neighborhoods[0].homes[0]
        city.network.fail_link(home.access_link)
        with pytest.raises(NetworkError):
            city.network.path_between(
                home.hpop_host, city.server_sites["origin"].servers[0])
