"""Address, prefix, and subnet-allocator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.address import (
    Address,
    AddressPool,
    Prefix,
    SubnetAllocator,
    SubnetExhaustedError,
)


class TestAddress:
    def test_parse_and_str_round_trip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "172.16.5.9"):
            assert str(Address.parse(text)) == text

    def test_parse_rejects_malformed(self):
        for bad in ("10.0.0", "10.0.0.0.0", "300.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                Address.parse(bad)

    def test_out_of_range_value(self):
        with pytest.raises(ValueError):
            Address(-1)
        with pytest.raises(ValueError):
            Address(2 ** 32)

    def test_ordering_and_arithmetic(self):
        a = Address.parse("10.0.0.1")
        assert a + 1 == Address.parse("10.0.0.2")
        assert a < a + 1


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.length == 8
        assert p.num_addresses == 2 ** 24

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/8")

    def test_contains(self):
        p = Prefix.parse("192.168.1.0/24")
        assert p.contains(Address.parse("192.168.1.200"))
        assert not p.contains(Address.parse("192.168.2.1"))

    def test_overlaps(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        other = Prefix.parse("11.0.0.0/8")
        assert big.overlaps(small) and small.overlaps(big)
        assert not big.overlaps(other)

    def test_hosts_skips_network_and_broadcast(self):
        p = Prefix.parse("192.168.0.0/30")
        hosts = list(p.hosts())
        assert hosts == [Address.parse("192.168.0.1"), Address.parse("192.168.0.2")]
        assert p.num_hosts == 2

    def test_slash_31_and_32(self):
        assert Prefix.parse("10.0.0.0/31").num_hosts == 2
        assert Prefix.parse("10.0.0.0/32").num_hosts == 1

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/24")
        subs = list(p.subnets(26))
        assert len(subs) == 4
        assert str(subs[1]) == "10.0.0.64/26"

    def test_paper_claim_26s_in_slash8(self):
        """SIV-C: a /26 per waypoint from 10.0.0.0/8 gives 256K waypoints
        of 64 addresses (62 usable hosts + net/bcast) each."""
        p = Prefix.parse("10.0.0.0/8")
        count = 2 ** (26 - 8)
        assert count == 262_144  # "256K"
        sub = next(p.subnets(26))
        assert sub.num_addresses == 64


class TestSubnetAllocator:
    def test_allocations_never_overlap(self):
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/24"), 26)
        subnets = [alloc.allocate() for _ in range(4)]
        for i, a in enumerate(subnets):
            for b in subnets[i + 1:]:
                assert not a.overlaps(b)

    def test_exhaustion(self):
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/24"), 26)
        for _ in range(4):
            alloc.allocate()
        with pytest.raises(SubnetExhaustedError):
            alloc.allocate()

    def test_release_and_reuse(self):
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/24"), 26)
        first = alloc.allocate()
        for _ in range(3):
            alloc.allocate()
        alloc.release(first)
        again = alloc.allocate()
        assert again == first

    def test_release_unknown_rejected(self):
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/24"), 26)
        with pytest.raises(ValueError):
            alloc.release(Prefix.parse("10.0.1.0/26"))

    def test_capacity_matches_paper(self):
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/8"), 26)
        assert alloc.capacity == 262_144

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), max_size=40))
    def test_property_live_sets_disjoint(self, ops):
        """Whatever the allocate/release sequence, live subnets never overlap."""
        alloc = SubnetAllocator(Prefix.parse("10.0.0.0/20"), 26)
        live = []
        for do_allocate in ops:
            if do_allocate or not live:
                live.append(alloc.allocate())
            else:
                alloc.release(live.pop(0))
            current = alloc.live_subnets()
            for i, a in enumerate(current):
                for b in current[i + 1:]:
                    assert not a.overlaps(b)


class TestAddressPool:
    def test_sequential_allocation(self):
        pool = AddressPool(Prefix.parse("192.168.0.0/29"))
        first = pool.allocate()
        second = pool.allocate()
        assert first != second
        assert pool.allocated_count == 2

    def test_exhaustion_and_reuse(self):
        pool = AddressPool(Prefix.parse("192.168.0.0/30"))
        a = pool.allocate()
        pool.allocate()
        with pytest.raises(SubnetExhaustedError):
            pool.allocate()
        pool.release(a)
        assert pool.allocate() == a

    def test_release_unallocated_rejected(self):
        pool = AddressPool(Prefix.parse("192.168.0.0/30"))
        with pytest.raises(ValueError):
            pool.release(Address.parse("192.168.0.1"))
