"""Topology builder tests: the CCZ-shaped city, dumbbell, detour testbed."""

import pytest

from repro.net.topology import (
    AccessProfile,
    build_city,
    build_detour_testbed,
    build_dumbbell,
)
from repro.sim.engine import Simulator
from repro.util.units import gbps, mbps


class TestCity:
    def test_ccz_shape(self):
        sim = Simulator()
        city = build_city(sim, homes_per_neighborhood=10)
        nbhd = city.neighborhoods[0]
        assert len(nbhd.homes) == 10
        assert nbhd.uplink.forward.bandwidth_bps == gbps(10)
        home = nbhd.homes[0]
        assert home.access_link.forward.bandwidth_bps == gbps(1)
        assert home.access_link.reverse.bandwidth_bps == gbps(1)
        assert home.hpop_host is not None
        assert len(home.devices) == 2

    def test_legacy_access_is_asymmetric(self):
        sim = Simulator()
        city = build_city(sim, homes_per_neighborhood=2,
                          access=AccessProfile.legacy_broadband())
        link = city.neighborhoods[0].homes[0].access_link
        # forward = agg -> home (download), reverse = upload
        assert link.forward.bandwidth_bps == mbps(25)
        assert link.reverse.bandwidth_bps == mbps(5)

    def test_devices_route_to_servers(self):
        sim = Simulator()
        city = build_city(sim, homes_per_neighborhood=3,
                          server_sites={"origin": 1})
        device = city.neighborhoods[0].homes[0].devices[0]
        server = city.server_sites["origin"].servers[0]
        path = city.network.path_between(device, server)
        assert path.hop_count >= 4
        assert server.name.startswith("origin")

    def test_lateral_paths_avoid_uplink(self):
        """SII 'Lateral Bandwidth': neighbor-to-neighbor traffic stays
        inside the neighborhood and sees gigabit capacity."""
        sim = Simulator()
        city = build_city(sim, homes_per_neighborhood=4)
        nbhd = city.neighborhoods[0]
        a = nbhd.homes[0].hpop_host
        b = nbhd.homes[1].hpop_host
        path = city.network.path_between(a, b)
        uplink_dirs = set(nbhd.uplink.directions())
        assert not any(d in uplink_dirs for d in path.directions)
        assert path.bottleneck_bandwidth == gbps(1)

    def test_multiple_neighborhoods(self):
        sim = Simulator()
        city = build_city(sim, num_neighborhoods=3, homes_per_neighborhood=2)
        assert len(city.neighborhoods) == 3
        assert len(city.all_homes()) == 6
        assert len(city.all_hpops()) == 6
        a = city.neighborhoods[0].homes[0].hpop_host
        b = city.neighborhoods[2].homes[1].hpop_host
        assert city.network.reachable(a, b)

    def test_no_hpops_option(self):
        sim = Simulator()
        city = build_city(sim, homes_per_neighborhood=2, with_hpops=False)
        assert city.all_hpops() == []

    def test_unique_addresses(self):
        sim = Simulator()
        city = build_city(sim, num_neighborhoods=2, homes_per_neighborhood=5)
        addresses = [
            iface.address
            for node in city.network.nodes.values()
            for iface in node.interfaces
        ]
        assert len(addresses) == len(set(addresses))


class TestDumbbell:
    def test_paper_rtt_setting(self):
        sim = Simulator()
        bell = build_dumbbell(sim)
        path = bell.network.path_between(bell.client, bell.server)
        # ~50 ms RTT, 1 Gbps bottleneck: the SIV-D scenario.
        assert path.rtt == pytest.approx(0.0504)
        assert path.bottleneck_bandwidth == gbps(1)

    def test_loss_configurable(self):
        sim = Simulator()
        bell = build_dumbbell(sim, loss_rate=0.01)
        path = bell.network.path_between(bell.client, bell.server)
        assert path.loss_rate == pytest.approx(0.01)


class TestDetourTestbed:
    def test_native_route_is_direct(self):
        sim = Simulator()
        bed = build_detour_testbed(sim)
        path = bed.network.path_between(bed.client, bed.server)
        assert bed.direct_link.forward in path.directions or \
            bed.direct_link.reverse in path.directions

    def test_detour_legs_beat_native_delay(self):
        """The premise: two-leg waypoint path has lower true latency even
        though native routing will not use it."""
        sim = Simulator()
        bed = build_detour_testbed(sim)
        native = bed.network.path_between(bed.client, bed.server)
        wp = bed.waypoints[0]
        leg1 = bed.network.path_between(bed.client, wp)
        leg2 = bed.network.path_between(wp, bed.server)
        assert leg1.propagation_delay + leg2.propagation_delay < native.propagation_delay

    def test_waypoints_vary(self):
        sim = Simulator()
        bed = build_detour_testbed(sim, num_waypoints=3)
        delays = []
        for wp in bed.waypoints:
            leg = bed.network.path_between(bed.client, wp)
            delays.append(leg.propagation_delay)
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]
        # Last waypoint is the lossy one.
        lossy_leg = bed.network.path_between(bed.client, bed.waypoints[-1])
        assert lossy_leg.loss_rate > 0
