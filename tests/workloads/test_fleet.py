"""Fleet-scale background aggregation: correctness and determinism."""

import pytest

from repro.sim.engine import Simulator
from repro.workloads.fleet import (
    FleetSpec,
    PerHomeBackground,
    build_fleet,
)
from repro.workloads.traffic import HouseholdProfile


class TestBuildFleet:
    def test_hollow_build_is_small(self):
        """Memory scales with neighborhoods + focus homes, not homes."""
        sim = Simulator(seed=1)
        fleet = build_fleet(sim, FleetSpec(num_homes=50_000, focus_homes=3))
        assert fleet.idle_homes == 49_997
        assert len(fleet.focus) == 3
        assert len(fleet.aggregates) == 50
        # 50 agg routers + 3 homes' worth of nodes + core + origin site.
        assert len(fleet.city.network.nodes) < 80

    def test_focus_homes_are_fully_built(self):
        sim = Simulator(seed=1)
        fleet = build_fleet(sim, FleetSpec(num_homes=2_000, focus_homes=4,
                                           devices_per_focus_home=2))
        for home in fleet.focus:
            assert len(home.devices) == 2
            assert home.hpop_host is not None
            assert home.access_link.up

    def test_registry_reports_shape(self):
        sim = Simulator(seed=1)
        fleet = build_fleet(sim, FleetSpec(num_homes=3_000, focus_homes=1))
        snap = fleet.registry.snapshot()
        assert snap["fleet.homes_total"] == 3_000
        assert snap["fleet.homes_focus"] == 1
        assert snap["fleet.neighborhoods"] == 3

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(num_homes=0)
        with pytest.raises(ValueError):
            FleetSpec(num_homes=10, focus_homes=11)
        with pytest.raises(ValueError):
            FleetSpec(num_homes=10, tick=0)


class TestAggregation:
    def test_aggregate_bytes_near_analytic_mean(self):
        sim = Simulator(seed=3)
        spec = FleetSpec(num_homes=5_000, focus_homes=0)
        fleet = build_fleet(sim, spec).start()
        sim.run_until(200.0)
        mean_down, mean_up = spec.profile.mean_rates()
        down = sum(a.uplink.reverse.stats.bytes_carried
                   for a in fleet.aggregates)
        up = sum(a.uplink.forward.stats.bytes_carried
                 for a in fleet.aggregates)
        # Gamma(n, m) concentrates hard at n=1000 homes/cohort: 2% slack
        # covers the partial first/last ticks plus sampling noise.
        assert down == pytest.approx(5_000 * mean_down * 200 / 8, rel=0.02)
        assert up == pytest.approx(5_000 * mean_up * 200 / 8, rel=0.02)

    def test_aggregate_matches_naive_mode_statistically(self):
        """The tentpole equivalence: Gamma(n, m) cohort draws and n
        per-home exponential draws agree on the load they place on the
        uplink (same mean within sampling error)."""
        spec = FleetSpec(num_homes=400, focus_homes=0,
                         homes_per_neighborhood=400)

        sim_a = Simulator(seed=7)
        fleet = build_fleet(sim_a, spec).start()
        sim_a.run_until(100.0)
        aggregated = fleet.aggregates[0].uplink.forward.stats.bytes_carried

        sim_n = Simulator(seed=7)
        fleet_n = build_fleet(sim_n, spec)
        naive = PerHomeBackground(
            sim_n, fleet_n.aggregates[0].uplink, 400, spec.profile,
            tick=spec.tick, stream="naive.bg0").start()
        sim_n.run_until(100.0)
        naive_bytes = fleet_n.aggregates[0].uplink.forward.stats.bytes_carried
        naive.stop()

        assert aggregated == pytest.approx(naive_bytes, rel=0.25)
        # And vastly fewer events did it.
        assert sim_a.events_fired < sim_n.events_fired / 50

    def test_background_is_weak(self):
        """Aggregation ticks must not keep run() from quiescence."""
        sim = Simulator(seed=2)
        build_fleet(sim, FleetSpec(num_homes=1_000, focus_homes=0)).start()
        fired = sim.run()
        assert fired == 0

    def test_stop_halts_ticks(self):
        sim = Simulator(seed=2)
        fleet = build_fleet(sim, FleetSpec(num_homes=1_000,
                                           focus_homes=0)).start()
        sim.run_until(10.0)
        carried = fleet.aggregates[0].uplink.forward.stats.bytes_carried
        fleet.stop()
        sim.run_until(50.0)
        assert (fleet.aggregates[0].uplink.forward.stats.bytes_carried
                == carried)


class TestDeterminism:
    def run_once(self, seed):
        sim = Simulator(seed=seed)
        fleet = build_fleet(sim, FleetSpec(num_homes=4_000,
                                           focus_homes=2)).start()
        sim.run_until(60.0)
        return (sim.events_fired,
                tuple(a.uplink.forward.stats.bytes_carried
                      for a in fleet.aggregates),
                tuple(tuple(a.uplink.forward.utilization_series())
                      for a in fleet.aggregates))

    def test_same_seed_same_run(self):
        assert self.run_once(9) == self.run_once(9)

    def test_different_seed_differs(self):
        assert self.run_once(9)[1] != self.run_once(10)[1]


class TestMeanRates:
    def test_mean_rates_match_generated_traffic(self):
        """The analytic means must agree with the event generator they
        summarize (law of large numbers over a long horizon)."""
        import random

        from repro.workloads.traffic import HouseholdTrafficModel

        profile = HouseholdProfile.typical()
        mean_down, mean_up = profile.mean_rates()
        duration = 400 * 3600.0
        model = HouseholdTrafficModel(profile, random.Random(123))
        down = up = 0.0
        for event in model.generate(duration):
            if event.direction == "down":
                down += event.nbytes
            else:
                up += event.nbytes
        assert down * 8 / duration == pytest.approx(mean_down, rel=0.1)
        assert up * 8 / duration == pytest.approx(mean_up, rel=0.1)

    def test_heavy_profile_is_heavier(self):
        td, tu = HouseholdProfile.typical().mean_rates()
        hd, hu = HouseholdProfile.heavy().mean_rates()
        assert hd > 3 * td
        assert hu > 3 * tu
