"""Workload generator tests."""

import random

import pytest

from repro.util.units import hours, mbps
from repro.workloads.diurnal import DiurnalCurve
from repro.workloads.ehr import EhrEventGenerator
from repro.workloads.traffic import (
    HouseholdProfile,
    HouseholdTrafficModel,
    TrafficEvent,
)
from repro.workloads.web import (
    CatalogSpec,
    ZipfPagePopularity,
    generate_catalog,
    poisson_arrivals,
)


class TestTrafficEvents:
    def test_event_rate(self):
        event = TrafficEvent(start=0, duration=2.0, nbytes=1_000_000,
                             direction="down", kind="web")
        assert event.rate_bps == pytest.approx(4_000_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficEvent(0, 0, 1, "down", "x")
        with pytest.raises(ValueError):
            TrafficEvent(0, 1, -1, "down", "x")
        with pytest.raises(ValueError):
            TrafficEvent(0, 1, 1, "sideways", "x")


class TestHouseholdModel:
    def test_generates_mixed_traffic(self):
        model = HouseholdTrafficModel(HouseholdProfile.typical(),
                                      random.Random(1))
        events = model.generate(hours(2))
        kinds = {e.kind for e in events}
        assert "web" in kinds
        assert any(e.direction == "up" for e in events)

    def test_deterministic_given_seed(self):
        a = HouseholdTrafficModel(HouseholdProfile.typical(),
                                  random.Random(7)).generate(hours(1))
        b = HouseholdTrafficModel(HouseholdProfile.typical(),
                                  random.Random(7)).generate(hours(1))
        assert a == b

    def test_rate_series_mostly_idle_on_gigabit(self):
        """The CCZ shape: conventional apps leave the link nearly idle."""
        model = HouseholdTrafficModel(HouseholdProfile.typical(),
                                      random.Random(2))
        down, up = model.rate_series(hours(4))
        down_cdf = down.cdf(horizon=hours(4))
        up_cdf = up.cdf(horizon=hours(4))
        # Well under 5% of seconds exceed 10 Mbps down / 0.5 Mbps up.
        assert down_cdf.fraction_above(mbps(10)) < 0.05
        assert up_cdf.fraction_above(mbps(0.5)) < 0.10
        # And the link is essentially never near line rate.
        assert down_cdf.fraction_above(mbps(500)) == 0.0

    def test_heavy_profile_shifts_cdf(self):
        rng = random.Random(3)
        typical_down, _ = HouseholdTrafficModel(
            HouseholdProfile.typical(), rng).rate_series(hours(4))
        rng2 = random.Random(3)
        heavy_down, _ = HouseholdTrafficModel(
            HouseholdProfile.heavy(), rng2).rate_series(hours(4))
        t = typical_down.cdf(horizon=hours(4)).fraction_above(mbps(10))
        h = heavy_down.cdf(horizon=hours(4)).fraction_above(mbps(10))
        assert h > t


class TestCatalogGeneration:
    def test_catalog_shape(self):
        spec = CatalogSpec(num_pages=10)
        catalog = generate_catalog(spec, random.Random(4))
        assert len(catalog.pages()) == 10
        for page in catalog.pages():
            assert spec.objects_per_page_min <= len(page.embedded) \
                <= spec.objects_per_page_max

    def test_zipf_popularity_skews(self):
        catalog = generate_catalog(CatalogSpec(num_pages=20), random.Random(5))
        pop = ZipfPagePopularity(catalog, alpha=1.0, rng=random.Random(6))
        draws = pop.draw_many(2000)
        counts = {url: draws.count(url) for url in set(draws)}
        top = max(counts.values())
        assert top > len(draws) / 20  # far above uniform share

    def test_empty_catalog_rejected(self):
        from repro.http.content import ContentCatalog
        with pytest.raises(ValueError):
            ZipfPagePopularity(ContentCatalog(), 1.0, random.Random(0))

    def test_poisson_arrivals_rate(self):
        times = list(poisson_arrivals(10.0, 100.0, random.Random(7)))
        assert 800 < len(times) < 1200
        assert all(0 <= t < 100 for t in times)
        assert times == sorted(times)

    def test_poisson_zero_rate(self):
        assert list(poisson_arrivals(0, 100.0, random.Random(7))) == []


class TestDiurnal:
    def test_interpolation(self):
        curve = DiurnalCurve()
        # Peak at 18-19h, trough overnight.
        assert curve.multiplier(18.5 * 3600) > curve.multiplier(3.5 * 3600)

    def test_wraps_at_midnight(self):
        curve = DiurnalCurve()
        assert curve.multiplier(0.0) == curve.multiplier(86400.0)

    def test_peak_and_trough_hours(self):
        curve = DiurnalCurve()
        assert 18 in curve.peak_hours(3)
        assert set(curve.trough_hours(3)) <= set(range(0, 7))

    def test_offpeak_windows_contiguous(self):
        curve = DiurnalCurve()
        windows = curve.offpeak_windows(6)
        assert windows
        for start, end in windows:
            assert 0 <= start < end <= 86400

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCurve([1.0] * 23)
        with pytest.raises(ValueError):
            DiurnalCurve([-1.0] + [1.0] * 23)


class TestEhrGenerator:
    def test_events_generated(self):
        gen = EhrEventGenerator(["ann", "bo"], events_per_patient_per_year=12,
                                rng=random.Random(8))
        events = gen.generate(duration=365 * 86400.0)
        # ~24 expected over a year for two patients.
        assert 8 < len(events) < 60
        assert {e.patient for e in events} <= {"ann", "bo"}
        assert all(e.size > 0 for e in events)

    def test_kinds_weighted(self):
        gen = EhrEventGenerator(["p"], events_per_patient_per_year=5000,
                                rng=random.Random(9))
        events = gen.generate(duration=365 * 86400.0)
        kinds = [e.kind for e in events]
        assert kinds.count("visit-note") > kinds.count("discharge-summary")

    def test_validation(self):
        with pytest.raises(ValueError):
            EhrEventGenerator([], 10, random.Random(0))
        with pytest.raises(ValueError):
            EhrEventGenerator(["p"], 0, random.Random(0))
