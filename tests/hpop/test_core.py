"""HPoP appliance platform tests."""

import pytest

from repro.hpop.core import ConfigStore, Household, Hpop, HpopService, User
from repro.http.client import HttpClient
from repro.http.messages import HttpRequest, ok
from repro.net.topology import build_city
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=7)
    city = build_city(sim, homes_per_neighborhood=2)
    home = city.neighborhoods[0].homes[0]
    household = Household(name="smith", users=[
        User(name="ann", password="pw1", devices=[home.devices[0]]),
        User(name="bo", password="pw2", devices=[home.devices[1]]),
    ])
    hpop = Hpop(home.hpop_host, city.network, household)
    return sim, city, home, hpop


class TestConfigStore:
    def test_namespaced_kv(self):
        config = ConfigStore()
        config.set("attic", "quota", 100)
        config.set("nocdn", "quota", 200)
        assert config.get("attic", "quota") == 100
        assert config.get("nocdn", "quota") == 200
        assert config.get("attic", "missing", "default") == "default"

    def test_delete(self):
        config = ConfigStore()
        config.set("ns", "k", 1)
        config.delete("ns", "k")
        assert config.get("ns", "k") is None
        config.delete("ns", "never-there")  # no error


class TestHousehold:
    def test_user_lookup(self):
        household = Household(name="h", users=[User("a", "p")])
        assert household.user("a").password == "p"
        with pytest.raises(KeyError):
            household.user("z")


class RecordingService(HpopService):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.events = []

    def on_install(self, hpop):
        self.events.append("install")
        hpop.http.route("/recorder", lambda req: ok(body=b"rec"))

    def on_start(self):
        self.events.append("start")

    def on_stop(self):
        self.events.append("stop")


class TestServiceLifecycle:
    def test_install_then_start(self):
        _sim, _city, _home, hpop = build()
        svc = RecordingService()
        hpop.install(svc)
        assert svc.events == ["install"]
        hpop.start()
        assert svc.events == ["install", "start"]
        assert svc.running

    def test_install_on_running_appliance_starts_immediately(self):
        _sim, _city, _home, hpop = build()
        hpop.start()
        svc = hpop.install(RecordingService())
        assert svc.events == ["install", "start"]

    def test_duplicate_service_rejected(self):
        _sim, _city, _home, hpop = build()
        hpop.install(RecordingService())
        with pytest.raises(ValueError):
            hpop.install(RecordingService())

    def test_service_lookup(self):
        _sim, _city, _home, hpop = build()
        svc = hpop.install(RecordingService())
        assert hpop.service("recorder") is svc
        assert hpop.has_service("recorder")
        with pytest.raises(KeyError):
            hpop.service("ghost")

    def test_shutdown_stops_services_and_host(self):
        _sim, _city, home, hpop = build()
        svc = hpop.install(RecordingService())
        hpop.start()
        hpop.shutdown()
        assert svc.events[-1] == "stop"
        assert not svc.running
        assert not home.hpop_host.powered
        assert not hpop.running

    def test_restart_preserves_config(self):
        _sim, _city, home, hpop = build()
        hpop.install(RecordingService())
        hpop.start()
        hpop.config.set("ns", "k", "v")
        hpop.restart()
        assert hpop.config.get("ns", "k") == "v"
        assert hpop.running
        assert home.hpop_host.powered


class TestPortalAndRoutes:
    def test_portal_status_reachable_from_device(self):
        sim, city, home, hpop = build()
        hpop.install(RecordingService())
        hpop.start()
        client = HttpClient(home.devices[0], city.network)
        results = []
        client.request(home.hpop_host, HttpRequest("GET", "/portal/status"),
                       lambda resp, stats: results.append(resp), port=443)
        sim.run()
        body = results[0].body
        assert body["running"] is True
        assert "recorder" in body["services"]
        assert body["household"] == "smith"

    def test_service_route_served(self):
        sim, city, home, hpop = build()
        hpop.install(RecordingService())
        hpop.start()
        client = HttpClient(home.devices[0], city.network)
        results = []
        client.request(home.hpop_host, HttpRequest("GET", "/recorder"),
                       lambda resp, stats: results.append(resp.body), port=443)
        sim.run()
        assert results == [b"rec"]

    def test_portal_reachable_from_outside_home(self):
        sim, city, _home, hpop = build()
        hpop.start()
        other_home = city.neighborhoods[0].homes[1]
        client = HttpClient(other_home.devices[0], city.network)
        results = []
        client.request(hpop.host, HttpRequest("GET", "/portal/status"),
                       lambda resp, stats: results.append(resp), port=443)
        sim.run()
        assert results[0].ok

    def test_shutdown_appliance_unreachable(self):
        sim, city, home, hpop = build()
        hpop.start()
        hpop.shutdown()
        client = HttpClient(home.devices[0], city.network)
        errors = []
        client.request(hpop.host, HttpRequest("GET", "/portal/status"),
                       lambda resp, stats: None, port=443,
                       on_error=lambda e: errors.append(e), timeout=3.0)
        sim.run()
        assert len(errors) == 1


class TestReachabilityFallback:
    def test_start_without_manager_reports_public(self):
        from repro.nat.traversal import ReachabilityMethod

        sim, _city, home, hpop = build()
        reports = []
        hpop.start(on_reachable=reports.append)
        sim.run()
        assert len(reports) == 1
        assert reports[0].method is ReachabilityMethod.PUBLIC
        assert reports[0].public_endpoint == (home.hpop_host.address, 443)
        assert hpop.reachability_report is reports[0]
