"""HTTP client edge cases: explicit paths, pooling keys, addresses."""

import pytest

from repro.http.client import HttpClient, _reversed_path
from repro.http.messages import HttpRequest, ok
from repro.http.server import HttpServer
from repro.net.address import Address
from repro.net.network import compose_paths
from repro.net.topology import build_city, build_dumbbell
from repro.sim.engine import Simulator


def build():
    sim = Simulator(seed=33)
    bell = build_dumbbell(sim)
    server = HttpServer(bell.server, 80)
    server.route("/x", lambda req: ok(body_size=100))
    client = HttpClient(bell.client, bell.network)
    return sim, bell, server, client


class TestReversedPath:
    def test_mirror_properties(self):
        sim, bell, _server, _client = build()
        forward = bell.network.path_between(bell.client, bell.server)
        reverse = _reversed_path(forward)
        assert reverse.source is bell.server
        assert reverse.dest is bell.client
        assert reverse.hop_count == forward.hop_count
        assert reverse.propagation_delay == pytest.approx(
            forward.propagation_delay)
        # Each direction is the opposite of the corresponding forward one.
        for fwd_dir, rev_dir in zip(forward.directions,
                                    reversed(reverse.directions)):
            assert fwd_dir.link is rev_dir.link
            assert fwd_dir.sender is rev_dir.receiver

    def test_reversed_of_composed_path(self):
        sim = Simulator(seed=34)
        city = build_city(sim, homes_per_neighborhood=3)
        a = city.neighborhoods[0].homes[0].hpop_host
        b = city.neighborhoods[0].homes[1].hpop_host
        c = city.neighborhoods[0].homes[2].hpop_host
        via = compose_paths(city.network.path_between(a, b),
                            city.network.path_between(b, c))
        mirror = _reversed_path(via)
        assert mirror.source is c and mirror.dest is a
        assert mirror.hop_count == via.hop_count


class TestExplicitPath:
    def test_via_path_used_for_exchange(self):
        """Requests pinned to an explicit path work end to end."""
        sim, bell, server, client = build()
        explicit = bell.network.path_between(bell.client, bell.server)
        results = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(resp),
                       via_path=explicit)
        sim.run()
        assert results[0].ok

    def test_via_path_pools_separately_from_routed(self):
        sim, bell, server, client = build()
        explicit = bell.network.path_between(bell.client, bell.server)
        results = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(stats))
        sim.run()
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(stats),
                       via_path=explicit)
        sim.run()
        # The second exchange could not reuse the routed-path connection.
        assert results[0].connection_reused is False
        assert results[1].connection_reused is False


class TestTargetForms:
    def test_request_by_address(self):
        sim, bell, server, client = build()
        results = []
        client.request(bell.server.address, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(resp))
        sim.run()
        assert results[0].ok

    def test_request_to_unknown_address_errors(self):
        sim, bell, _server, client = build()
        errors = []
        client.request(Address.parse("203.0.113.77"),
                       HttpRequest("GET", "/x"),
                       lambda resp, stats: None, on_error=errors.append)
        sim.run()
        assert len(errors) == 1

    def test_request_to_router_errors(self):
        sim, bell, _server, client = build()
        errors = []
        client.request(bell.left_router.address, HttpRequest("GET", "/x"),
                       lambda resp, stats: None, on_error=errors.append)
        sim.run()
        assert len(errors) == 1
        assert "not an end host" in str(errors[0])


class TestPoolingKeys:
    def test_tls_and_plain_use_distinct_connections(self):
        sim, bell, server, client = build()
        results = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(stats))
        sim.run()
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(stats), tls=True)
        sim.run()
        assert results[1].connection_reused is False

    def test_timeout_timer_cancelled_on_success(self):
        """A successful exchange must not leave a live timeout that
        keeps the simulation running or fires spuriously."""
        sim, bell, server, client = build()
        outcomes = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: outcomes.append("ok"),
                       on_error=lambda e: outcomes.append("error"),
                       timeout=60.0)
        sim.run()
        assert outcomes == ["ok"]
        assert sim.now < 1.0  # did not wait for the 60 s timer
