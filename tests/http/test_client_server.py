"""End-to-end HTTP exchange tests over the simulated transport."""

import pytest

from repro.http.client import HttpClient, HttpError
from repro.http.messages import HttpRequest, not_found, ok
from repro.http.server import HttpServer
from repro.net.topology import build_dumbbell
from repro.sim.engine import Simulator
from repro.util.units import mib, ms


def build():
    sim = Simulator(seed=5)
    bell = build_dumbbell(sim)
    server = HttpServer(bell.server, 80)
    client = HttpClient(bell.client, bell.network)
    return sim, bell, server, client


class TestBasicExchange:
    def test_get_round_trip(self):
        sim, bell, server, client = build()
        server.route("/hello", lambda req: ok(body_size=5000, body="hi"))
        results = []
        client.request(bell.server, HttpRequest("GET", "/hello"),
                       lambda resp, stats: results.append((resp, stats)))
        sim.run()
        assert len(results) == 1
        resp, stats = results[0]
        assert resp.ok and resp.body == "hi"
        assert stats.total_time > 0
        assert stats.response_bytes == 5000
        assert server.requests_handled == 1
        assert server.bytes_served == 5000

    def test_unrouted_path_404(self):
        sim, bell, server, client = build()
        results = []
        client.request(bell.server, HttpRequest("GET", "/nope"),
                       lambda resp, stats: results.append(resp))
        sim.run()
        assert results[0].status == 404

    def test_longest_prefix_wins(self):
        sim, bell, server, client = build()
        server.route("/", lambda req: ok(body=b"root"))
        server.route("/api", lambda req: ok(body=b"api"))
        results = []
        client.request(bell.server, HttpRequest("GET", "/api/v1"),
                       lambda resp, stats: results.append(resp.body))
        client.request(bell.server, HttpRequest("GET", "/other"),
                       lambda resp, stats: results.append(resp.body))
        sim.run()
        assert set(results) == {b"api", b"root"}

    def test_exchange_latency_includes_handshake_and_transfer(self):
        sim, bell, server, client = build()
        server.route("/small", lambda req: ok(body_size=1000))
        results = []
        client.request(bell.server, HttpRequest("GET", "/small"),
                       lambda resp, stats: results.append(stats))
        sim.run()
        stats = results[0]
        rtt = bell.network.path_between(bell.client, bell.server).rtt
        # handshake (1 RTT) + request (~half RTT one-way) + response (~half)
        assert stats.total_time >= 2 * rtt
        assert stats.total_time < 6 * rtt

    def test_large_response_takes_bandwidth_time(self):
        sim, bell, server, client = build()
        server.route("/big", lambda req: ok(body_size=mib(50)))
        done = []
        client.request(bell.server, HttpRequest("GET", "/big"),
                       lambda resp, stats: done.append(stats.total_time))
        sim.run()
        # 50 MiB over 1 Gbps is ~0.42 s minimum plus slow start.
        assert done[0] > 0.4

    def test_tls_adds_setup_time(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=100))
        plain, secure = [], []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda r, s: plain.append(s.total_time))
        sim.run()
        client2 = HttpClient(bell.client, bell.network)
        client2.request(bell.server, HttpRequest("GET", "/x"),
                        lambda r, s: secure.append(s.total_time), tls=True)
        sim.run()
        assert secure[0] > plain[0]


class TestConnectionReuse:
    def test_second_request_reuses_connection(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=100))
        times = []

        def second(resp, stats):
            times.append(("second", stats.total_time, stats.connection_reused))

        def first(resp, stats):
            times.append(("first", stats.total_time, stats.connection_reused))
            client.request(bell.server, HttpRequest("GET", "/x"), second)

        client.request(bell.server, HttpRequest("GET", "/x"), first)
        sim.run()
        assert times[0][2] is False
        assert times[1][2] is True
        assert times[1][1] < times[0][1]  # no handshake the second time

    def test_close_all_forces_new_connection(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=10))
        done = []

        def second(resp, stats):
            done.append(stats.connection_reused)

        def first(resp, stats):
            client.close_all()
            client.request(bell.server, HttpRequest("GET", "/x"), second)

        client.request(bell.server, HttpRequest("GET", "/x"), first)
        sim.run()
        assert done == [False]


class TestAsyncHandlers:
    def test_async_route_responds_later(self):
        sim, bell, server, client = build()

        def slow_handler(request, respond):
            sim.schedule(0.5, lambda: respond(ok(body_size=10, body="late")))

        server.route_async("/slow", slow_handler)
        results = []
        client.request(bell.server, HttpRequest("GET", "/slow"),
                       lambda resp, stats: results.append((resp.body, stats.total_time)))
        sim.run()
        assert results[0][0] == "late"
        assert results[0][1] > 0.5

    def test_think_time_applied(self):
        sim = Simulator(seed=5)
        bell = build_dumbbell(sim)
        server = HttpServer(bell.server, 80, think_time=0.3)
        server.route("/x", lambda req: ok(body_size=10))
        client = HttpClient(bell.client, bell.network)
        results = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: results.append(stats.total_time))
        sim.run()
        assert results[0] > 0.3


class TestVirtualHosting:
    def test_vhost_routing(self):
        sim, bell, server, client = build()
        server.route("/", lambda req: ok(body=b"default"))
        server.route("/", lambda req: ok(body=b"siteA"), virtual_host="a.example")
        results = []
        client.request(bell.server,
                       HttpRequest("GET", "/", host="a.example"),
                       lambda resp, stats: results.append(resp.body))
        client.request(bell.server,
                       HttpRequest("GET", "/", host="b.example"),
                       lambda resp, stats: results.append(resp.body))
        sim.run()
        assert b"siteA" in results and b"default" in results
        assert server.virtual_hosts() == ["a.example"]


class TestFailures:
    def test_no_server_bound_errors(self):
        sim = Simulator(seed=5)
        bell = build_dumbbell(sim)
        client = HttpClient(bell.client, bell.network)
        errors = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: None,
                       on_error=lambda e: errors.append(e))
        sim.run()
        assert len(errors) == 1
        assert "no HTTP server" in str(errors[0])

    def test_powered_off_server_times_out(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=10))
        bell.server.power_off()
        errors, responses = [], []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: responses.append(resp),
                       on_error=lambda e: errors.append(e), timeout=5.0)
        sim.run()
        assert responses == []
        assert len(errors) == 1
        assert "timeout" in str(errors[0]) or "no HTTP server" in str(errors[0])
        assert client.exchanges_failed == 1

    def test_partitioned_server_errors(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=10))
        bell.network.fail_link(bell.bottleneck)
        errors = []
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: None,
                       on_error=lambda e: errors.append(e), timeout=5.0)
        sim.run()
        assert len(errors) == 1

    def test_counters(self):
        sim, bell, server, client = build()
        server.route("/x", lambda req: ok(body_size=10))
        client.request(bell.server, HttpRequest("GET", "/x"),
                       lambda resp, stats: None)
        sim.run()
        assert client.exchanges_completed == 1
        assert client.exchanges_failed == 0
