"""HTTP cache semantics tests."""

import pytest

from repro.http.cache import CacheDisposition, HttpCache
from repro.http.content import WebObject


def make_cache(capacity=1_000_000, ttl=100.0):
    return HttpCache(capacity, default_ttl=ttl)


class TestLookup:
    def test_miss_then_fresh(self):
        cache = make_cache()
        obj = WebObject("a", 100)
        disp, _ = cache.lookup("a", now=0.0)
        assert disp is CacheDisposition.MISS
        cache.store(obj, now=0.0)
        disp, entry = cache.lookup("a", now=50.0)
        assert disp is CacheDisposition.FRESH
        assert entry.obj is obj

    def test_expiry_makes_stale(self):
        cache = make_cache(ttl=100.0)
        cache.store(WebObject("a", 100), now=0.0)
        disp, entry = cache.lookup("a", now=101.0)
        assert disp is CacheDisposition.STALE
        assert entry is not None

    def test_custom_ttl(self):
        cache = make_cache(ttl=100.0)
        cache.store(WebObject("a", 100), now=0.0, ttl=10.0)
        assert cache.lookup("a", 11.0)[0] is CacheDisposition.STALE


class TestRevalidation:
    def test_304_refreshes_in_place(self):
        cache = make_cache(ttl=10.0)
        obj = WebObject("a", 100)
        cache.store(obj, now=0.0)
        assert cache.revalidate("a", obj, now=20.0) is True
        assert cache.lookup("a", 25.0)[0] is CacheDisposition.FRESH
        assert cache.refreshed_in_place == 1

    def test_changed_object_stored_fresh(self):
        cache = make_cache(ttl=10.0)
        obj = WebObject("a", 100)
        cache.store(obj, now=0.0)
        newer = obj.bump_version()
        assert cache.revalidate("a", newer, now=20.0) is False
        disp, entry = cache.lookup("a", 21.0)
        assert disp is CacheDisposition.FRESH
        assert entry.obj.version == 2
        assert cache.revalidations == 1

    def test_revalidate_absent_entry_stores(self):
        cache = make_cache()
        obj = WebObject("a", 100)
        assert cache.revalidate("a", obj, now=0.0) is False
        assert cache.contains("a")


class TestCapacity:
    def test_eviction_under_pressure(self):
        cache = HttpCache(250, default_ttl=100)
        cache.store(WebObject("a", 100), 0.0)
        cache.store(WebObject("b", 100), 0.0)
        cache.store(WebObject("c", 100), 0.0)  # evicts a
        assert not cache.contains("a")
        assert cache.contains("b") and cache.contains("c")
        assert cache.used_bytes <= 250

    def test_oversized_rejected(self):
        cache = HttpCache(100)
        assert cache.store(WebObject("big", 200), 0.0) is False

    def test_invalidate(self):
        cache = make_cache()
        cache.store(WebObject("a", 10), 0.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert len(cache) == 0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            HttpCache(100, default_ttl=0)
