"""HTTP message and content-model tests."""

import pytest

from repro.http.content import ContentCatalog, WebObject, WebPage
from repro.http.messages import (
    HttpRequest,
    HttpResponse,
    locked,
    not_found,
    not_modified,
    ok,
    partial_content,
    unauthorized,
)


class TestHttpRequest:
    def test_basic(self):
        req = HttpRequest("GET", "/index.html")
        assert req.wire_size == 400
        assert req.if_none_match is None

    def test_body_adds_to_wire_size(self):
        req = HttpRequest("PUT", "/f", body_size=1000)
        assert req.wire_size == 1400

    def test_conditional_header(self):
        req = HttpRequest("GET", "/f", headers={"If-None-Match": '"v1"'})
        assert req.if_none_match == '"v1"'

    def test_webdav_methods_allowed(self):
        for method in ("PROPFIND", "MKCOL", "LOCK", "UNLOCK", "COPY", "MOVE"):
            HttpRequest(method, "/dav/x")

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            HttpRequest("BREW", "/coffee")

    def test_invalid_path(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "no-slash")

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "/f", range=(10, 5))
        HttpRequest("GET", "/f", range=(0, 10))  # valid


class TestHttpResponse:
    def test_ok(self):
        resp = ok(body_size=100)
        assert resp.ok and resp.status == 200
        assert resp.wire_size == 400

    def test_max_age_parsing(self):
        resp = ok(headers={"Cache-Control": "public, max-age=3600"})
        assert resp.max_age == 3600
        assert not resp.no_store

    def test_no_store(self):
        resp = ok(headers={"Cache-Control": "no-store"})
        assert resp.no_store
        assert resp.max_age is None

    def test_malformed_max_age(self):
        resp = ok(headers={"Cache-Control": "max-age=banana"})
        assert resp.max_age is None

    def test_helpers(self):
        assert not_modified().status == 304
        assert not_found("/x").status == 404
        assert unauthorized("attic").headers["WWW-Authenticate"].startswith("Basic")
        assert locked().status == 423
        assert partial_content(50).status == 206

    def test_invalid_status(self):
        with pytest.raises(ValueError):
            HttpResponse(99)


class TestWebObject:
    def test_hash_is_real_and_version_sensitive(self):
        obj = WebObject("logo.png", 2048)
        assert len(obj.sha256) == 64
        assert obj.sha256 != obj.bump_version().sha256

    def test_tampered_differs_but_same_shape(self):
        obj = WebObject("app.js", 4096)
        bad = obj.tampered()
        assert bad.name == obj.name and bad.size == obj.size
        assert bad.sha256 != obj.sha256

    def test_etag_tracks_version(self):
        obj = WebObject("a", 10)
        assert obj.etag != obj.bump_version().etag

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WebObject("x", -1)
        with pytest.raises(ValueError):
            WebObject("x", 10, version=0)


class TestWebPage:
    def make_page(self):
        container = WebObject("index.html", 20_000, content_type="text/html")
        embedded = tuple(WebObject(f"img{i}.jpg", 50_000) for i in range(4))
        return WebPage(url="/index.html", container=container, embedded=embedded)

    def test_totals(self):
        page = self.make_page()
        assert page.object_count == 5
        assert page.total_size == 20_000 + 4 * 50_000

    def test_all_objects_order(self):
        page = self.make_page()
        objs = list(page.all_objects())
        assert objs[0].name == "index.html"
        assert len(objs) == 5


class TestContentCatalog:
    def test_add_and_get(self):
        catalog = ContentCatalog()
        obj = WebObject("a", 10)
        catalog.add_object(obj)
        assert catalog.object("a") is obj
        assert catalog.object("zzz") is None

    def test_page_registers_objects(self):
        catalog = ContentCatalog()
        page = WebPage("/p", WebObject("p.html", 100),
                       embedded=(WebObject("i.png", 200),))
        catalog.add_page(page)
        assert catalog.object("i.png") is not None
        assert catalog.page("/p") is page
        assert len(catalog) == 2

    def test_update_object_bumps_version_everywhere(self):
        catalog = ContentCatalog()
        img = WebObject("i.png", 200)
        page = WebPage("/p", WebObject("p.html", 100), embedded=(img,))
        catalog.add_page(page)
        updated = catalog.update_object("i.png")
        assert updated.version == 2
        refreshed = catalog.page("/p")
        assert refreshed.embedded[0].version == 2

    def test_update_container_object(self):
        catalog = ContentCatalog()
        page = WebPage("/p", WebObject("p.html", 100))
        catalog.add_page(page)
        catalog.update_object("p.html")
        assert catalog.page("/p").container.version == 2

    def test_update_unknown_raises(self):
        with pytest.raises(KeyError):
            ContentCatalog().update_object("nope")
